//! The parallel publish pipeline's correctness claims, proven without
//! relying on timing:
//!
//! * **Answer identity** — fanning one event out across shards must be
//!   *bit-identical* to the sequential shard walk: same matched ids in
//!   the same order, same reconciled [`MatchStats`]. Property-tested
//!   over deterministic churn streams for every engine kind and
//!   S ∈ {1, 3, 8} at the core level, and for forced-parallel vs
//!   forced-sequential brokers (single publishes and batches).
//! * **Batch answer identity** — the engines' batch kernels
//!   (`match_batch`, sequential and parallel fan-out) replay churn
//!   windows sweeping the 64-lane chunk boundary and must equal the
//!   per-event walk, ids and stats, for every kind and S ∈ {1, 3, 8}.
//! * **Merge isolation** — a stalled worker on one shard can neither
//!   corrupt nor reorder another shard's contribution to the merge:
//!   results land by shard index, not completion order, and the other
//!   shards keep matching while one is stuck (latch-observed, like the
//!   gate tests in `shard_concurrency.rs`).
//! * **Scratch-pool hygiene** — checkout applies reset +
//!   `ensure_capacity` once, and after warm-up the pool stops
//!   allocating: its retained-scratch count and heap footprint are
//!   probed before and after 10k publishes and must not move.

use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

use boolmatch::core::{
    BatchScratch, BatchScratchPool, FilterEngine, FulfilledSet, MatchScratch, MatchStats,
    MemoryUsage, ScratchPool, SubscribeError, UnsubscribeError,
};
use boolmatch::expr::Expr;
use boolmatch::prelude::*;
use boolmatch::workload::scenarios::{ChurnOp, ChurnScenario, StockScenario};

/// Parallel fan-out must equal the sequential walk under subscription
/// churn, for every engine kind and shard count — ids, order, stats.
#[test]
fn parallel_matches_sequential_under_churn() {
    for kind in EngineKind::ALL {
        for shards in [1usize, 3, 8] {
            let mut engine = ShardedEngine::new(kind, shards);
            let scratches = ScratchPool::new(shards);
            let mut seq = MatchScratch::new();
            let mut par = MatchScratch::new();
            let mut live: Vec<SubscriptionId> = Vec::new();

            let mut churn = ChurnScenario::new(31, 80);
            for (step, op) in churn.ops(1_500).into_iter().enumerate() {
                match op {
                    ChurnOp::Subscribe(expr) => {
                        live.push(engine.subscribe(&expr).expect("accepted"));
                    }
                    ChurnOp::Unsubscribe(i) => {
                        engine.unsubscribe(live.remove(i)).expect("live id");
                    }
                    ChurnOp::Publish(event) => {
                        let seq_stats = engine.match_event_into(&event, &mut seq);
                        let par_stats = engine.match_event_parallel(&event, &scratches, &mut par);
                        assert_eq!(
                            seq.matched(),
                            par.matched(),
                            "kind={kind} shards={shards} step={step}"
                        );
                        assert_eq!(
                            seq_stats, par_stats,
                            "stats reconcile: kind={kind} shards={shards} step={step}"
                        );
                    }
                }
            }
        }
    }
}

/// Matches every event of `window` per-event (the scalar reference),
/// then through the sequential batch kernel and the parallel batch
/// fan-out, and asserts both agree with the reference: the same ids
/// per event (as sets — batch kernels may permute within an event) and
/// the same summed [`MatchStats`]. `batch_events`/`batch_passes` are
/// zeroed before the stats comparison: they record the amortization
/// itself and have no scalar counterpart.
#[allow(clippy::too_many_arguments)]
fn assert_batch_equals_per_event(
    engine: &ShardedEngine,
    scratches: &BatchScratchPool,
    window: &[Arc<Event>],
    scratch: &mut MatchScratch,
    seq_batch: &mut BatchScratch,
    par_batch: &mut BatchScratch,
    context: &str,
) {
    if window.is_empty() {
        return;
    }
    let mut scalar_total = MatchStats::default();
    let mut want: Vec<Vec<SubscriptionId>> = Vec::new();
    for event in window {
        scalar_total = scalar_total + engine.match_event_into(event, scratch);
        let mut ids = scratch.matched().to_vec();
        ids.sort_unstable();
        want.push(ids);
    }
    let mut seq_stats = engine.match_batch(window, &[], seq_batch);
    let mut par_stats = engine.match_batch_parallel(window, &[], scratches, par_batch);
    for (e, want_ids) in want.iter().enumerate() {
        let mut got = seq_batch.matched(e).to_vec();
        got.sort_unstable();
        assert_eq!(&got, want_ids, "sequential batch ids: {context} event {e}");
        let mut got = par_batch.matched(e).to_vec();
        got.sort_unstable();
        assert_eq!(&got, want_ids, "parallel batch ids: {context} event {e}");
    }
    seq_stats.batch_events = 0;
    seq_stats.batch_passes = 0;
    par_stats.batch_events = 0;
    par_stats.batch_passes = 0;
    assert_eq!(seq_stats, scalar_total, "sequential batch stats: {context}");
    assert_eq!(par_stats, scalar_total, "parallel batch stats: {context}");
}

/// The batch kernels under churn: windows of the publish stream,
/// matched as one batch (sequentially and through the parallel batch
/// fan-out), must equal the per-event walk — ids and stats — for every
/// engine kind and S ∈ {1, 3, 8}, across subscribe/unsubscribe churn
/// that recycles flat slots and retracts synopsis entries mid-stream.
/// Window lengths sweep 1..=67, crossing the 64-lane chunk boundary so
/// single-lane fallback, partial chunks and full chunks all replay.
#[test]
fn batch_matches_per_event_under_churn() {
    for kind in EngineKind::ALL {
        for shards in [1usize, 3, 8] {
            let engine_scratches = BatchScratchPool::new(shards);
            let mut engine = ShardedEngine::new(kind, shards);
            let mut scratch = MatchScratch::new();
            let mut seq_batch = BatchScratch::new();
            let mut par_batch = BatchScratch::new();
            let mut live: Vec<SubscriptionId> = Vec::new();
            let mut window: Vec<Arc<Event>> = Vec::new();
            let mut window_cap = 1usize;

            let mut churn = ChurnScenario::new(59, 80);
            for (step, op) in churn.ops(1_500).into_iter().enumerate() {
                match op {
                    ChurnOp::Subscribe(expr) => {
                        // Flush before the table changes under the
                        // pending window.
                        assert_batch_equals_per_event(
                            &engine,
                            &engine_scratches,
                            &window,
                            &mut scratch,
                            &mut seq_batch,
                            &mut par_batch,
                            &format!("kind={kind} shards={shards} step={step}"),
                        );
                        window.clear();
                        live.push(engine.subscribe(&expr).expect("accepted"));
                    }
                    ChurnOp::Unsubscribe(i) => {
                        assert_batch_equals_per_event(
                            &engine,
                            &engine_scratches,
                            &window,
                            &mut scratch,
                            &mut seq_batch,
                            &mut par_batch,
                            &format!("kind={kind} shards={shards} step={step}"),
                        );
                        window.clear();
                        engine.unsubscribe(live.remove(i)).expect("live id");
                    }
                    ChurnOp::Publish(event) => {
                        window.push(Arc::new(event));
                        if window.len() >= window_cap {
                            assert_batch_equals_per_event(
                                &engine,
                                &engine_scratches,
                                &window,
                                &mut scratch,
                                &mut seq_batch,
                                &mut par_batch,
                                &format!("kind={kind} shards={shards} step={step}"),
                            );
                            window.clear();
                            // 1, 2, …, 67, 1, …: covers B = 1, partial
                            // chunks, one full 64-lane chunk and a
                            // chunk-and-a-bit.
                            window_cap = window_cap % 67 + 1;
                        }
                    }
                }
            }
            assert_batch_equals_per_event(
                &engine,
                &engine_scratches,
                &window,
                &mut scratch,
                &mut seq_batch,
                &mut par_batch,
                &format!("kind={kind} shards={shards} final"),
            );
        }
    }
}

/// Forced-parallel vs forced-sequential brokers replay one churn
/// stream: every publish (and every flushed batch) must deliver
/// identically, notification for notification.
#[test]
fn parallel_broker_delivers_like_sequential_under_churn() {
    for kind in EngineKind::ALL {
        let par = Broker::builder()
            .engine(kind)
            .shards(4)
            .parallel_threshold(0)
            .build();
        let seq = Broker::builder()
            .engine(kind)
            .shards(4)
            .parallel_threshold(usize::MAX)
            .build();
        let mut par_live: Vec<Subscription> = Vec::new();
        let mut seq_live: Vec<Subscription> = Vec::new();
        let mut batch: Vec<Arc<Event>> = Vec::new();

        let flush = |batch: &mut Vec<Arc<Event>>| {
            if !batch.is_empty() {
                assert_eq!(par.publish_batch(batch), seq.publish_batch(batch));
                batch.clear();
            }
        };

        let mut churn = ChurnScenario::new(47, 60).with_publish_ratio(0.7);
        for (step, op) in churn.ops(2_000).into_iter().enumerate() {
            match op {
                ChurnOp::Subscribe(expr) => {
                    flush(&mut batch);
                    let a = par.subscribe_expr(&expr).unwrap();
                    let b = seq.subscribe_expr(&expr).unwrap();
                    assert_eq!(a.id(), b.id(), "kind={kind} step={step}");
                    par_live.push(a);
                    seq_live.push(b);
                }
                ChurnOp::Unsubscribe(i) => {
                    flush(&mut batch);
                    drop(par_live.remove(i));
                    drop(seq_live.remove(i));
                }
                ChurnOp::Publish(event) => {
                    // Alternate single publishes and batches so both
                    // parallel paths are exercised.
                    if step % 3 == 0 {
                        batch.push(Arc::new(event));
                    } else {
                        flush(&mut batch);
                        assert_eq!(
                            par.publish(event.clone()),
                            seq.publish(event),
                            "kind={kind} step={step}"
                        );
                    }
                }
            }
        }
        flush(&mut batch);

        for (i, (a, b)) in par_live.iter().zip(&seq_live).enumerate() {
            let an = a.drain();
            let bn = b.drain();
            assert_eq!(an.len(), bn.len(), "survivor {i} on {kind}");
            for (x, y) in an.iter().zip(&bn) {
                assert_eq!(x.get("price"), y.get("price"), "survivor {i} on {kind}");
            }
        }
        assert_eq!(
            par.stats().notifications_delivered,
            seq.stats().notifications_delivered,
            "kind={kind}"
        );
    }
}

/// A one-shot latch (same pattern as `shard_concurrency.rs`).
struct Latch {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Latch {
    fn new() -> Arc<Self> {
        Arc::new(Latch {
            open: Mutex::new(false),
            cv: Condvar::new(),
        })
    }

    fn open(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }

    fn wait(&self, timeout: Duration) -> bool {
        let guard = self.open.lock().unwrap();
        let (guard, result) = self
            .cv
            .wait_timeout_while(guard, timeout, |open| !*open)
            .unwrap();
        drop(guard);
        !result.timed_out()
    }
}

/// A real engine wrapped with latches: phase 1 can announce it was
/// entered and/or park until released.
struct GatedEngine {
    inner: Box<dyn FilterEngine + Send + Sync>,
    entered: Option<Arc<Latch>>,
    release: Option<Arc<Latch>>,
    panic_in_phase1: bool,
}

impl GatedEngine {
    fn new(entered: Option<Arc<Latch>>, release: Option<Arc<Latch>>) -> Box<Self> {
        Box::new(GatedEngine {
            inner: EngineKind::NonCanonical.build(),
            entered,
            release,
            panic_in_phase1: false,
        })
    }

    fn panicking() -> Box<Self> {
        Box::new(GatedEngine {
            inner: EngineKind::NonCanonical.build(),
            entered: None,
            release: None,
            panic_in_phase1: true,
        })
    }
}

impl FilterEngine for GatedEngine {
    fn kind(&self) -> EngineKind {
        self.inner.kind()
    }
    fn subscribe(&mut self, expr: &Expr) -> Result<SubscriptionId, SubscribeError> {
        self.inner.subscribe(expr)
    }
    fn unsubscribe(&mut self, id: SubscriptionId) -> Result<(), UnsubscribeError> {
        self.inner.unsubscribe(id)
    }
    fn phase1(&self, event: &Event, out: &mut FulfilledSet) {
        if self.panic_in_phase1 {
            panic!("engine dies mid-match (test)");
        }
        if let Some(entered) = &self.entered {
            entered.open();
        }
        if let Some(release) = &self.release {
            assert!(
                release.wait(Duration::from_secs(10)),
                "test driver never released the stalled shard"
            );
        }
        self.inner.phase1(event, out);
    }
    fn phase2(
        &self,
        fulfilled: &FulfilledSet,
        scratch: &mut MatchScratch,
        matched: &mut Vec<SubscriptionId>,
    ) -> MatchStats {
        self.inner.phase2(fulfilled, scratch, matched)
    }
    fn subscription_count(&self) -> usize {
        self.inner.subscription_count()
    }
    fn subscription_id_bound(&self) -> usize {
        self.inner.subscription_id_bound()
    }
    fn registered_units(&self) -> usize {
        self.inner.registered_units()
    }
    fn unit_slot_bound(&self) -> usize {
        self.inner.unit_slot_bound()
    }
    fn predicate_count(&self) -> usize {
        self.inner.predicate_count()
    }
    fn predicate_universe(&self) -> usize {
        self.inner.predicate_universe()
    }
    fn memory_usage(&self) -> MemoryUsage {
        self.inner.memory_usage()
    }
}

/// The deterministic merge gate: while shard 1's worker is stalled
/// mid-match, shard 0's portion of the *same* publish proceeds
/// (latch-observed); after release, the merged delivery is exact —
/// the stall neither lost, duplicated, nor cross-contaminated either
/// shard's matches.
#[test]
fn stalled_worker_cannot_corrupt_or_reorder_the_merge() {
    let shard0_entered = Latch::new();
    let shard1_stalled = Latch::new();
    let release = Latch::new();

    let broker = Broker::builder()
        .engine_instances(vec![
            GatedEngine::new(Some(shard0_entered.clone()), None),
            GatedEngine::new(Some(shard1_stalled.clone()), Some(release.clone())),
        ])
        .parallel_threshold(0)
        .worker_threads(1)
        .build();

    // Round-robin: `a` lands on shard 0, `b` on shard 1; the event
    // matches both, so the merge must produce exactly one notification
    // for each.
    let a = broker.subscribe("hit = 1").unwrap();
    let b = broker.subscribe("hit = 1 or hit = 2").unwrap();

    thread::scope(|scope| {
        let publisher = {
            let broker = broker.clone();
            scope.spawn(move || broker.publish(Event::builder().attr("hit", 1_i64).build()))
        };

        // The worker is stalled inside shard 1's phase 1...
        assert!(
            shard1_stalled.wait(Duration::from_secs(10)),
            "shard 1's worker never started matching"
        );
        // ...yet the publisher still matches shard 0 inline.
        assert!(
            shard0_entered.wait(Duration::from_secs(10)),
            "a stalled worker on shard 1 blocked shard 0's matching"
        );

        release.open();
        assert_eq!(publisher.join().unwrap(), 2, "both shards delivered");
    });

    assert_eq!(a.drain().len(), 1, "shard 0's match survived the stall");
    assert_eq!(b.drain().len(), 1, "shard 1's match arrived after release");
    assert_eq!(broker.stats().notifications_delivered, 2);
}

/// A worker that panics mid-match must neither wedge the publish nor
/// pass silently: the publish completes with the healthy shards'
/// deliveries and `BrokerStats::fanout_worker_failures` records every
/// lost shard, and the pool keeps serving later publishes.
#[test]
fn panicking_worker_is_counted_and_does_not_wedge_publishing() {
    let broker = Broker::builder()
        .engine_instances(vec![
            GatedEngine::new(None, None), // healthy shard 0
            GatedEngine::panicking(),     // shard 1 dies in phase 1
        ])
        .parallel_threshold(0)
        .worker_threads(1)
        .build();
    let a = broker.subscribe("hit = 1").unwrap(); // shard 0
    let b = broker.subscribe("hit = 1").unwrap(); // shard 1 (never matched)

    for round in 1..=2u64 {
        let delivered = broker.publish(Event::builder().attr("hit", 1_i64).build());
        assert_eq!(delivered, 1, "round {round}: only shard 0 delivered");
        assert_eq!(
            broker.stats().fanout_worker_failures,
            round,
            "round {round}: the lost shard is visible in the stats"
        );
    }
    assert_eq!(a.drain().len(), 2);
    assert_eq!(
        b.drain().len(),
        0,
        "the dead shard's subscriber got nothing"
    );
}

/// Scratch-pool steady state: warm the pool, then hammer 10k parallel
/// publishes — the pool must neither grow its retained-scratch count
/// nor its heap footprint (checkout hygiene reuses, never reallocates).
#[test]
fn scratch_pool_stops_allocating_after_warmup() {
    let broker = Broker::builder()
        .engine(EngineKind::NonCanonical)
        .shards(2)
        .worker_threads(1)
        .parallel_threshold(0)
        .build();
    let mut stock = StockScenario::new(2_026);
    let _subs: Vec<Subscription> = stock
        .subscriptions(100)
        .iter()
        .map(|e| broker.subscribe_expr(e).unwrap())
        .collect();
    // A fixed event set, so repeated publishes cannot raise any
    // per-event high-water mark after the warm-up pass has seen them
    // all.
    let events: Vec<Event> = (0..100).map(|_| stock.tick()).collect();

    for event in &events {
        broker.publish(event.clone());
    }
    let pool = broker
        .scratch_pool()
        .expect("multi-shard broker pools scratches");
    let warm_pooled = pool.pooled();
    let warm_bytes = pool.heap_bytes();
    assert!(warm_pooled >= 1, "warm-up parked a scratch");
    assert!(warm_bytes > 0, "warm scratch holds buffers");

    for i in 0..10_000 {
        broker.publish(events[i % events.len()].clone());
    }
    assert_eq!(pool.pooled(), warm_pooled, "pool retention is steady");
    assert_eq!(
        pool.heap_bytes(),
        warm_bytes,
        "10k publishes allocated no new scratch memory"
    );
    assert_eq!(broker.stats().events_published, 10_100);
}

/// The trim-cap × scratch-pool interaction (PR-5 satellite): one
/// pathological spike event matched **on a worker thread** must not pin
/// its peak allocation in the pooled scratches. Steady traffic below
/// the cap keeps its warm capacity (no trim, no re-allocation); the
/// spike's return is trimmed to nothing; steady traffic then re-warms
/// and keeps matching correctly.
#[test]
fn worker_thread_spike_does_not_pin_pooled_scratch_capacity() {
    let cap = 24 << 10; // between the steady and spike footprints
    let broker = Broker::builder()
        .engine(EngineKind::NonCanonical)
        .shards(2)
        .worker_threads(1)
        .parallel_threshold(0) // every publish fans out to the worker
        .scratch_trim_cap(cap)
        .build();
    // A small steady population and a large spike-only population: the
    // spike subs size the stamp arrays (steady footprint) but only the
    // spike event explodes the candidate/matched buffers.
    let _steady: Vec<Subscription> = (0..8)
        .map(|i| broker.subscribe(&format!("tick = {i}")).unwrap())
        .collect();
    let _spikers: Vec<Subscription> = (0..4_000)
        .map(|_| broker.subscribe("boom = 1").unwrap())
        .collect();
    let steady_event = Event::builder().attr("tick", 3_i64).build();
    let spike_event = Event::builder().attr("boom", 1_i64).build();

    // Warm up on steady traffic; the warm footprint must sit below the
    // cap or the test would not distinguish steady from spike.
    for _ in 0..50 {
        assert_eq!(broker.publish(steady_event.clone()), 1);
    }
    let pool = broker.scratch_pool().expect("multi-shard broker");
    let warm = pool.heap_bytes();
    assert!(warm > 0, "steady matching warmed a pooled scratch");
    assert!(
        warm <= cap,
        "test invariant: steady footprint {warm} must fit the cap {cap}"
    );
    // Steady state really is steady: no trims, no re-allocation.
    for _ in 0..50 {
        broker.publish(steady_event.clone());
    }
    assert_eq!(pool.heap_bytes(), warm, "steady traffic never trims");

    // The spike: ~2000 matches on the worker's shard grow its lease far
    // past the cap...
    assert_eq!(broker.publish(spike_event.clone()), 4_000);
    // ...and the return trims it instead of parking the high-water
    // capacity (the old behaviour pinned it for the broker's lifetime).
    assert!(
        pool.heap_bytes() < warm,
        "spike capacity was parked: {} >= warm {warm}",
        pool.heap_bytes()
    );
    assert!(pool.pooled() >= 1, "trimmed, not dropped");

    // Steady traffic re-warms lazily and stays correct — and the
    // re-warmed footprint is the steady one, not the spike's.
    for _ in 0..50 {
        assert_eq!(broker.publish(steady_event.clone()), 1);
    }
    let rewarmed = pool.heap_bytes();
    assert!(rewarmed > 0 && rewarmed <= cap, "re-warmed to steady size");
    // The spike still delivers exactly when it happens again.
    assert_eq!(broker.publish(spike_event), 4_000);
    assert_eq!(broker.publish(steady_event), 1);
}
