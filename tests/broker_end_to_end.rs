//! End-to-end broker tests: threads, delivery policies, churn.

use std::thread;
use std::time::Duration;

use boolmatch::prelude::*;
use boolmatch::workload::scenarios::StockScenario;

#[test]
fn concurrent_publishers_subscribers_and_churn() {
    let broker = Broker::builder().engine(EngineKind::NonCanonical).build();
    let mut scenario = StockScenario::new(3);

    let stable: Vec<Subscription> = scenario
        .subscriptions(50)
        .iter()
        .map(|e| broker.subscribe_expr(e).unwrap())
        .collect();

    // Churn thread: subscribes and drops handles continuously.
    let churn_broker = broker.clone();
    let churner = thread::spawn(move || {
        let mut s = StockScenario::new(4);
        for _ in 0..200 {
            let subs: Vec<Subscription> = s
                .subscriptions(5)
                .iter()
                .map(|e| churn_broker.subscribe_expr(e).unwrap())
                .collect();
            drop(subs);
        }
    });

    // Publisher threads.
    let mut publishers = Vec::new();
    for p in 0..3 {
        let publisher = broker.publisher();
        publishers.push(thread::spawn(move || {
            let mut feed = StockScenario::new(100 + p);
            for _ in 0..500 {
                publisher.publish(feed.tick());
            }
        }));
    }

    churner.join().unwrap();
    for p in publishers {
        p.join().unwrap();
    }

    // After churn, exactly the stable subscriptions remain.
    assert_eq!(broker.subscription_count(), 50);
    let stats = broker.stats();
    assert_eq!(stats.events_published, 1_500);
    assert_eq!(stats.subscriptions_created, 50 + 200 * 5);
    assert_eq!(stats.subscriptions_removed, 200 * 5);
    drop(stable);
    assert_eq!(broker.subscription_count(), 0);
}

#[test]
fn all_engines_deliver_identical_notifications_for_notfree_corpus() {
    let mut scenario = StockScenario::new(9);
    let exprs = scenario.subscriptions(40);
    let events: Vec<Event> = (0..200).map(|_| scenario.tick()).collect();

    let mut per_engine: Vec<Vec<usize>> = Vec::new();
    for kind in EngineKind::ALL {
        let broker = Broker::builder().engine(kind).build();
        let subs: Vec<Subscription> = exprs
            .iter()
            .map(|e| broker.subscribe_expr(e).unwrap())
            .collect();
        for ev in &events {
            broker.publish(ev.clone());
        }
        per_engine.push(subs.iter().map(|s| s.drain().len()).collect());
    }
    assert_eq!(per_engine[0], per_engine[1]);
    assert_eq!(per_engine[0], per_engine[2]);
}

#[test]
fn bounded_delivery_backpressure() {
    let broker = Broker::builder()
        .delivery(DeliveryPolicy::DropNewest { capacity: 3 })
        .build();
    let sub = broker.subscribe("n >= 0").unwrap();
    for i in 0..10 {
        broker.publish(Event::builder().attr("n", i as i64).build());
    }
    // Only the first three queued; seven dropped.
    assert_eq!(sub.queued(), 3);
    assert_eq!(broker.stats().notifications_dropped, 7);
    let first = sub.recv_timeout(Duration::from_millis(100)).unwrap();
    assert_eq!(first.get("n"), Some(&0_i64.into()));
}

#[test]
fn canonical_engine_rejections_surface_through_broker() {
    // A counting broker must refuse a subscription whose DNF explodes.
    let broker = Broker::builder().engine(EngineKind::Counting).build();
    let wide: Vec<String> = (0..40).map(|i| format!("(a{i} = 1 or b{i} = 2)")).collect();
    let monster = wide.join(" and ");
    match broker.subscribe(&monster) {
        Err(BrokerError::Subscribe(e)) => {
            assert!(e.to_string().contains("conjunctions"));
        }
        other => panic!("expected DNF rejection, got {other:?}"),
    }
    // The same subscription is fine on the non-canonical broker.
    let nc = Broker::builder().engine(EngineKind::NonCanonical).build();
    assert!(nc.subscribe(&monster).is_ok());
}

#[test]
fn subscription_handles_work_across_threads() {
    let broker = Broker::builder().build();
    let sub = broker.subscribe("go = true").unwrap();
    let publisher = broker.publisher();
    let t = thread::spawn(move || {
        thread::sleep(Duration::from_millis(10));
        publisher.publish(Event::builder().attr("go", true).build())
    });
    let got = sub.recv_timeout(Duration::from_secs(5)).expect("delivery");
    assert_eq!(got.get("go"), Some(&true.into()));
    assert_eq!(t.join().unwrap(), 1);
}
