//! Integration test pinning the paper's Fig. 1 example end to end:
//! the subscription `s = (a>10 ∨ a≤5 ∨ b=1) ∧ (c≤20 ∨ c=30 ∨ d=5)`.

use boolmatch::core::EngineKind;
use boolmatch::expr::{transform, Expr};
use boolmatch::types::Event;

const FIG1: &str = "(a > 10 or a <= 5 or b = 1) and (c <= 20 or c = 30 or d = 5)";

#[test]
fn fig1_parses_to_the_paper_tree_shape() {
    let s = Expr::parse(FIG1).unwrap();
    // "a simplified example of a subscription tree": AND root with two
    // 3-ary OR children, 6 predicate leaves.
    assert_eq!(s.predicate_count(), 6);
    assert_eq!(s.depth(), 3);
    match &s {
        Expr::And(children) => {
            assert_eq!(children.len(), 2);
            for c in children {
                match c {
                    Expr::Or(grand) => assert_eq!(grand.len(), 3),
                    other => panic!("expected OR group, got {other}"),
                }
            }
        }
        other => panic!("expected AND root, got {other}"),
    }
}

#[test]
fn fig1_dnf_has_nine_disjunctions() {
    // "To register this subscription s in canonical approaches, s has
    // to be transformed into DNF. Thus, s results in 9 disjunctions."
    let s = Expr::parse(FIG1).unwrap();
    assert_eq!(transform::estimate_dnf_size(&s), 9);
    let dnf = transform::to_dnf(&s, 100).unwrap();
    assert_eq!(dnf.len(), 9);
    assert!(dnf.conjuncts().iter().all(|c| c.len() == 2));
}

#[test]
fn fig1_counting_engines_register_nine_units() {
    for kind in [EngineKind::Counting, EngineKind::CountingVariant] {
        let mut engine = kind.build_matcher();
        engine.subscribe(&Expr::parse(FIG1).unwrap()).unwrap();
        assert_eq!(engine.subscription_count(), 1);
        assert_eq!(engine.registered_units(), 9, "{kind}");
    }
    // The non-canonical engine registers it as-is.
    let mut nc = EngineKind::NonCanonical.build_matcher();
    nc.subscribe(&Expr::parse(FIG1).unwrap()).unwrap();
    assert_eq!(nc.registered_units(), 1);
}

#[test]
fn fig1_matching_agrees_across_engines_on_a_value_grid() {
    let s = Expr::parse(FIG1).unwrap();
    let mut engines: Vec<_> = EngineKind::ALL.iter().map(|k| k.build_matcher()).collect();
    for engine in &mut engines {
        engine.subscribe(&s).unwrap();
    }
    // Sweep a grid of events covering each disjunct and the misses.
    for a in [4i64, 5, 7, 11] {
        for b in [0i64, 1] {
            for c in [15i64, 25, 30] {
                for d in [5i64, 6] {
                    let event = Event::builder()
                        .attr("a", a)
                        .attr("b", b)
                        .attr("c", c)
                        .attr("d", d)
                        .build();
                    let want = s.eval_event(&event);
                    for engine in &mut engines {
                        let got = !engine.match_event(&event).matched.is_empty();
                        assert_eq!(got, want, "{} on {event}", engine.kind());
                    }
                }
            }
        }
    }
}

#[test]
fn fig1_partial_events_match_only_when_a_group_holds() {
    let s = Expr::parse(FIG1).unwrap();
    let mut nc = EngineKind::NonCanonical.build_matcher();
    nc.subscribe(&s).unwrap();

    // Only the left group satisfiable -> no match.
    let left_only = Event::builder().attr("a", 12_i64).build();
    assert!(nc.match_event(&left_only).matched.is_empty());
    // d=5 alone satisfies the right group; any left predicate completes.
    let both = Event::builder().attr("b", 1_i64).attr("d", 5_i64).build();
    assert_eq!(nc.match_event(&both).matched.len(), 1);
}
