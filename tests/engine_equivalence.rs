//! Cross-crate equivalence: scenario workloads through every engine.
//!
//! Semantics contract (DESIGN.md §6):
//! * the non-canonical engine implements exact Boolean semantics —
//!   `not` is full negation over the fulfilled set;
//! * the canonical engines implement NNF semantics — `not` becomes
//!   operator complementation, which differs exactly when an event
//!   lacks the negated attribute (an inherent limitation of canonical
//!   transformation, not a bug).

use boolmatch::core::EngineKind;
use boolmatch::expr::{transform, Expr};
use boolmatch::types::Event;
use boolmatch::workload::scenarios::{AuctionScenario, NewsScenario, StockScenario};

fn check_engine_against(
    kind: EngineKind,
    subs: &[Expr],
    events: &[Event],
    reference: impl Fn(&Expr, &Event) -> bool,
) {
    let mut engine = kind.build_matcher();
    for s in subs {
        engine.subscribe(s).unwrap();
    }
    for event in events {
        let mut got: Vec<usize> = engine
            .match_event(event)
            .matched
            .iter()
            .map(|s| s.index())
            .collect();
        got.sort();
        let want: Vec<usize> = subs
            .iter()
            .enumerate()
            .filter(|(_, s)| reference(s, event))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(got, want, "{kind} mismatch on {event}");
    }
}

#[test]
fn stock_scenario_all_engines_equal_direct_eval() {
    // Stock subscriptions are NOT-free: every engine implements exact
    // semantics and they all agree with direct evaluation.
    let mut scenario = StockScenario::new(11);
    let subs = scenario.subscriptions(120);
    assert!(subs.iter().all(|s| !s.contains_not()));
    let events: Vec<Event> = (0..300).map(|_| scenario.tick()).collect();
    for kind in EngineKind::ALL {
        check_engine_against(kind, &subs, &events, Expr::eval_event);
    }
}

#[test]
fn news_scenario_noncanonical_exact_canonical_nnf() {
    let mut scenario = NewsScenario::new(12);
    let subs = scenario.subscriptions(100);
    let events: Vec<Event> = (0..300).map(|_| scenario.headline()).collect();

    check_engine_against(EngineKind::NonCanonical, &subs, &events, |s, e| {
        s.eval_event(e)
    });
    for kind in [EngineKind::Counting, EngineKind::CountingVariant] {
        check_engine_against(kind, &subs, &events, |s, e| {
            transform::eliminate_not(s).eval_event(e)
        });
    }
}

#[test]
fn auction_scenario_noncanonical_exact_canonical_nnf() {
    let mut scenario = AuctionScenario::new(13);
    let subs = scenario.subscriptions(80);
    let events: Vec<Event> = (0..300).map(|_| scenario.bid()).collect();

    check_engine_against(EngineKind::NonCanonical, &subs, &events, |s, e| {
        s.eval_event(e)
    });
    for kind in [EngineKind::Counting, EngineKind::CountingVariant] {
        check_engine_against(kind, &subs, &events, |s, e| {
            transform::eliminate_not(s).eval_event(e)
        });
    }
}

#[test]
fn negation_semantics_diverge_exactly_on_missing_attributes() {
    // Documented divergence: `not (a = 1) and b = 2` on an event
    // without `a`.
    let expr = Expr::parse("not (a = 1) and b = 2").unwrap();
    let event = Event::builder().attr("b", 2_i64).build();

    let mut nc = EngineKind::NonCanonical.build_matcher();
    nc.subscribe(&expr).unwrap();
    // Full negation: a=1 is unfulfilled, so `not` holds.
    assert_eq!(nc.match_event(&event).matched.len(), 1);

    for kind in [EngineKind::Counting, EngineKind::CountingVariant] {
        let mut engine = kind.build_matcher();
        engine.subscribe(&expr).unwrap();
        // Complemented: `a != 1` needs the attribute to be present.
        assert!(engine.match_event(&event).matched.is_empty(), "{kind}");
    }

    // With the attribute present, everyone agrees.
    let full = Event::builder().attr("a", 3_i64).attr("b", 2_i64).build();
    assert_eq!(nc.match_event(&full).matched.len(), 1);
    for kind in [EngineKind::Counting, EngineKind::CountingVariant] {
        let mut engine = kind.build_matcher();
        engine.subscribe(&expr).unwrap();
        assert_eq!(engine.match_event(&full).matched.len(), 1, "{kind}");
    }
}

#[test]
fn full_pipeline_events_from_satisfying_generator() {
    // satisfying_event builds a witness per subscription; the engines
    // must match it through the real (phase-1 + phase-2) pipeline.
    let mut scenario = StockScenario::new(21);
    let subs = scenario.subscriptions(60);
    let mut nc = EngineKind::NonCanonical.build_matcher();
    let ids: Vec<_> = subs.iter().map(|s| nc.subscribe(s).unwrap()).collect();
    for (i, s) in subs.iter().enumerate() {
        let event = boolmatch::workload::satisfying_event(s)
            .unwrap_or_else(|| panic!("subscription {i} should be satisfiable: {s}"));
        let matched = nc.match_event(&event).matched;
        assert!(
            matched.contains(&ids[i]),
            "witness for {i} did not match its subscription"
        );
    }
}
