//! Dynamic lock-order enforcement, end to end: the `parking_lot` shim's
//! debug-build lockdep must catch a broker-level inversion of the
//! documented discipline (ascending shard indexes, directory innermost)
//! and must stay silent across honest broker traffic.
//!
//! Lock classes are process-global and interned by name, so a test-side
//! `RwLock` classed `shard[0]` shares its class with the broker's shard
//! 0: the acquisition-order edges recorded by *real* broker code paths
//! (subscribe commits, migration, rebalancing) are what the deliberate
//! inversions below collide with.
//!
//! The inversion tests are `cfg(debug_assertions)`-only — release
//! builds compile the checker out entirely, which
//! `lockdep_is_compiled_out_in_release` pins down in both profiles.

use boolmatch::prelude::*;

/// Honest traffic that exercises the real edge set: subscribe commits
/// (`shard[i]` → `directory`), publishes (per-shard state only), churn,
/// and a frequency rebalance (`maintenance` → ascending shard pairs →
/// `directory`).
fn run_broker_workload() {
    let broker = Broker::builder().shards(4).build();
    let subs: Vec<Subscription> = (0..32)
        .map(|i| broker.subscribe(&format!("a = {}", i % 8)).unwrap())
        .collect();
    for i in 0..16_i64 {
        broker.publish(Event::builder().attr("a", i % 8).build());
    }
    broker.rebalance_by_match_frequency(8);
    for sub in &subs[..16] {
        assert!(broker.unsubscribe(sub.id()));
    }
    broker.publish(Event::builder().attr("a", 3_i64).build());
    drop(subs);
}

#[test]
fn honest_broker_traffic_raises_no_lockdep_violation() {
    // Would panic inside the shim if any real code path recorded a
    // cycle; doubles as the no-false-positives check for this binary's
    // process-global graph before the inversion tests poke at it.
    run_broker_workload();
}

#[test]
fn lockdep_is_compiled_out_in_release() {
    assert_eq!(parking_lot::lockdep::is_active(), cfg!(debug_assertions));
}

#[cfg(debug_assertions)]
mod debug_only {
    use super::*;
    use boolmatch::core::lock_classes;
    use parking_lot::RwLock;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn classed(name: &str) -> RwLock<()> {
        let lock = RwLock::new(());
        lock.set_class(name);
        lock
    }

    fn panic_text(result: std::thread::Result<()>) -> String {
        match result {
            Ok(()) => String::new(),
            Err(payload) => payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_default(),
        }
    }

    #[test]
    fn descending_shard_acquisition_panics() {
        // Seed the real ascending edges (and the rest of the broker's
        // edge set) from genuine traffic…
        run_broker_workload();
        let lo = classed(&lock_classes::shard(0));
        let hi = classed(&lock_classes::shard(1));
        // …make the `shard[0]` → `shard[1]` edge explicit regardless of
        // how much the workload migrated…
        {
            let _a = lo.write();
            let _b = hi.write();
        }
        // …then acquire the same pair descending: a cycle.
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _b = hi.write();
            let _a = lo.write();
        }));
        let message = panic_text(match result {
            Ok(()) => panic!("descending shard acquisition must panic under lockdep"),
            Err(payload) => Err(payload),
        });
        assert!(
            message.contains("lockdep"),
            "expected a lockdep violation, got: {message}"
        );
        assert!(message.contains("shard[0]") && message.contains("shard[1]"));
    }

    #[test]
    fn directory_outside_shard_panics() {
        // Subscribe commits nest `shard[i]` → `directory`; holding a
        // directory-classed lock *around* a shard acquisition inverts
        // the innermost rule.
        run_broker_workload();
        let directory = classed(lock_classes::DIRECTORY);
        let shard = classed(&lock_classes::shard(2));
        // Ensure the shard → directory edge exists even if placement
        // skipped shard 2 entirely.
        {
            let _s = shard.write();
            let _d = directory.write();
        }
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _d = directory.write();
            let _s = shard.write();
        }));
        let message = panic_text(match result {
            Ok(()) => panic!("directory-outside-shard must panic under lockdep"),
            Err(payload) => Err(payload),
        });
        assert!(
            message.contains("lockdep"),
            "expected a lockdep violation, got: {message}"
        );
        assert!(message.contains("directory"));
    }

    #[test]
    fn broker_still_works_after_a_caught_violation() {
        // The checker panics *before* recording the violating edge, so
        // a caught violation must leave the graph acyclic and the
        // broker fully usable.
        let probe_a = classed("lockdep-test/probe-a");
        let probe_b = classed("lockdep-test/probe-b");
        {
            let _a = probe_a.write();
            let _b = probe_b.write();
        }
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _b = probe_b.write();
            let _a = probe_a.write();
        }));
        assert!(result.is_err());
        run_broker_workload();
    }
}
