//! The PR-5 hot-path contract, proven without relying on timing:
//!
//! * **Directory off the publish path** — a thread holding the
//!   placement directory's **write** lock must not block a single
//!   publish, on any shard, on either publish pipeline (sequential and
//!   forced-parallel) or the batch path. Latch-observed: the publisher
//!   provably starts *while* the lock is held.
//! * **Generation-tagged recycling is ABA-safe** — with
//!   `recycled_ids`, a stale handle whose slot has been reissued can
//!   no longer remove the slot's new owner (the regression that kept
//!   bounded id recycling engine-only through PR 4). CI runs this one
//!   under `--release` too.
//! * **Equivalence under everything at once** — a sharded broker with
//!   recycled ids, replaying churn with count-based *and*
//!   frequency-based rebalancing plus live broker `resize`, delivers
//!   exactly like a flat broker, for every engine kind and
//!   S ∈ {1, 3, 8}.
//! * **Content-aware pruning is invisible to delivery** — a clustered,
//!   pruning broker replaying the selective workload (with churn, both
//!   rebalancers and live resizes mid-stream) delivers exactly like a
//!   flat broker, for every engine kind and S ∈ {1, 3, 8}, while the
//!   per-shard prune counters prove shards really were skipped —
//!   and the batched publish path (`publish_batch_events`, one
//!   synopsis walk and one engine batch pass per shard per batch)
//!   delivers identically to the flat broker's one-at-a-time walk.
//! * **Hot-key skew** — on the `HotKeyScenario` workload,
//!   count-balanced placement provably concentrates the match load on
//!   one shard, and the frequency-weighted rebalancer measurably
//!   spreads it while a publisher keeps publishing.

use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

use boolmatch::broker::RebalancePolicy;
use boolmatch::prelude::*;
use boolmatch::workload::scenarios::{
    ChurnOp, HotKeyScenario, RebalanceOp, RebalanceScenario, SelectiveScenario,
};

/// A one-shot latch: `open` releases every current and future `wait`.
struct Latch {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Latch {
    fn new() -> Arc<Self> {
        Arc::new(Latch {
            open: Mutex::new(false),
            cv: Condvar::new(),
        })
    }

    fn open(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }

    /// Returns whether the latch opened within `timeout`.
    fn wait(&self, timeout: Duration) -> bool {
        let guard = self.open.lock().unwrap();
        let (guard, result) = self
            .cv
            .wait_timeout_while(guard, timeout, |open| !*open)
            .unwrap();
        drop(guard);
        !result.timed_out()
    }
}

fn ev(pairs: &[(&str, i64)]) -> Event {
    Event::from_pairs(pairs.iter().map(|(n, v)| (*n, *v)))
}

/// The acceptance gate: a thread parks **holding the directory write
/// lock** (the lock every subscribe/unsubscribe/migration needs);
/// publishes on every shard and every pipeline must still complete
/// while it is parked. Before PR 5, each publish took the directory
/// read lock once per shard per event to translate matched ids, so
/// this test would hang at the first publish.
#[test]
fn publishes_flow_while_directory_write_lock_is_held() {
    for threshold in [usize::MAX, 0] {
        // usize::MAX → sequential walk; 0 → forced parallel fan-out.
        let broker = Broker::builder()
            .shards(3)
            .parallel_threshold(threshold)
            .build();
        let subs: Vec<Subscription> = (0..9)
            .map(|i| broker.subscribe(&format!("a = {i} or all = 1")).unwrap())
            .collect();
        assert_eq!(broker.shard_loads(), vec![3, 3, 3]);

        let lock_held = Latch::new();
        let release = Latch::new();
        let published = Latch::new();

        thread::scope(|scope| {
            let holder = {
                let broker = broker.clone();
                let lock_held = lock_held.clone();
                let release = release.clone();
                scope.spawn(move || {
                    broker.with_directory_write_held(|| {
                        lock_held.open();
                        assert!(
                            release.wait(Duration::from_secs(30)),
                            "test driver never released the directory holder"
                        );
                    });
                })
            };
            assert!(
                lock_held.wait(Duration::from_secs(10)),
                "holder never acquired the directory write lock"
            );

            // With the directory write-held, publish on every pipeline:
            // single (sequential or parallel by threshold), arc, and
            // batch. Every subscription lives on some shard, so all
            // three shards translate matched ids here.
            let publisher = {
                let broker = broker.clone();
                let published = published.clone();
                scope.spawn(move || {
                    let mut delivered = broker.publish(ev(&[("all", 1)]));
                    delivered += broker.publish_arc(Arc::new(ev(&[("all", 1)])));
                    delivered += broker.publish_batch_events(&[ev(&[("all", 1)]), ev(&[("a", 4)])]);
                    published.open();
                    delivered
                })
            };
            assert!(
                published.wait(Duration::from_secs(10)),
                "a publish blocked while the directory write lock was held \
                 (threshold={threshold}): the directory is back on the hot path"
            );
            assert_eq!(
                publisher.join().unwrap(),
                9 + 9 + 9 + 1,
                "all deliveries completed under the held lock"
            );
            release.open();
            holder.join().unwrap();
        });

        for sub in &subs {
            assert_eq!(sub.drain().len(), 4 - usize::from(sub.id().index() != 4));
        }
    }
}

/// The generation-tag ABA regression (CI runs this under `--release`
/// too): with recycled ids, an explicitly unsubscribed handle whose
/// slot has been reissued to a new subscription must not, on drop,
/// remove the new owner. Through PR 4 the slot reuse made the stale
/// drop-unsubscribe alias the new id, which is exactly why recycling
/// was not offered on the broker.
#[test]
fn recycled_id_generations_are_aba_safe() {
    let broker = Broker::builder().shards(2).recycled_ids().build();
    let stale = broker.subscribe("old = 1").unwrap();
    let stale_id = stale.id();
    // Explicit removal; the handle (and its pending drop-unsubscribe)
    // stays alive.
    assert!(broker.unsubscribe(stale_id));
    // The freed slot is reissued to the victim-to-be: same slot, next
    // generation — a *different* id.
    let survivor = broker.subscribe("new = 1").unwrap();
    assert_eq!(survivor.id().slot(), stale_id.slot(), "slot was recycled");
    assert_ne!(survivor.id(), stale_id, "generation tag distinguishes them");
    assert!(survivor.id().generation() > stale_id.generation());

    // The stale handle drops and fires its drop-unsubscribe with the
    // old id. Generation tagging makes it a no-op...
    drop(stale);
    assert_eq!(broker.subscription_count(), 1, "survivor not collateral");
    // ...and the survivor still matches and delivers.
    assert_eq!(broker.publish(ev(&[("new", 1)])), 1);
    assert_eq!(survivor.drain().len(), 1);

    // Same property at the engine layer.
    let mut engine = ShardedEngine::with_recycled_ids(EngineKind::NonCanonical, 2);
    let a = engine.subscribe(&Expr::parse("x = 1").unwrap()).unwrap();
    engine.unsubscribe(a).unwrap();
    let b = engine.subscribe(&Expr::parse("x = 2").unwrap()).unwrap();
    assert_eq!(b.slot(), a.slot());
    assert_ne!(b, a);
    // The stale id is rejected, not aliased onto b.
    assert!(engine.unsubscribe(a).is_err());
    assert_eq!(engine.subscription_count(), 1);
}

/// The headline equivalence replay: a sharded broker running with
/// **recycled ids**, count-based `rebalance()`, frequency-based
/// `rebalance_by_match_frequency()` *and* live broker `resize()` at
/// deterministic marks delivers exactly like a flat broker — per
/// publish and per surviving subscriber — for every engine kind and
/// S ∈ {1, 3, 8}. Ids diverge by design (recycling re-tags slots), so
/// subscribers are matched by live-list position.
#[test]
fn churny_rebalancing_resizing_recycled_broker_delivers_like_flat() {
    for kind in EngineKind::ALL {
        for shards in [1usize, 3, 8] {
            let flat = Broker::builder().engine(kind).build();
            let sharded = Broker::builder()
                .engine(kind)
                .shards(shards)
                .recycled_ids()
                .build();
            let mut flat_live: Vec<Subscription> = Vec::new();
            let mut sharded_live: Vec<Subscription> = Vec::new();
            let mut scenario = RebalanceScenario::new(23, 40, shards)
                .with_rebalance_every(37)
                .with_resize_every(101);
            let mut resizes = 0usize;

            for (step, op) in scenario.ops(1_000).into_iter().enumerate() {
                match op {
                    RebalanceOp::Churn(ChurnOp::Subscribe(expr)) => {
                        flat_live.push(flat.subscribe_expr(&expr).unwrap());
                        sharded_live.push(sharded.subscribe_expr(&expr).unwrap());
                    }
                    RebalanceOp::Churn(ChurnOp::Unsubscribe(i)) => {
                        drop(flat_live.remove(i));
                        drop(sharded_live.remove(i));
                    }
                    RebalanceOp::Churn(ChurnOp::Publish(event)) => {
                        let a = flat.publish(event.clone());
                        let b = sharded.publish(event);
                        assert_eq!(a, b, "kind={kind} shards={shards} step={step}");
                    }
                    RebalanceOp::Rebalance => {
                        // Alternate both rebalancing policies through
                        // the same stream.
                        sharded.rebalance();
                        sharded.rebalance_by_match_frequency(8);
                        let loads = sharded.shard_loads();
                        assert_eq!(
                            loads.iter().sum::<usize>(),
                            sharded_live.len(),
                            "no subscription lost at {step}"
                        );
                    }
                    RebalanceOp::Resize(n) => {
                        resizes += 1;
                        sharded.resize(n);
                        assert_eq!(sharded.shard_count(), n, "step {step}");
                    }
                }
            }
            assert!(resizes >= 3, "the ladder actually ran");
            // The ladder returns to the base shard count only after a
            // multiple of 3 resizes; just require a consistent state.
            assert_eq!(
                sharded.shard_loads().iter().sum::<usize>(),
                sharded_live.len()
            );

            for (i, (a, b)) in flat_live.iter().zip(&sharded_live).enumerate() {
                assert_eq!(
                    a.drain().len(),
                    b.drain().len(),
                    "survivor {i}, kind={kind} shards={shards}"
                );
            }
            let fs = flat.stats();
            let ss = sharded.stats();
            assert_eq!(fs.notifications_delivered, ss.notifications_delivered);
            assert_eq!(fs.subscriptions_created, ss.subscriptions_created);
            assert_eq!(fs.subscriptions_removed, ss.subscriptions_removed);
            // Recycling bounded the sharded table under the churn while
            // the flat broker's arrival-order table kept growing.
            assert!(
                ss.subscriptions_created > sharded_live.len() as u64,
                "the stream actually churned"
            );
        }
    }
}

/// Content-aware routing, end to end: a broker with
/// `ClusterByAttribute` placement and (default-on) synopsis pruning
/// replays the selective workload — group-pinned conjunctions, churn
/// mid-stream, both rebalancing policies, a live resize up and back —
/// and must deliver exactly like a flat broker, per publish and per
/// surviving subscriber, for every engine kind and S ∈ {1, 3, 8}.
/// For S > 1 the per-shard prune counters must show that shards were
/// really skipped, not merely matched-and-empty: the equivalence holds
/// *because* the synopsis is conservative, not because pruning never
/// engaged.
#[test]
fn clustered_pruning_broker_delivers_like_flat() {
    for kind in EngineKind::ALL {
        for shards in [1usize, 3, 8] {
            let flat = Broker::builder().engine(kind).build();
            let sharded = Broker::builder()
                .engine(kind)
                .shards(shards)
                .placement(PlacementPolicy::ClusterByAttribute)
                .build();

            let mut scenario = SelectiveScenario::new(0x5e1ec7 + shards as u64, 8);
            let mut live: Vec<(Subscription, Subscription)> = scenario
                .subscriptions(48)
                .iter()
                .map(|expr| {
                    (
                        flat.subscribe_expr(expr).unwrap(),
                        sharded.subscribe_expr(expr).unwrap(),
                    )
                })
                .collect();

            for (step, event) in scenario.events(120).into_iter().enumerate() {
                match step {
                    // Churn: dropping the handle unsubscribes, which
                    // must retract the synopsis entry on whichever
                    // shard currently hosts the subscription.
                    s if s % 9 == 4 => {
                        drop(live.remove(live.len() / 2));
                    }
                    40 => {
                        sharded.rebalance();
                        sharded.rebalance_by_match_frequency(8);
                    }
                    70 => {
                        sharded.resize(shards + 1);
                    }
                    100 => {
                        sharded.resize(shards);
                    }
                    _ => {}
                }
                let a = flat.publish(event.clone());
                let b = sharded.publish(event);
                assert_eq!(a, b, "kind={kind} shards={shards} step={step}");
            }

            for (i, (a, b)) in live.iter().enumerate() {
                assert_eq!(
                    a.drain().len(),
                    b.drain().len(),
                    "survivor {i}, kind={kind} shards={shards}"
                );
            }
            assert_eq!(
                flat.stats().notifications_delivered,
                sharded.stats().notifications_delivered
            );
            if shards > 1 {
                // Counters reset with the cells on resize, so this
                // covers (at least) the post-resize tail of the stream.
                let prunes: u64 = sharded.shard_prune_counts().iter().sum();
                assert!(
                    prunes > 0,
                    "pruning never fired: kind={kind} shards={shards}"
                );
            }
        }
    }
}

/// The batch publish path composes with content-aware pruning: a
/// clustered pruning broker consuming the selective stream in batches
/// (through `publish_batch_events`, so the thread-local `Arc` buffer
/// reuse is on the tested path too) delivers exactly like a flat
/// broker consuming the same stream one event at a time — per batch
/// and per surviving subscriber, with churn mid-stream — while the
/// prune counters prove the batch path really skipped shards via the
/// once-per-batch synopsis walk.
#[test]
fn batched_publish_composes_with_clustered_pruning() {
    for kind in EngineKind::ALL {
        for shards in [1usize, 3, 8] {
            let flat = Broker::builder().engine(kind).build();
            let sharded = Broker::builder()
                .engine(kind)
                .shards(shards)
                .placement(PlacementPolicy::ClusterByAttribute)
                .build();

            let mut scenario = SelectiveScenario::new(0xba7c4 + shards as u64, 8);
            let mut live: Vec<(Subscription, Subscription)> = scenario
                .subscriptions(48)
                .iter()
                .map(|expr| {
                    (
                        flat.subscribe_expr(expr).unwrap(),
                        sharded.subscribe_expr(expr).unwrap(),
                    )
                })
                .collect();

            for round in 0..12 {
                // Batch lengths sweep past the 64-lane chunk width so
                // partial and full chunks both replay.
                let events = scenario.events(8 + round * 9);
                if round == 5 {
                    drop(live.remove(live.len() / 2));
                }
                if round == 8 {
                    sharded.rebalance_by_match_frequency(8);
                }
                let single: usize = events.iter().map(|e| flat.publish(e.clone())).sum();
                let batched = sharded.publish_batch_events(&events);
                assert_eq!(batched, single, "kind={kind} shards={shards} round={round}");
            }

            for (i, (a, b)) in live.iter().enumerate() {
                assert_eq!(
                    a.drain().len(),
                    b.drain().len(),
                    "survivor {i}, kind={kind} shards={shards}"
                );
            }
            assert_eq!(
                flat.stats().notifications_delivered,
                sharded.stats().notifications_delivered
            );
            if shards > 1 {
                let prunes: u64 = sharded.shard_prune_counts().iter().sum();
                assert!(
                    prunes > 0,
                    "batch pruning never fired: kind={kind} shards={shards}"
                );
            }
        }
    }
}

/// Hot-key skew, end to end: stride = shard count parks every hot
/// subscription on shard 0 (counts balanced — `rebalance()` is
/// provably useless here), the per-shard match counters expose the
/// skew, and frequency-weighted ticks drain match load off the hot
/// shard while delivery stays exact.
#[test]
fn match_frequency_rebalancer_fixes_hot_key_skew_counts_cannot_see() {
    let shards = 4;
    let broker = Broker::builder().shards(shards).build();
    let mut scenario = HotKeyScenario::new(11, shards);
    let subs: Vec<Subscription> = scenario
        .subscriptions(64)
        .iter()
        .map(|e| broker.subscribe_expr(e).unwrap())
        .collect();
    let hot_subs = scenario.hot_subscriptions();
    assert_eq!(hot_subs, 16);
    // Counts are perfectly balanced; count-based rebalance sees nothing.
    assert_eq!(broker.shard_loads(), vec![16; shards]);
    assert_eq!(broker.rebalance(), 0);

    // Arm the frequency baseline, then drive hot traffic.
    assert_eq!(broker.rebalance_by_match_frequency(usize::MAX), 0);
    let hot_event = ev(&[("hot", 1), ("key", 0), ("priority", 0)]);
    for _ in 0..32 {
        assert_eq!(broker.publish(hot_event.clone()), hot_subs);
    }
    let hits = broker.shard_match_hits();
    assert_eq!(hits[0], 32 * hot_subs as u64, "all match load on shard 0");
    assert_eq!(&hits[1..], &[0, 0, 0], "count-balanced yet fully skewed");

    // Tick until the hot shard's match production stops dominating:
    // publish between ticks so the counters keep exposing the residual
    // skew. Victims move cold subs first (highest locals), then the
    // hot ones — the feedback loop converges regardless.
    let mut baseline = broker.shard_match_hits();
    for _round in 0..64 {
        for _ in 0..8 {
            assert_eq!(broker.publish(hot_event.clone()), hot_subs);
        }
        broker.rebalance_by_match_frequency(8);
        let hits = broker.shard_match_hits();
        let delta: Vec<u64> = hits
            .iter()
            .zip(&baseline)
            .map(|(h, b)| h.saturating_sub(*b))
            .collect();
        baseline = hits;
        let total: u64 = delta.iter().sum();
        if total > 0 && *delta.iter().max().unwrap() * 2 <= total {
            // No shard produces more than half the match load any
            // more: the hot set has measurably spread.
            break;
        }
    }
    let final_delta: Vec<u64> = {
        let before = broker.shard_match_hits();
        assert_eq!(broker.publish(hot_event.clone()), hot_subs);
        broker
            .shard_match_hits()
            .iter()
            .zip(&before)
            .map(|(a, b)| a - b)
            .collect()
    };
    let max = *final_delta.iter().max().unwrap();
    assert!(
        max * 2 <= hot_subs as u64,
        "hot matches still concentrated after frequency rebalancing: {final_delta:?}"
    );
    assert!(
        broker.stats().subscriptions_migrated > 0,
        "the frequency policy actually migrated"
    );

    // Delivery stayed exact for every subscriber through all of it.
    assert_eq!(broker.publish(hot_event.clone()), hot_subs);
    for (i, sub) in subs.iter().enumerate() {
        let expected = if i % shards == 0 { 32 + 8 * 8 + 2 } else { 0 };
        // Rounds may have exited early; just assert hot subs got every
        // hot event and cold subs none.
        if i % shards == 0 {
            assert!(sub.drain().len() >= 34, "hot sub {i} missed deliveries");
        } else {
            assert_eq!(sub.drain().len(), 0, "cold sub {i} got {expected}");
        }
    }
}

/// The background thread, racing real publishes and a live resize:
/// at-most-once delivery per event per subscriber, queues reconcile
/// exactly with the broker's counters, and once everything is
/// quiescent delivery is exact again.
#[test]
fn background_rebalance_races_publishes_and_resize_safely() {
    let broker = Broker::builder()
        .shards(4)
        .recycled_ids()
        .background_rebalance(Duration::from_millis(1), RebalancePolicy::MatchFrequency)
        .build();
    assert!(broker.background_rebalance_active());
    // All-matching subscriptions, skewed onto shards 0 and 3 by
    // dropping shards 1 and 2's arrivals.
    let mut subs: Vec<Subscription> = (0..40)
        .map(|_| broker.subscribe("tick = 1").unwrap())
        .collect();
    for i in (0..subs.len()).rev() {
        if i % 4 == 1 || i % 4 == 2 {
            drop(subs.remove(i));
        }
    }
    assert_eq!(broker.shard_loads(), vec![10, 0, 0, 10]);

    let publishes = 200usize;
    thread::scope(|scope| {
        let publisher = {
            let broker = broker.clone();
            scope.spawn(move || {
                for _ in 0..publishes {
                    broker.publish(ev(&[("tick", 1)]));
                    thread::yield_now();
                }
            })
        };
        let resizer = {
            let broker = broker.clone();
            scope.spawn(move || {
                broker.resize(6);
                broker.rebalance();
                broker.resize(2);
                broker.resize(4);
            })
        };
        publisher.join().unwrap();
        resizer.join().unwrap();
    });
    assert_eq!(broker.shard_count(), 4);
    assert_eq!(broker.shard_loads().iter().sum::<usize>(), subs.len());

    // At-most-once per event per subscriber, and no phantom deliveries.
    let mut total_drained = 0u64;
    for (i, sub) in subs.iter().enumerate() {
        let got = sub.drain().len();
        assert!(got <= publishes, "subscriber {i} got {got} > {publishes}");
        total_drained += got as u64;
    }
    assert_eq!(total_drained, broker.stats().notifications_delivered);

    // Quiescent: exact delivery, everything alive and routable.
    assert_eq!(broker.publish(ev(&[("tick", 1)])), subs.len());
    for sub in &subs {
        assert_eq!(sub.drain().len(), 1);
    }
    drop(subs);
    assert_eq!(broker.subscription_count(), 0);
}

/// Broker resize composes with everything the engine-level resize
/// already guaranteed: grow → spread → shrink under a churning live
/// list, with ids stable throughout (arrival-order mode here, so ids
/// can be checked against a flat broker's).
#[test]
fn broker_resize_keeps_flat_alignment_in_arrival_order_mode() {
    let flat = Broker::builder().build();
    let sharded = Broker::builder().shards(3).build();
    let mut flat_live: Vec<Subscription> = Vec::new();
    let mut sharded_live: Vec<Subscription> = Vec::new();
    let mut scenario = RebalanceScenario::new(61, 30, 3)
        .with_rebalance_every(29)
        .with_resize_every(67);

    for (step, op) in scenario.ops(600).into_iter().enumerate() {
        match op {
            RebalanceOp::Churn(ChurnOp::Subscribe(expr)) => {
                let a = flat.subscribe_expr(&expr).unwrap();
                let b = sharded.subscribe_expr(&expr).unwrap();
                assert_eq!(a.id(), b.id(), "arrival-order ids diverge at {step}");
                flat_live.push(a);
                sharded_live.push(b);
            }
            RebalanceOp::Churn(ChurnOp::Unsubscribe(i)) => {
                drop(flat_live.remove(i));
                drop(sharded_live.remove(i));
            }
            RebalanceOp::Churn(ChurnOp::Publish(event)) => {
                assert_eq!(
                    flat.publish(event.clone()),
                    sharded.publish(event),
                    "step {step}"
                );
            }
            RebalanceOp::Rebalance => {
                sharded.rebalance();
            }
            RebalanceOp::Resize(n) => {
                sharded.resize(n);
                assert_eq!(sharded.shard_count(), n);
            }
        }
    }
    for (i, (a, b)) in flat_live.iter().zip(&sharded_live).enumerate() {
        assert_eq!(a.drain().len(), b.drain().len(), "survivor {i}");
    }
    assert_eq!(
        flat.stats().notifications_delivered,
        sharded.stats().notifications_delivered
    );
}
