//! Concurrency stress: many publisher threads matching under the
//! engine's read lock while subscribe/unsubscribe churn takes the
//! write lock — the shared-read matching API's integration test.
//!
//! Correctness bar: subscriptions that exist for the whole run receive
//! **exactly** the notifications their expressions select — no lost
//! and no duplicate deliveries — and `BrokerStats` counters reconcile
//! with what the subscribers actually observed.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::thread;
use std::time::Duration;

use boolmatch::core::{
    FilterEngine, FulfilledSet, MatchScratch, MatchStats, MemoryUsage, SubscribeError,
    UnsubscribeError,
};
use boolmatch::expr::Expr;
use boolmatch::prelude::*;

const PUBLISHERS: usize = 4;
const EVENTS_PER_PUBLISHER: usize = 400;
const CHURN_ROUNDS: usize = 120;
const CHURN_BATCH: usize = 4;

fn event(n: i64) -> Event {
    Event::builder()
        .attr("tick", n)
        .attr("parity", n % 2)
        .build()
}

/// Runs the stress workload and checks exact delivery on one broker.
fn stress(kind: EngineKind) {
    let broker = Broker::builder().engine(kind).build();

    // Stable subscriptions with exactly predictable selectivity.
    let all = broker.subscribe("tick >= 0").unwrap();
    let evens = broker.subscribe("parity = 0 and tick >= 0").unwrap();
    let none = broker.subscribe("tick < 0").unwrap();

    let published = AtomicUsize::new(0);
    thread::scope(|scope| {
        // Churn: registers batches of never-matching subscriptions and
        // drops them, forcing write-lock acquisitions (predicate
        // interning, association-table edits, arena churn) interleaved
        // with the publishers' read-lock matching.
        for c in 0..2 {
            let broker = broker.clone();
            scope.spawn(move || {
                for round in 0..CHURN_ROUNDS {
                    let subs: Vec<Subscription> = (0..CHURN_BATCH)
                        .map(|i| {
                            let expr = format!("churn{c}_{i} = {} and tick < 0", round % 7);
                            broker.subscribe(&expr).unwrap()
                        })
                        .collect();
                    drop(subs);
                }
            });
        }

        for p in 0..PUBLISHERS {
            let publisher = broker.publisher();
            let published = &published;
            scope.spawn(move || {
                for i in 0..EVENTS_PER_PUBLISHER {
                    let n = (p * EVENTS_PER_PUBLISHER + i) as i64;
                    let delivered = publisher.publish(event(n));
                    // `all` and (for even ticks) `evens` always match.
                    assert!(
                        delivered > usize::from(n % 2 == 0),
                        "event {n} under-delivered ({delivered}) on {kind}"
                    );
                    // ordering: pure tally; the scope join below
                    // happens-before the final load.
                    published.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });

    // ordering: read after the scope join; all writers are done.
    let total = published.load(Ordering::Relaxed);
    assert_eq!(total, PUBLISHERS * EVENTS_PER_PUBLISHER);

    // Exact delivery: no lost, no duplicate notifications.
    let got_all = all.drain();
    let got_evens = evens.drain();
    assert_eq!(got_all.len(), total, "tick >= 0 sees every event on {kind}");
    assert_eq!(
        got_evens.len(),
        total / 2,
        "parity = 0 sees exactly the even half on {kind}"
    );
    assert_eq!(none.drain().len(), 0, "tick < 0 sees nothing on {kind}");

    // Each event id arrives exactly once at each matching subscriber.
    let mut ticks: Vec<i64> = got_all
        .iter()
        .map(|e| e.get("tick").and_then(Value::as_int).unwrap())
        .collect();
    ticks.sort_unstable();
    ticks.dedup();
    assert_eq!(ticks.len(), total, "duplicate or lost ticks on {kind}");

    // Counters reconcile with observations: churn subscriptions never
    // match, so every delivered notification was observed above.
    let stats = broker.stats();
    assert_eq!(stats.events_published, total as u64);
    assert_eq!(stats.notifications_delivered, (total + total / 2) as u64);
    assert_eq!(stats.notifications_dropped, 0);
    assert_eq!(
        stats.subscriptions_created,
        3 + (2 * CHURN_ROUNDS * CHURN_BATCH) as u64
    );
    assert_eq!(
        stats.subscriptions_removed,
        (2 * CHURN_ROUNDS * CHURN_BATCH) as u64
    );
    assert_eq!(broker.subscription_count(), 3);

    // The engine stays fully usable after the churn.
    let late = broker.subscribe("tick = 123456").unwrap();
    assert_eq!(broker.publish(event(123_456)), 3); // `all` + `evens` + `late`
    assert_eq!(late.drain().len(), 1);
}

#[test]
fn noncanonical_engine_survives_concurrent_churn() {
    stress(EngineKind::NonCanonical);
}

#[test]
fn counting_engine_survives_concurrent_churn() {
    stress(EngineKind::Counting);
}

#[test]
fn counting_variant_engine_survives_concurrent_churn() {
    stress(EngineKind::CountingVariant);
}

/// A latch that `phase1` blocks on until `expected` threads are inside
/// matching at the same time — possible only if `Broker::publish`
/// matches under a shared (read) lock.
struct Gate {
    inside: Mutex<usize>,
    all_in: Condvar,
    expected: usize,
}

impl Gate {
    fn new(expected: usize) -> Self {
        Gate {
            inside: Mutex::new(0),
            all_in: Condvar::new(),
            expected,
        }
    }

    /// Returns whether all `expected` threads arrived within 10s.
    fn enter(&self) -> bool {
        let mut inside = self.inside.lock().unwrap();
        *inside += 1;
        self.all_in.notify_all();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while *inside < self.expected {
            let now = std::time::Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self.all_in.wait_timeout(inside, deadline - now).unwrap();
            inside = guard;
        }
        true
    }
}

/// An engine whose matching blocks on the gate; everything else is a
/// minimal no-op implementation.
struct GateEngine {
    gate: std::sync::Arc<Gate>,
    subs: usize,
}

impl FilterEngine for GateEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::NonCanonical
    }

    fn subscribe(&mut self, _expr: &Expr) -> Result<SubscriptionId, SubscribeError> {
        self.subs += 1;
        Ok(SubscriptionId::from_index(self.subs - 1))
    }

    fn unsubscribe(&mut self, _id: SubscriptionId) -> Result<(), UnsubscribeError> {
        Ok(())
    }

    fn phase1(&self, _event: &Event, out: &mut FulfilledSet) {
        assert!(
            self.gate.enter(),
            "publishers never overlapped inside matching: publish is \
             holding an exclusive engine lock"
        );
        out.begin(0);
    }

    fn phase2(
        &self,
        _fulfilled: &FulfilledSet,
        _scratch: &mut MatchScratch,
        matched: &mut Vec<SubscriptionId>,
    ) -> MatchStats {
        matched.clear();
        MatchStats::default()
    }

    fn subscription_count(&self) -> usize {
        self.subs
    }

    fn predicate_count(&self) -> usize {
        0
    }

    fn predicate_universe(&self) -> usize {
        0
    }

    fn memory_usage(&self) -> MemoryUsage {
        MemoryUsage::default()
    }
}

/// The lock-level proof that matching is shared-read: N publishers must
/// be inside `phase1` simultaneously before any of them may leave.
/// Under the old write-lock publish path this deadlocks (and fails via
/// the gate's timeout) even on a single-core host, so it demonstrates
/// what the `concurrent_publish` bench can only show on multi-core
/// machines.
#[test]
fn publishers_match_inside_the_engine_simultaneously() {
    const PUBLISHERS: usize = 4;
    let gate = std::sync::Arc::new(Gate::new(PUBLISHERS));
    let broker = Broker::builder()
        .engine_instance(Box::new(GateEngine {
            gate: gate.clone(),
            subs: 0,
        }))
        .build();

    thread::scope(|scope| {
        for _ in 0..PUBLISHERS {
            let publisher = broker.publisher();
            scope.spawn(move || {
                publisher.publish(Event::builder().attr("n", 1_i64).build());
            });
        }
    });
    assert_eq!(broker.stats().events_published, PUBLISHERS as u64);
}

/// Publishers on different threads must see scaling-friendly behaviour
/// functionally: concurrent matching over one shared engine returns
/// the same matches a serial run would.
#[test]
fn concurrent_matching_agrees_with_serial_matching() {
    for kind in EngineKind::ALL {
        let serial = Broker::builder().engine(kind).build();
        let concurrent = Broker::builder().engine(kind).build();
        let exprs: Vec<String> = (0..64)
            .map(|i| format!("group = {} and tick >= {}", i % 8, i * 10))
            .collect();
        let serial_subs: Vec<Subscription> =
            exprs.iter().map(|e| serial.subscribe(e).unwrap()).collect();
        let concurrent_subs: Vec<Subscription> = exprs
            .iter()
            .map(|e| concurrent.subscribe(e).unwrap())
            .collect();

        let events: Vec<Event> = (0..512)
            .map(|i| {
                Event::builder()
                    .attr("group", (i % 8) as i64)
                    .attr("tick", (i * 3 % 700) as i64)
                    .build()
            })
            .collect();

        for ev in &events {
            serial.publish(ev.clone());
        }
        thread::scope(|scope| {
            for chunk in events.chunks(events.len() / 4) {
                let publisher = concurrent.publisher();
                scope.spawn(move || {
                    for ev in chunk {
                        publisher.publish(ev.clone());
                    }
                });
            }
        });

        for (i, (s, c)) in serial_subs.iter().zip(&concurrent_subs).enumerate() {
            assert_eq!(
                s.drain().len(),
                c.drain().len(),
                "subscription {i} disagrees on {kind}"
            );
        }
        assert_eq!(
            serial.stats().notifications_delivered,
            concurrent.stats().notifications_delivered,
            "{kind}"
        );
    }
}
