//! The sharded broker's concurrency claim, proven deterministically:
//! a write-locked shard (a subscription in progress) must **not**
//! block matching on other shards.
//!
//! Like the gate-engine test in `concurrent_matching.rs`, this is a
//! lock-level proof that works on a single-core host: instrumented
//! engines block inside the broker's locks at controlled points, and
//! latches observe which operations can still proceed. Under the old
//! single-engine-lock broker the publisher could not enter matching at
//! all while a subscribe held the write lock, and the observation
//! latch would time out.
//!
//! The file also replays deterministic churn streams to show a sharded
//! broker (and its `publish_batch` path) delivers exactly like an
//! unsharded one.

use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

use boolmatch::core::{
    FilterEngine, FulfilledSet, MatchScratch, MatchStats, MemoryUsage, SubscribeError,
    UnsubscribeError,
};
use boolmatch::expr::Expr;
use boolmatch::prelude::*;
use boolmatch::workload::scenarios::{ChurnOp, ChurnScenario};

/// A one-shot latch: `open` releases every current and future `wait`.
struct Latch {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Latch {
    fn new() -> Arc<Self> {
        Arc::new(Latch {
            open: Mutex::new(false),
            cv: Condvar::new(),
        })
    }

    fn open(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }

    /// Returns whether the latch opened within `timeout`.
    fn wait(&self, timeout: Duration) -> bool {
        let guard = self.open.lock().unwrap();
        let (guard, result) = self
            .cv
            .wait_timeout_while(guard, timeout, |open| !*open)
            .unwrap();
        drop(guard);
        !result.timed_out()
    }
}

/// Minimal no-op engine base: accepts subscriptions, matches nothing.
#[derive(Default)]
struct NullEngine {
    subs: usize,
}

impl NullEngine {
    fn subscribe(&mut self) -> SubscriptionId {
        self.subs += 1;
        SubscriptionId::from_index(self.subs - 1)
    }
}

/// Shard-0 engine: announces through a latch that matching entered it.
struct SignalOnMatchEngine {
    base: NullEngine,
    matching_entered: Arc<Latch>,
}

impl FilterEngine for SignalOnMatchEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::NonCanonical
    }

    fn subscribe(&mut self, _expr: &Expr) -> Result<SubscriptionId, SubscribeError> {
        Ok(self.base.subscribe())
    }

    fn unsubscribe(&mut self, _id: SubscriptionId) -> Result<(), UnsubscribeError> {
        Ok(())
    }

    fn phase1(&self, _event: &Event, out: &mut FulfilledSet) {
        self.matching_entered.open();
        out.begin(0);
    }

    fn phase2(
        &self,
        _fulfilled: &FulfilledSet,
        _scratch: &mut MatchScratch,
        matched: &mut Vec<SubscriptionId>,
    ) -> MatchStats {
        matched.clear();
        MatchStats::default()
    }

    fn subscription_count(&self) -> usize {
        self.base.subs
    }

    fn predicate_count(&self) -> usize {
        0
    }

    fn predicate_universe(&self) -> usize {
        0
    }

    fn memory_usage(&self) -> MemoryUsage {
        MemoryUsage::default()
    }
}

/// Shard-1 engine: `subscribe` parks — announcing it is inside (and
/// therefore holding that shard's write lock) — until released.
struct BlockingSubscribeEngine {
    base: NullEngine,
    in_subscribe: Arc<Latch>,
    release: Arc<Latch>,
}

impl FilterEngine for BlockingSubscribeEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::NonCanonical
    }

    fn subscribe(&mut self, _expr: &Expr) -> Result<SubscriptionId, SubscribeError> {
        self.in_subscribe.open();
        assert!(
            self.release.wait(Duration::from_secs(10)),
            "test driver never released the blocked subscribe"
        );
        Ok(self.base.subscribe())
    }

    fn unsubscribe(&mut self, _id: SubscriptionId) -> Result<(), UnsubscribeError> {
        Ok(())
    }

    fn phase1(&self, _event: &Event, out: &mut FulfilledSet) {
        out.begin(0);
    }

    fn phase2(
        &self,
        _fulfilled: &FulfilledSet,
        _scratch: &mut MatchScratch,
        matched: &mut Vec<SubscriptionId>,
    ) -> MatchStats {
        matched.clear();
        MatchStats::default()
    }

    fn subscription_count(&self) -> usize {
        self.base.subs
    }

    fn predicate_count(&self) -> usize {
        0
    }

    fn predicate_universe(&self) -> usize {
        0
    }

    fn memory_usage(&self) -> MemoryUsage {
        MemoryUsage::default()
    }
}

/// The deterministic gate: while shard 1's write lock is held by an
/// in-flight subscribe, a publisher must still enter matching on
/// shard 0. Under a single engine lock this times out.
#[test]
fn write_locked_shard_does_not_block_matching_on_other_shards() {
    let matching_entered = Latch::new();
    let in_subscribe = Latch::new();
    let release = Latch::new();

    let broker = Broker::builder()
        .engine_instances(vec![
            Box::new(SignalOnMatchEngine {
                base: NullEngine::default(),
                matching_entered: matching_entered.clone(),
            }),
            Box::new(BlockingSubscribeEngine {
                base: NullEngine::default(),
                in_subscribe: in_subscribe.clone(),
                release: release.clone(),
            }),
        ])
        // The probe event matches nothing, so content-aware pruning
        // would (correctly) skip shard 0 without entering `phase1` —
        // but this test instruments lock acquisition *inside* the
        // engine, so it needs the walk to reach it.
        .shard_pruning(false)
        .build();

    // Least-loaded placement (round-robin from empty): subscription 0
    // lands on shard 0 (returns immediately), subscription 1 lands on
    // shard 1 and parks inside `subscribe`, holding shard 1's write
    // lock.
    let _warm = broker.subscribe("warmup = 0").unwrap();

    let _blocked = thread::scope(|scope| {
        let subscriber = {
            let broker = broker.clone();
            scope.spawn(move || broker.subscribe("blocked = 1").unwrap())
        };
        assert!(
            in_subscribe.wait(Duration::from_secs(10)),
            "blocked subscribe never started"
        );

        // Shard 1 is now write-locked. A publish must still match on
        // shard 0 (it will then queue on shard 1 until the release).
        let publisher = {
            let broker = broker.clone();
            scope.spawn(move || broker.publish(Event::builder().attr("n", 1_i64).build()))
        };

        assert!(
            matching_entered.wait(Duration::from_secs(10)),
            "publisher never entered matching on shard 0 while shard 1 \
             was write-locked: shard locks are not independent"
        );

        release.open();
        let sub = subscriber.join().unwrap();
        assert_eq!(publisher.join().unwrap(), 0, "gate engines match nothing");
        assert_eq!(sub.id().index() % 2, 1, "second subscription is shard 1's");
        sub // keep the handle alive so drop doesn't unsubscribe it yet
    });

    assert_eq!(broker.subscription_count(), 2);
    assert_eq!(broker.stats().events_published, 1);
}

/// Replays one deterministic churn stream against an unsharded and a
/// sharded broker: every publish must deliver to the same number of
/// subscribers, and the final counters must agree.
#[test]
fn sharded_broker_agrees_with_unsharded_under_churn() {
    for kind in EngineKind::ALL {
        for shards in [3usize, 8] {
            let flat = Broker::builder().engine(kind).build();
            let sharded = Broker::builder().engine(kind).shards(shards).build();
            let mut flat_live: Vec<Subscription> = Vec::new();
            let mut sharded_live: Vec<Subscription> = Vec::new();

            let mut churn = ChurnScenario::new(11, 60);
            for (step, op) in churn.ops(2_000).into_iter().enumerate() {
                match op {
                    ChurnOp::Subscribe(expr) => {
                        let a = flat.subscribe_expr(&expr).unwrap();
                        let b = sharded.subscribe_expr(&expr).unwrap();
                        assert_eq!(a.id(), b.id(), "arrival-order ids diverge at {step}");
                        flat_live.push(a);
                        sharded_live.push(b);
                    }
                    ChurnOp::Unsubscribe(i) => {
                        drop(flat_live.remove(i));
                        drop(sharded_live.remove(i));
                    }
                    ChurnOp::Publish(event) => {
                        let a = flat.publish(event.clone());
                        let b = sharded.publish(event);
                        assert_eq!(a, b, "kind={kind} shards={shards} step={step}");
                    }
                }
            }

            // Per-subscriber queues agree exactly for the survivors.
            for (i, (a, b)) in flat_live.iter().zip(&sharded_live).enumerate() {
                assert_eq!(a.drain().len(), b.drain().len(), "survivor {i} on {kind}");
            }
            let fs = flat.stats();
            let ss = sharded.stats();
            assert_eq!(fs.notifications_delivered, ss.notifications_delivered);
            assert_eq!(fs.subscriptions_created, ss.subscriptions_created);
            assert_eq!(fs.subscriptions_removed, ss.subscriptions_removed);
            assert_eq!(flat.subscription_count(), sharded.subscription_count());
        }
    }
}

/// Replays churn with the publishes buffered into `publish_batch`
/// calls (flushed before every registration change, so both brokers
/// see identical subscription state per event): batch delivery must
/// equal one-by-one delivery, notification for notification.
#[test]
fn publish_batch_under_churn_equals_publish_sequence() {
    let one_by_one = Broker::builder().shards(4).build();
    let batched = Broker::builder().shards(4).build();
    let mut seq_live: Vec<Subscription> = Vec::new();
    let mut batch_live: Vec<Subscription> = Vec::new();
    let mut buffer: Vec<Arc<Event>> = Vec::new();
    let mut seq_delivered = 0usize;
    let mut batch_delivered = 0usize;

    let flush = |buffer: &mut Vec<Arc<Event>>, seq_d: &mut usize, batch_d: &mut usize| {
        if buffer.is_empty() {
            return;
        }
        *seq_d += buffer
            .iter()
            .map(|e| one_by_one.publish_arc(e.clone()))
            .sum::<usize>();
        *batch_d += batched.publish_batch(buffer);
        buffer.clear();
    };

    let mut churn = ChurnScenario::new(23, 40).with_publish_ratio(0.7);
    for op in churn.ops(3_000) {
        match op {
            ChurnOp::Subscribe(expr) => {
                flush(&mut buffer, &mut seq_delivered, &mut batch_delivered);
                seq_live.push(one_by_one.subscribe_expr(&expr).unwrap());
                batch_live.push(batched.subscribe_expr(&expr).unwrap());
            }
            ChurnOp::Unsubscribe(i) => {
                flush(&mut buffer, &mut seq_delivered, &mut batch_delivered);
                drop(seq_live.remove(i));
                drop(batch_live.remove(i));
            }
            ChurnOp::Publish(event) => buffer.push(Arc::new(event)),
        }
    }
    flush(&mut buffer, &mut seq_delivered, &mut batch_delivered);

    assert_eq!(seq_delivered, batch_delivered);
    assert_eq!(
        one_by_one.stats().events_published,
        batched.stats().events_published
    );
    assert_eq!(
        one_by_one.stats().notifications_delivered,
        batched.stats().notifications_delivered
    );
    for (i, (a, b)) in seq_live.iter().zip(&batch_live).enumerate() {
        let sn = a.drain();
        let bn = b.drain();
        assert_eq!(sn.len(), bn.len(), "survivor {i} queue depth");
        // Identical notifications in identical order.
        for (x, y) in sn.iter().zip(&bn) {
            assert_eq!(x.get("price"), y.get("price"));
            assert_eq!(x.get("symbol"), y.get("symbol"));
        }
    }
}
