//! Failure injection and boundary conditions across the stack.

use boolmatch::core::{EngineKind, FulfilledSet, PredicateId, SubscriptionId};
use boolmatch::expr::Expr;
use boolmatch::types::{Event, Schema, ValueKind};

#[test]
fn malformed_subscriptions_are_rejected_not_panicked() {
    let cases = [
        "",
        "and",
        "a >",
        "a > 10 or",
        "(a = 1",
        "a = 1)",
        "a ! 1",
        "a prefix 10",
        "a = \"unterminated",
        "not",
        "a == == 1",
    ];
    for text in cases {
        assert!(Expr::parse(text).is_err(), "`{text}` should fail to parse");
    }
}

#[test]
fn stale_subscription_ids_error_on_every_engine() {
    for kind in EngineKind::ALL {
        let mut engine = kind.build_matcher();
        let id = engine.subscribe(&Expr::parse("a = 1").unwrap()).unwrap();
        engine.unsubscribe(id).unwrap();
        assert!(engine.unsubscribe(id).is_err(), "{kind} double unsubscribe");
        assert!(
            engine
                .unsubscribe(SubscriptionId::from_index(10_000))
                .is_err(),
            "{kind} unknown id"
        );
        // The engine still works after the failed calls.
        let id2 = engine.subscribe(&Expr::parse("b = 2").unwrap()).unwrap();
        let hit = Event::builder().attr("b", 2_i64).build();
        assert_eq!(engine.match_event(&hit).matched, vec![id2]);
    }
}

#[test]
fn failed_subscribe_leaks_nothing() {
    // DNF bomb: rejected by counting engines *before* any table is
    // touched; the engine must remain byte-identical in accounting.
    for kind in [EngineKind::Counting, EngineKind::CountingVariant] {
        let mut engine = kind.build_matcher();
        engine.subscribe(&Expr::parse("keep = 1").unwrap()).unwrap();
        let before = engine.memory_usage();
        let preds_before = engine.predicate_count();

        let bomb_text: String = (0..40)
            .map(|i| format!("(x{i} = 1 or y{i} = 2)"))
            .collect::<Vec<_>>()
            .join(" and ");
        let bomb = Expr::parse(&bomb_text).unwrap();
        assert!(engine.subscribe(&bomb).is_err(), "{kind}");

        assert_eq!(engine.predicate_count(), preds_before, "{kind}");
        assert_eq!(engine.memory_usage(), before, "{kind} accounting drifted");
        assert_eq!(engine.subscription_count(), 1);
    }
}

#[test]
fn fulfilled_sets_with_out_of_universe_ids_are_safe_for_matching() {
    // phase2 with a set whose universe is larger than the engine's:
    // engines must ignore unknown ids gracefully.
    let mut engine = EngineKind::NonCanonical.build_matcher();
    let id = engine
        .subscribe(&Expr::parse("a = 1 and b = 2").unwrap())
        .unwrap();
    let set = FulfilledSet::from_ids(
        (0..100).map(PredicateId::from_index),
        1_000, // far larger than the engine's 2-predicate universe
    );
    let mut matched = Vec::new();
    engine.phase2(&set, &mut matched);
    assert_eq!(matched, vec![id]);
}

#[test]
fn empty_and_alien_events_match_nothing() {
    for kind in EngineKind::ALL {
        let mut engine = kind.build_matcher();
        engine
            .subscribe(&Expr::parse("(a = 1 or b = 2) and c = 3").unwrap())
            .unwrap();
        assert!(engine
            .match_event(&Event::builder().build())
            .matched
            .is_empty());
        let alien = Event::builder().attr("zzz", "nothing").build();
        assert!(engine.match_event(&alien).matched.is_empty(), "{kind}");
    }
}

#[test]
fn type_confusion_never_matches_and_schema_catches_it() {
    // Subscription on int price; publisher sends float price.
    let mut engine = EngineKind::NonCanonical.build_matcher();
    engine
        .subscribe(&Expr::parse("price > 10").unwrap())
        .unwrap();
    let confused = Event::builder().attr("price", 15.0).build();
    assert!(
        engine.match_event(&confused).matched.is_empty(),
        "strict typing: float 15.0 does not satisfy int > 10"
    );

    // The schema layer exists to catch exactly this at the boundary.
    let schema = Schema::builder()
        .attr("price", ValueKind::Int)
        .build()
        .unwrap();
    assert!(schema.validate_event(&confused).is_err());
    let ok = Event::builder().attr("price", 15_i64).build();
    assert!(schema.validate_event(&ok).is_ok());
    assert_eq!(engine.match_event(&ok).matched.len(), 1);
}

#[test]
fn heavy_churn_keeps_engines_consistent() {
    for kind in EngineKind::ALL {
        let mut engine = kind.build_matcher();
        let expr_a = Expr::parse("(a = 1 or b = 2) and (c = 3 or d = 4)").unwrap();
        let expr_b = Expr::parse("(a = 1 or e = 5) and f = 6").unwrap();
        let hit_a = Event::builder().attr("a", 1_i64).attr("c", 3_i64).build();

        for round in 0..50 {
            let ida = engine.subscribe(&expr_a).unwrap();
            let idb = engine.subscribe(&expr_b).unwrap();
            let matched = engine.match_event(&hit_a).matched;
            assert_eq!(matched, vec![ida], "{kind} round {round}");
            engine.unsubscribe(ida).unwrap();
            engine.unsubscribe(idb).unwrap();
            assert!(engine.match_event(&hit_a).matched.is_empty());
        }
        assert_eq!(engine.subscription_count(), 0);
        assert_eq!(engine.predicate_count(), 0, "{kind} leaked predicates");
    }
}
