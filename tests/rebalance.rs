//! Load-aware rebalancing, live migration and shard resizing — the
//! correctness claims, proven without relying on timing:
//!
//! * **Equivalence** — a sharded engine replaying churn interleaved
//!   with `rebalance()` and `resize()` must produce matched-id sets
//!   identical to a flat (unsharded) engine replaying the same stream,
//!   for every engine kind and S ∈ {1, 3, 8}; after every `rebalance()`
//!   the shard loads must satisfy the distribution invariant
//!   `max − min ≤ 1`. A broker-level replay proves the same for
//!   delivery counts with `rebalance()` racing nothing away.
//! * **Churn-skew regression** — a shard drained by unsubscribes must
//!   be refilled by new subscriptions (the old blind round-robin
//!   cursor kept striding past it). CI runs this one under `--release`
//!   too.
//! * **Migration isolation** — a migration holding one shard pair's
//!   write locks must not block matching on any other shard
//!   (latch-observed, like the gate tests in `shard_concurrency.rs`).
//! * **Race window** — publishes racing live migration deliver each
//!   event to a subscriber at most once, never to a nonexistent
//!   subscriber, and exactly once again when migration is quiescent.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

use boolmatch::core::{
    FilterEngine, FulfilledSet, MatchScratch, MatchStats, MemoryUsage, SubscribeError,
    UnsubscribeError,
};
use boolmatch::expr::Expr;
use boolmatch::prelude::*;
use boolmatch::workload::scenarios::{ChurnOp, RebalanceOp, RebalanceScenario};

/// The headline property test: interleaved
/// subscribe/unsubscribe/publish/rebalance/resize against a sharded
/// engine matches a flat engine exactly — same arrival-order global
/// ids, same matched-id sets — and every rebalance restores the
/// shard-distribution invariant.
#[test]
fn churn_with_migration_and_resize_equals_flat_engine() {
    for kind in EngineKind::ALL {
        for shards in [1usize, 3, 8] {
            let mut flat = Matcher::new(kind.build());
            let mut sharded = Matcher::new(ShardedEngine::new(kind, shards));
            let mut live: Vec<SubscriptionId> = Vec::new();
            let mut scenario = RebalanceScenario::new(17, 60, shards)
                .with_rebalance_every(41)
                .with_resize_every(83);
            let mut rebalances = 0usize;
            let mut resizes = 0usize;

            for (step, op) in scenario.ops(1_000).into_iter().enumerate() {
                match op {
                    RebalanceOp::Churn(ChurnOp::Subscribe(expr)) => {
                        let a = flat.subscribe(&expr).unwrap();
                        let b = sharded.subscribe(&expr).unwrap();
                        assert_eq!(a, b, "arrival-order ids diverge at {step} ({kind})");
                        live.push(a);
                    }
                    RebalanceOp::Churn(ChurnOp::Unsubscribe(i)) => {
                        let id = live.remove(i);
                        flat.unsubscribe(id).unwrap();
                        sharded.unsubscribe(id).unwrap();
                    }
                    RebalanceOp::Churn(ChurnOp::Publish(event)) => {
                        let mut a = flat.match_event(&event).matched;
                        let mut b = sharded.match_event(&event).matched;
                        a.sort_unstable();
                        b.sort_unstable();
                        assert_eq!(a, b, "kind={kind} shards={shards} step={step}");
                    }
                    RebalanceOp::Rebalance => {
                        rebalances += 1;
                        sharded.rebalance();
                        // The distribution invariant: after a
                        // rebalance, no shard is more than one
                        // subscription heavier than any other.
                        assert!(
                            sharded.directory().is_balanced(),
                            "imbalance {} after rebalance at {step} ({kind}, S={shards}): {:?}",
                            sharded.directory().imbalance(),
                            sharded.directory().loads(),
                        );
                        assert_eq!(
                            sharded.shard_subscription_counts(),
                            sharded.directory().loads(),
                            "engines and directory agree at {step}"
                        );
                    }
                    RebalanceOp::Resize(n) => {
                        resizes += 1;
                        sharded.resize(n);
                        assert_eq!(sharded.shard_count(), n, "step {step}");
                    }
                }
                assert_eq!(flat.subscription_count(), live.len());
                assert_eq!(sharded.subscription_count(), live.len());
            }
            // 1000 ops → 24 rebalances, 12 resizes; 12 is a multiple of
            // the ladder length, so the schedule ends at the base count.
            assert_eq!((rebalances, resizes), (24, 12));
            assert_eq!(sharded.shard_count(), shards);
        }
    }
}

/// The same replay at the broker layer: a sharded broker that
/// rebalances mid-stream delivers exactly like a flat broker — per
/// publish and per surviving subscriber.
#[test]
fn rebalancing_broker_delivers_like_flat_broker() {
    for shards in [3usize, 8] {
        let flat = Broker::builder().build();
        let sharded = Broker::builder().shards(shards).build();
        let mut flat_live: Vec<Subscription> = Vec::new();
        let mut sharded_live: Vec<Subscription> = Vec::new();
        let mut scenario = RebalanceScenario::new(29, 50, shards).with_rebalance_every(31);

        for (step, op) in scenario.ops(1_500).into_iter().enumerate() {
            match op {
                RebalanceOp::Churn(ChurnOp::Subscribe(expr)) => {
                    let a = flat.subscribe_expr(&expr).unwrap();
                    let b = sharded.subscribe_expr(&expr).unwrap();
                    assert_eq!(a.id(), b.id(), "arrival-order ids diverge at {step}");
                    flat_live.push(a);
                    sharded_live.push(b);
                }
                RebalanceOp::Churn(ChurnOp::Unsubscribe(i)) => {
                    drop(flat_live.remove(i));
                    drop(sharded_live.remove(i));
                }
                RebalanceOp::Churn(ChurnOp::Publish(event)) => {
                    let a = flat.publish(event.clone());
                    let b = sharded.publish(event);
                    assert_eq!(a, b, "shards={shards} step={step}");
                }
                RebalanceOp::Rebalance => {
                    sharded.rebalance();
                    let loads = sharded.shard_loads();
                    let spread = loads.iter().max().unwrap() - loads.iter().min().unwrap();
                    assert!(
                        spread <= 1,
                        "unbalanced after rebalance at {step}: {loads:?}"
                    );
                }
                // Since PR 5 the broker resizes live too: the shard
                // set (locks included) is swapped behind an epoch.
                RebalanceOp::Resize(n) => {
                    sharded.resize(n);
                    assert_eq!(sharded.shard_count(), n, "step {step}");
                }
            }
        }

        for (i, (a, b)) in flat_live.iter().zip(&sharded_live).enumerate() {
            assert_eq!(
                a.drain().len(),
                b.drain().len(),
                "survivor {i}, shards={shards}"
            );
        }
        let fs = flat.stats();
        let ss = sharded.stats();
        assert_eq!(fs.notifications_delivered, ss.notifications_delivered);
        assert_eq!(fs.subscriptions_created, ss.subscriptions_created);
        assert_eq!(fs.subscriptions_removed, ss.subscriptions_removed);
        assert_eq!(fs.subscriptions_migrated, 0, "flat brokers never migrate");
        assert!(ss.subscriptions_migrated > 0, "the sharded broker did");
    }
}

/// The churn-skew regression (run under `--release` in CI too): drain
/// one shard via unsubscribes, then assert new subscriptions refill it
/// instead of striding past it — at the engine and the broker layer.
#[test]
fn churn_skew_drained_shard_is_refilled() {
    // Engine layer.
    let mut engine = ShardedEngine::new(EngineKind::NonCanonical, 4);
    let exprs: Vec<Expr> = (0..16)
        .map(|i| Expr::parse(&format!("a = {i}")).unwrap())
        .collect();
    let ids: Vec<_> = exprs[..12]
        .iter()
        .map(|e| engine.subscribe(e).unwrap())
        .collect();
    for &i in &[2usize, 6, 10] {
        engine.unsubscribe(ids[i]).unwrap(); // shard 2's residents
    }
    assert_eq!(engine.directory().loads(), &[3, 3, 0, 3]);
    for e in &exprs[12..15] {
        let id = engine.subscribe(e).unwrap();
        assert_eq!(
            engine.directory().placement_of(id).unwrap().0,
            2,
            "new subscriptions must refill the drained shard"
        );
    }
    assert_eq!(engine.directory().loads(), &[3, 3, 3, 3]);

    // Broker layer, including delivery through the refilled shard.
    let broker = Broker::builder().shards(4).build();
    let mut subs: Vec<_> = (0..12)
        .map(|i| broker.subscribe(&format!("a = {i}")).unwrap())
        .collect();
    for &i in &[10usize, 6, 2] {
        drop(subs.remove(i));
    }
    assert_eq!(broker.shard_loads(), vec![3, 3, 0, 3]);
    let refill: Vec<_> = (12..15)
        .map(|i| broker.subscribe(&format!("a = {i}")).unwrap())
        .collect();
    assert_eq!(broker.shard_loads(), vec![3, 3, 3, 3]);
    assert_eq!(
        broker.publish(Event::builder().attr("a", 14_i64).build()),
        1
    );
    assert_eq!(refill[2].drain().len(), 1);
}

/// Publishes racing live migration: a subscriber must never receive
/// one event twice (the publish could otherwise see a migrating
/// subscription on both its source and target shard), every delivered
/// notification must belong to a real subscriber, and once migration
/// is quiescent delivery is exact again. This is the concurrent
/// execution of the at-most-once window documented on
/// `Broker::migrate`; the single-threaded replays above cannot reach
/// these interleavings.
#[test]
fn publish_racing_migration_delivers_at_most_once() {
    let broker = Broker::builder().shards(4).build();
    // 80 subscriptions that all match every event; dropping the ones
    // on shards 1 and 2 (arrivals ≡ 1, 2 mod 4) skews the survivors
    // onto shards 0 and 3, giving the migrator real work.
    let mut subs: Vec<Subscription> = (0..80)
        .map(|_| broker.subscribe("tick = 1").unwrap())
        .collect();
    for i in (0..subs.len()).rev() {
        if i % 4 == 1 || i % 4 == 2 {
            drop(subs.remove(i));
        }
    }
    assert_eq!(broker.shard_loads(), vec![20, 0, 0, 20]);

    let publishes = 400usize;
    thread::scope(|scope| {
        let migrator = {
            let broker = broker.clone();
            scope.spawn(move || {
                let mut moved = 0usize;
                loop {
                    let step = broker.migrate(1);
                    if step == 0 {
                        break;
                    }
                    moved += step;
                    thread::yield_now();
                }
                moved
            })
        };
        let publisher = {
            let broker = broker.clone();
            scope.spawn(move || {
                for _ in 0..publishes {
                    broker.publish(Event::builder().attr("tick", 1_i64).build());
                    thread::yield_now();
                }
            })
        };
        publisher.join().unwrap();
        assert!(migrator.join().unwrap() >= 1, "migration actually ran");
    });
    let loads = broker.shard_loads();
    assert!(
        loads.iter().max().unwrap() - loads.iter().min().unwrap() <= 1,
        "balanced: {loads:?}"
    );

    // At-most-once per event per subscriber, and no phantom deliveries:
    // the drained queues reconcile exactly with the broker's counter.
    let mut total_drained = 0u64;
    for (i, sub) in subs.iter().enumerate() {
        let got = sub.drain().len();
        assert!(got <= publishes, "subscriber {i} got {got} > {publishes}");
        total_drained += got as u64;
    }
    assert_eq!(total_drained, broker.stats().notifications_delivered);

    // Quiescent again: delivery is exact.
    assert_eq!(
        broker.publish(Event::builder().attr("tick", 1_i64).build()),
        subs.len()
    );
    for sub in &subs {
        assert_eq!(sub.drain().len(), 1);
    }
}

// ---------------------------------------------------------------------------
// Migration isolation gate test

/// A one-shot latch: `open` releases every current and future `wait`.
struct Latch {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Latch {
    fn new() -> Arc<Self> {
        Arc::new(Latch {
            open: Mutex::new(false),
            cv: Condvar::new(),
        })
    }

    fn open(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }

    /// Returns whether the latch opened within `timeout`.
    fn wait(&self, timeout: Duration) -> bool {
        let guard = self.open.lock().unwrap();
        let (guard, result) = self
            .cv
            .wait_timeout_while(guard, timeout, |open| !*open)
            .unwrap();
        drop(guard);
        !result.timed_out()
    }
}

/// Minimal engine: accepts subscriptions, matches nothing, and can be
/// instrumented to (a) announce when matching enters it and (b) park
/// inside `subscribe` — but only once armed, so setup subscriptions
/// pass through freely and only the migration's target-side
/// re-subscribe blocks.
struct GateEngine {
    subs: usize,
    matching_entered: Option<Arc<Latch>>,
    armed: Option<Arc<AtomicBool>>,
    in_subscribe: Option<Arc<Latch>>,
    release: Option<Arc<Latch>>,
}

impl GateEngine {
    fn plain() -> Box<Self> {
        Box::new(GateEngine {
            subs: 0,
            matching_entered: None,
            armed: None,
            in_subscribe: None,
            release: None,
        })
    }
}

impl FilterEngine for GateEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::NonCanonical
    }

    fn subscribe(&mut self, _expr: &Expr) -> Result<SubscriptionId, SubscribeError> {
        if self
            .armed
            .as_ref()
            .is_some_and(|a| a.load(Ordering::Acquire))
        {
            if let (Some(entered), Some(release)) = (&self.in_subscribe, &self.release) {
                entered.open();
                assert!(
                    release.wait(Duration::from_secs(10)),
                    "test driver never released the blocked migration"
                );
            }
        }
        self.subs += 1;
        Ok(SubscriptionId::from_index(self.subs - 1))
    }

    fn unsubscribe(&mut self, _id: SubscriptionId) -> Result<(), UnsubscribeError> {
        Ok(())
    }

    fn phase1(&self, _event: &Event, out: &mut FulfilledSet) {
        if let Some(latch) = &self.matching_entered {
            latch.open();
        }
        out.begin(0);
    }

    fn phase2(
        &self,
        _fulfilled: &FulfilledSet,
        _scratch: &mut MatchScratch,
        matched: &mut Vec<SubscriptionId>,
    ) -> MatchStats {
        matched.clear();
        MatchStats::default()
    }

    fn subscription_count(&self) -> usize {
        self.subs
    }

    fn predicate_count(&self) -> usize {
        0
    }

    fn predicate_universe(&self) -> usize {
        0
    }

    fn memory_usage(&self) -> MemoryUsage {
        MemoryUsage::default()
    }
}

/// The deterministic gate: while a migration holds the write locks of
/// its shard pair (parked inside the target engine's re-subscribe), a
/// publisher must still enter matching on a shard outside the pair.
/// Under a single engine lock — or a stop-the-world rebuild — this
/// times out.
#[test]
fn migration_does_not_block_matching_on_other_shards() {
    let matching_entered = Latch::new();
    let in_migration = Latch::new();
    let release = Latch::new();
    let armed = Arc::new(AtomicBool::new(false));

    let broker = Broker::builder()
        .engine_instances(vec![
            // Shard 0: outside the migrating pair; announces matching.
            Box::new(GateEngine {
                subs: 0,
                matching_entered: Some(matching_entered.clone()),
                armed: None,
                in_subscribe: None,
                release: None,
            }),
            // Shard 1: the migration target; parks inside `subscribe`
            // once armed.
            Box::new(GateEngine {
                subs: 0,
                matching_entered: None,
                armed: Some(armed.clone()),
                in_subscribe: Some(in_migration.clone()),
                release: Some(release.clone()),
            }),
            // Shard 2: the migration source.
            GateEngine::plain(),
        ])
        // The probe event matches nothing, so content-aware pruning
        // would (correctly) skip shard 0 without entering `phase1` —
        // but this test instruments lock acquisition *inside* the
        // engine, so it needs the walk to reach it.
        .shard_pruning(false)
        .build();

    // Least-loaded placement: arrivals 0..6 land on shards 0,1,2,0,1,2.
    let subs: Vec<Subscription> = (0..6)
        .map(|i| broker.subscribe(&format!("s = {i}")).unwrap())
        .collect();
    assert_eq!(broker.shard_loads(), vec![2, 2, 2]);
    // Skew to loads [1, 0, 2]: the skew pair is (from=2, to=1).
    broker.unsubscribe(subs[1].id());
    broker.unsubscribe(subs[4].id());
    broker.unsubscribe(subs[0].id());
    assert_eq!(broker.shard_loads(), vec![1, 0, 2]);

    armed.store(true, Ordering::Release);
    thread::scope(|scope| {
        let migrator = {
            let broker = broker.clone();
            scope.spawn(move || broker.rebalance())
        };
        assert!(
            in_migration.wait(Duration::from_secs(10)),
            "migration never reached the target-side subscribe"
        );

        // Shards 1 and 2 are now write-locked by the migration. A
        // publish must still enter matching on shard 0 (it will then
        // queue on the locked pair until the release).
        let publisher = {
            let broker = broker.clone();
            scope.spawn(move || broker.publish(Event::builder().attr("n", 1_i64).build()))
        };
        assert!(
            matching_entered.wait(Duration::from_secs(10)),
            "publisher never entered matching on shard 0 while the \
             migration held shards 1 and 2: migration is not lock-scoped"
        );

        armed.store(false, Ordering::Release); // only the first move parks
        release.open();
        let moved = migrator.join().unwrap();
        assert!(moved >= 1, "the migration completed");
        assert_eq!(publisher.join().unwrap(), 0, "gate engines match nothing");
    });

    let loads = broker.shard_loads();
    let spread = loads.iter().max().unwrap() - loads.iter().min().unwrap();
    assert!(spread <= 1, "balanced after the gated migration: {loads:?}");
    assert_eq!(broker.stats().subscriptions_migrated, 1);
    assert_eq!(broker.subscription_count(), 3);
}
