//! The asynchronous delivery tier, end to end: overflow policies,
//! stalled consumers, quarantine, panic isolation, disconnect
//! accounting, and flat ≡ sharded delivery equivalence — plus the
//! scripted fault-injection harness from `boolmatch-workload`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use boolmatch::prelude::*;
use boolmatch::workload::scenarios::{
    ConsumerDirective, FaultAction, FaultDriver, FaultEvent, FaultPlan, SlowConsumerScenario,
    StockScenario,
};

fn seq_event(seq: i64) -> Event {
    Event::builder()
        .attr("feed", 1_i64)
        .attr("seq", seq)
        .build()
}

fn seq_of(event: &Event) -> i64 {
    event.get("seq").and_then(Value::as_int).unwrap()
}

/// A one-shot gate consumer callbacks can park on.
struct Latch {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Latch {
    fn new() -> Arc<Self> {
        Arc::new(Latch {
            open: Mutex::new(false),
            cv: Condvar::new(),
        })
    }

    fn wait(&self) {
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.cv.wait(open).unwrap();
        }
    }

    fn release(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }
}

fn spin_until(deadline: Duration, mut done: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if done() {
            return true;
        }
        thread::sleep(Duration::from_millis(2));
    }
    done()
}

// ---------------------------------------------------------------------
// Overflow policies at the broker level
// ---------------------------------------------------------------------

#[test]
fn drop_newest_keeps_the_oldest_and_bounds_memory() {
    let broker = Broker::builder().build();
    let sub = broker
        .subscribe_with_policy("feed >= 0", DeliveryPolicy::DropNewest { capacity: 3 })
        .unwrap();
    for seq in 0..10 {
        broker.publish(seq_event(seq));
    }
    let lag = sub.lag();
    assert_eq!((lag.queued, lag.enqueued, lag.dropped), (3, 3, 7));
    let seqs: Vec<i64> = sub.drain().iter().map(|e| seq_of(e)).collect();
    assert_eq!(seqs, vec![0, 1, 2]);
    assert_eq!(broker.stats().notifications_dropped, 7);
}

#[test]
fn drop_oldest_keeps_the_freshest() {
    let broker = Broker::builder().build();
    let sub = broker
        .subscribe_with_policy("feed >= 0", DeliveryPolicy::DropOldest { capacity: 3 })
        .unwrap();
    for seq in 0..10 {
        broker.publish(seq_event(seq));
    }
    let seqs: Vec<i64> = sub.drain().iter().map(|e| seq_of(e)).collect();
    assert_eq!(seqs, vec![7, 8, 9]);
    // Evictions are visible per subscriber, not as broker-level drops
    // (the notification *was* accepted at enqueue time).
    assert_eq!(sub.lag().dropped, 7);
    assert_eq!(broker.stats().notifications_dropped, 0);
}

#[test]
fn disconnect_policy_severs_the_subscriber_on_overflow() {
    let broker = Broker::builder().build();
    let sub = broker
        .subscribe_with_policy("feed >= 0", DeliveryPolicy::Disconnect { capacity: 2 })
        .unwrap();
    assert_eq!(broker.publish(seq_event(0)), 1);
    assert_eq!(broker.publish(seq_event(1)), 1);
    // The overflowing publish disconnects and unsubscribes — publisher
    // side, synchronously, without blocking.
    assert_eq!(broker.publish(seq_event(2)), 0);
    let stats = broker.stats();
    assert_eq!(stats.notifications_disconnected, 1);
    assert_eq!(stats.subscriptions_removed, 1);
    assert_eq!(broker.publish(seq_event(3)), 0, "subscription pruned");
    drop(sub);
}

#[test]
fn block_policy_applies_backpressure_then_times_out() {
    let broker = Broker::builder().build();
    let sub = broker
        .subscribe_with_policy(
            "feed >= 0",
            DeliveryPolicy::Block {
                capacity: 2,
                timeout: Duration::from_millis(150),
            },
        )
        .unwrap();
    broker.publish(seq_event(0));
    broker.publish(seq_event(1));

    // A concurrent drain lets the blocked publish through well before
    // the timeout.
    let publisher = {
        let broker = broker.clone();
        thread::spawn(move || {
            let start = Instant::now();
            let delivered = broker.publish(seq_event(2));
            (delivered, start.elapsed())
        })
    };
    thread::sleep(Duration::from_millis(30));
    assert_eq!(seq_of(&sub.recv().unwrap()), 0);
    let (delivered, waited) = publisher.join().unwrap();
    assert_eq!(delivered, 1);
    assert!(waited < Duration::from_millis(150), "drain unblocked it");

    // With nobody draining, the publish sheds at the deadline instead
    // of wedging the publisher.
    let start = Instant::now();
    assert_eq!(broker.publish(seq_event(3)), 0);
    assert!(start.elapsed() >= Duration::from_millis(150));
    assert_eq!(broker.stats().notifications_dropped, 1);
    assert_eq!(sub.queued(), 2);
}

// ---------------------------------------------------------------------
// Satellite 1 regression: disconnected-sender accounting
// ---------------------------------------------------------------------

#[test]
fn dropped_receiver_counts_disconnected_notifications() {
    let broker = Broker::builder().build();
    let sub = broker.subscribe("feed >= 0").unwrap();
    assert_eq!(broker.publish(seq_event(0)), 1);

    // Hand the delivery stream to a receiver, then drop it: the queue
    // closes but the subscription is still registered until the next
    // publish observes the closed queue.
    let receiver = sub.detach();
    drop(receiver);

    assert_eq!(broker.publish(seq_event(1)), 0);
    let stats = broker.stats();
    assert_eq!(
        stats.notifications_disconnected, 1,
        "the undeliverable notification is counted, not silently lost"
    );
    assert_eq!(stats.subscriptions_removed, 1);
    assert_eq!(broker.publish(seq_event(2)), 0);
    assert_eq!(broker.stats().notifications_disconnected, 1, "pruned once");
}

// ---------------------------------------------------------------------
// Satellite 3a: a fully stalled consumer blocks no publish path
// ---------------------------------------------------------------------

#[test]
fn stalled_consumer_blocks_no_publish_path() {
    // (label, broker) for every publish flavor: sequential single
    // shard, the parallel fan-out pipeline, and batch publishing.
    let brokers = [
        ("sequential", Broker::builder().shards(1).build()),
        (
            "parallel",
            Broker::builder().shards(2).parallel_threshold(0).build(),
        ),
        ("batch", Broker::builder().shards(1).build()),
    ];
    for (label, broker) in brokers {
        let latch = Latch::new();
        let stalled_cap = 4;
        let stalled = {
            let latch = Arc::clone(&latch);
            broker
                .subscribe_consumer(
                    "feed >= 0",
                    DeliveryPolicy::DropNewest {
                        capacity: stalled_cap,
                    },
                    move |_| latch.wait(),
                )
                .unwrap()
        };
        let healthy_seen = Arc::new(AtomicU64::new(0));
        let healthy = {
            let seen = Arc::clone(&healthy_seen);
            broker
                .subscribe_consumer("feed >= 0", DeliveryPolicy::Unbounded, move |_| {
                    seen.fetch_add(1, Ordering::SeqCst);
                })
                .unwrap()
        };

        let total = 64_u64;
        let start = Instant::now();
        if label == "batch" {
            let events: Vec<Arc<Event>> =
                (0..total as i64).map(|s| Arc::new(seq_event(s))).collect();
            broker.publish_batch(&events);
        } else {
            for seq in 0..total as i64 {
                broker.publish(seq_event(seq));
            }
        }
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "{label}: publishes must never wait on the stalled consumer"
        );
        // Memory damage is bounded by the stalled queue's capacity...
        assert!(
            stalled.lag().queued <= stalled_cap,
            "{label}: stalled backlog exceeded its cap"
        );
        // ...and the healthy consumer is not starved by its neighbour
        // wedging one delivery worker.
        assert!(
            spin_until(Duration::from_secs(5), || healthy_seen
                .load(Ordering::SeqCst)
                == total),
            "{label}: healthy consumer saw {} of {total}",
            healthy_seen.load(Ordering::SeqCst)
        );

        // Releasing the latch lets the stalled consumer finish what
        // its queue kept; the broker then shuts down cleanly.
        latch.release();
        assert!(
            spin_until(Duration::from_secs(5), || stalled.lag().queued == 0),
            "{label}: stalled consumer never drained after release"
        );
        drop((stalled, healthy));
    }
}

// ---------------------------------------------------------------------
// Satellite 3b: flat ≡ sharded delivery under the async tier
// ---------------------------------------------------------------------

#[test]
fn flat_and_sharded_brokers_deliver_identically() {
    for kind in EngineKind::ALL {
        for shards in [1_usize, 3, 8] {
            let mut scenario = StockScenario::new(11);
            let subs = scenario.subscriptions(60);
            let events: Vec<Arc<Event>> = (0..40).map(|_| Arc::new(scenario.tick())).collect();

            let flat = Broker::builder().engine(kind).shards(1).build();
            let sharded = Broker::builder()
                .engine(kind)
                .shards(shards)
                .parallel_threshold(0)
                .build();

            let flat_subs: Vec<Subscription> = subs
                .iter()
                .map(|e| flat.subscribe_expr(e).unwrap())
                .collect();
            let sharded_subs: Vec<Subscription> = subs
                .iter()
                .map(|e| sharded.subscribe_expr(e).unwrap())
                .collect();

            let flat_count = flat.publish_batch(&events);
            let sharded_count = sharded.publish_batch(&events);
            assert_eq!(flat_count, sharded_count, "{kind} S={shards}");

            for (i, (f, s)) in flat_subs.iter().zip(&sharded_subs).enumerate() {
                let fv: Vec<Arc<Event>> = f.drain();
                let sv: Vec<Arc<Event>> = s.drain();
                assert_eq!(
                    fv, sv,
                    "{kind} S={shards}: subscriber {i} diverged in \
                     content or per-subscriber order"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Consumer callbacks: FIFO order and panic isolation
// ---------------------------------------------------------------------

#[test]
fn consumer_callbacks_preserve_per_subscriber_fifo() {
    let broker = Broker::builder().delivery_workers(4).build();
    let seen = Arc::new(Mutex::new(Vec::new()));
    let sub = {
        let seen = Arc::clone(&seen);
        broker
            .subscribe_consumer("feed >= 0", DeliveryPolicy::Unbounded, move |event| {
                seen.lock().unwrap().push(seq_of(&event));
            })
            .unwrap()
    };
    let total = 200_i64;
    for seq in 0..total {
        broker.publish(seq_event(seq));
    }
    assert!(
        spin_until(Duration::from_secs(10), || seen.lock().unwrap().len()
            == total as usize),
        "only {} of {total} delivered",
        seen.lock().unwrap().len()
    );
    let seqs = seen.lock().unwrap().clone();
    assert_eq!(seqs, (0..total).collect::<Vec<_>>(), "order must hold");
    drop(sub);
}

#[test]
fn panicking_consumer_is_isolated_and_torn_down() {
    let broker = Broker::builder().build();
    let survivor_seen = Arc::new(AtomicU64::new(0));
    let survivor = {
        let seen = Arc::clone(&survivor_seen);
        broker
            .subscribe_consumer("feed >= 0", DeliveryPolicy::Unbounded, move |_| {
                seen.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap()
    };
    let doomed = broker
        .subscribe_consumer("feed >= 0", DeliveryPolicy::Unbounded, |event| {
            if seq_of(&event) == 2 {
                panic!("consumer bug");
            }
        })
        .unwrap();

    for seq in 0..6 {
        broker.publish(seq_event(seq));
    }
    assert!(
        spin_until(Duration::from_secs(5), || broker.stats().consumer_panics
            == 1),
        "the panic must be caught and counted"
    );
    // The panicking subscription is auto-unsubscribed; its neighbour
    // keeps receiving.
    assert!(spin_until(Duration::from_secs(5), || {
        broker.publish(seq_event(99)) == 1
    }));
    assert!(spin_until(Duration::from_secs(5), || survivor_seen
        .load(Ordering::SeqCst)
        >= 7));
    assert_eq!(broker.stats().consumer_panics, 1);
    drop((survivor, doomed));
}

// ---------------------------------------------------------------------
// Quarantine: demotion, recovery, auto-disconnect
// ---------------------------------------------------------------------

#[test]
fn quarantine_demotes_then_releases_a_recovering_consumer() {
    let config = QuarantineConfig {
        lag_watermark: 8,
        strikes: 2,
        quarantine_capacity: 4,
        auto_disconnect: false,
    };
    let broker = Broker::builder().quarantine(config).build();
    let laggard = broker.subscribe("feed >= 0").unwrap();
    for seq in 0..20 {
        broker.publish(seq_event(seq));
    }

    // Two consecutive over-watermark ticks demote; the backlog is
    // shed down to the quarantine cap, oldest first.
    assert_eq!(broker.delivery_maintenance_tick().demoted, 0);
    let report = broker.delivery_maintenance_tick();
    assert_eq!((report.demoted, report.recovered), (1, 0));
    let lag = laggard.lag();
    assert!(lag.quarantined);
    assert_eq!(lag.queued, 4);
    assert_eq!(broker.quarantined_count(), 1);
    assert_eq!(broker.stats().subscribers_quarantined, 1);
    let seqs: Vec<i64> = laggard.drain().iter().map(|e| seq_of(e)).collect();
    assert_eq!(seqs, vec![16, 17, 18, 19], "freshest events survive");

    // While quarantined the queue degrades to drop-newest at the cap.
    for seq in 100..110 {
        broker.publish(seq_event(seq));
    }
    assert_eq!(laggard.queued(), 4);

    // Draining below watermark/2 for two consecutive ticks recovers.
    laggard.drain();
    assert_eq!(broker.delivery_maintenance_tick().recovered, 0);
    assert_eq!(broker.delivery_maintenance_tick().recovered, 1);
    assert!(!laggard.lag().quarantined);
    assert_eq!(broker.quarantined_count(), 0);
    assert_eq!(broker.stats().quarantine_recoveries, 1);
}

#[test]
fn quarantine_auto_disconnect_severs_instead_of_capping() {
    let config = QuarantineConfig {
        lag_watermark: 4,
        strikes: 1,
        quarantine_capacity: 2,
        auto_disconnect: true,
    };
    let broker = Broker::builder().quarantine(config).build();
    let laggard = broker.subscribe("feed >= 0").unwrap();
    for seq in 0..10 {
        broker.publish(seq_event(seq));
    }
    let report = broker.delivery_maintenance_tick();
    assert_eq!(report.disconnected, 1);
    let stats = broker.stats();
    assert_eq!(stats.subscribers_quarantined, 1);
    assert_eq!(stats.subscriptions_removed, 1);
    assert_eq!(broker.publish(seq_event(99)), 0, "subscriber is gone");
    drop(laggard);
}

// ---------------------------------------------------------------------
// Shutdown: a blocked receiver is woken, not leaked
// ---------------------------------------------------------------------

#[test]
fn broker_drop_wakes_a_blocked_receiver() {
    let broker = Broker::builder().build();
    let sub = broker.subscribe("feed >= 0").unwrap();
    let waiter = thread::spawn(move || sub.recv());
    thread::sleep(Duration::from_millis(50));
    drop(broker);
    assert_eq!(waiter.join().unwrap(), None, "recv returns on shutdown");
}

// ---------------------------------------------------------------------
// The scripted fault-injection harness, replayed deterministically
// ---------------------------------------------------------------------

/// Per-subscriber (enqueued, dropped, drained) outcomes plus the
/// broker's (delivered, dropped, disconnected) counters.
type SessionOutcome = (Vec<(u64, u64, u64)>, (u64, u64, u64));

/// Runs one scripted slow-consumer session and returns its observable
/// outcome.
fn run_fault_session(seed: u64) -> SessionOutcome {
    const SUBSCRIBERS: usize = 8;
    const TICKS: u64 = 20;
    const EVENTS_PER_TICK: usize = 8;
    const CAP: usize = 32;

    let mut scenario = SlowConsumerScenario::new(seed);
    let broker = Broker::builder().shards(3).build();
    let mut subs: Vec<Option<Subscription>> = scenario
        .subscriptions(SUBSCRIBERS)
        .iter()
        .map(|e| {
            Some(
                broker
                    .subscribe_expr_with_policy(e, DeliveryPolicy::DropOldest { capacity: CAP })
                    .unwrap(),
            )
        })
        .collect();
    let mut drained = [0_u64; SUBSCRIBERS];

    let plan = FaultPlan::random(seed, SUBSCRIBERS, TICKS);
    let mut driver = FaultDriver::new(plan, SUBSCRIBERS, 4);
    let mut outcomes = vec![(0_u64, 0_u64, 0_u64); SUBSCRIBERS];

    for _ in 0..TICKS {
        let events: Vec<Arc<Event>> = scenario
            .events(EVENTS_PER_TICK)
            .into_iter()
            .map(Arc::new)
            .collect();
        broker.publish_batch(&events);
        for (i, directive) in driver.tick().into_iter().enumerate() {
            let Some(sub) = subs[i].as_ref() else {
                continue;
            };
            // Live queues can never exceed their policy cap, faults or
            // not.
            assert!(sub.lag().queued <= CAP, "subscriber {i} over cap");
            match directive {
                ConsumerDirective::Drain(n) => {
                    for _ in 0..n {
                        if sub.try_recv().is_none() {
                            break;
                        }
                        drained[i] += 1;
                    }
                }
                // A pull-side consumer "panicking" or disconnecting
                // both end in the handle going away; Disconnect drops
                // the receiver first so the publisher observes a
                // closed queue rather than a clean unsubscribe.
                ConsumerDirective::Disconnect => {
                    let sub = subs[i].take().unwrap();
                    outcomes[i] = (sub.lag().enqueued, sub.lag().dropped, drained[i]);
                    drop(sub.detach());
                }
                ConsumerDirective::Panic => {
                    let sub = subs[i].take().unwrap();
                    outcomes[i] = (sub.lag().enqueued, sub.lag().dropped, drained[i]);
                    drop(sub);
                }
            }
        }
    }
    for (i, sub) in subs.iter().enumerate() {
        if let Some(sub) = sub {
            let lag = sub.lag();
            outcomes[i] = (lag.enqueued, lag.dropped, drained[i]);
        }
    }
    let stats = broker.stats();
    (
        outcomes,
        (
            stats.notifications_delivered,
            stats.notifications_dropped,
            stats.notifications_disconnected,
        ),
    )
}

#[test]
fn fault_injection_sessions_replay_bit_identically() {
    let first = run_fault_session(1729);
    let second = run_fault_session(1729);
    assert_eq!(first, second, "same seed, same observable outcome");

    let (ref outcomes, (delivered, _dropped, _disconnected)) = first;
    assert!(delivered > 0, "healthy windows deliver");
    // Every subscriber was under full fan-out pressure the whole run.
    assert!(outcomes.iter().all(|(enqueued, _, _)| *enqueued > 0));

    let other = run_fault_session(42);
    assert_ne!(first.0, other.0, "different seed, different faults");
}

#[test]
fn scripted_stall_produces_bounded_lag_then_burst_recovers() {
    let broker = Broker::builder().build();
    let mut scenario = SlowConsumerScenario::new(5);
    let sub = broker
        .subscribe_expr_with_policy(
            &scenario.subscription(),
            DeliveryPolicy::DropOldest { capacity: 16 },
        )
        .unwrap();

    let plan = FaultPlan::scripted(vec![
        FaultEvent {
            tick: 2,
            subscriber: 0,
            action: FaultAction::Stall,
        },
        FaultEvent {
            tick: 6,
            subscriber: 0,
            action: FaultAction::Resume,
        },
        FaultEvent {
            tick: 6,
            subscriber: 0,
            action: FaultAction::Burst { drain: 64 },
        },
    ]);
    let mut driver = FaultDriver::new(plan, 1, 4);
    for _ in 0..8 {
        for event in scenario.events(4) {
            broker.publish(event);
        }
        let [directive] = driver.tick()[..] else {
            unreachable!()
        };
        if let ConsumerDirective::Drain(n) = directive {
            for _ in 0..n {
                if sub.try_recv().is_none() {
                    break;
                }
            }
        }
    }
    // Stall ticks 2..6 piled 4 events per tick against a cap of 16;
    // the resume burst cleared the backlog.
    assert_eq!(sub.queued(), 0, "burst drained the stall backlog");
    assert!(sub.lag().enqueued >= 32);
}
