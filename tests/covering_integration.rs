//! Covering analysis against live engines: whenever `covering::covers`
//! claims subscription A covers subscription B, every event matched to
//! B by an engine must also be matched to A.

use boolmatch::core::{EngineKind, SubscriptionId};
use boolmatch::expr::{covering, Expr};
use boolmatch::types::Event;
use boolmatch::workload::scenarios::StockScenario;

#[test]
fn claimed_covers_hold_through_the_engines() {
    // Hand-picked pairs with known covering structure.
    let pairs = [
        ("price > 10.0", "price > 20.0 and volume > 100"),
        (
            "symbol = \"IBM\" and price > 50.0",
            "symbol = \"IBM\" and price > 80.0 and volume >= 10",
        ),
        ("price > 10.0 or volume > 5", "volume > 50"),
    ];
    for (g_text, s_text) in pairs {
        let g = Expr::parse(g_text).unwrap();
        let s = Expr::parse(s_text).unwrap();
        assert_eq!(
            covering::covers(&g, &s, 1024),
            Ok(true),
            "expected `{g_text}` to cover `{s_text}`"
        );
        for kind in EngineKind::ALL {
            let mut engine = kind.build_matcher();
            let gid = engine.subscribe(&g).unwrap();
            let sid = engine.subscribe(&s).unwrap();
            let mut feed = StockScenario::new(17);
            for _ in 0..500 {
                let tick = feed.tick();
                let matched = engine.match_event(&tick).matched;
                if matched.contains(&sid) {
                    assert!(
                        matched.contains(&gid),
                        "{kind}: `{s_text}` matched {tick} but cover `{g_text}` did not"
                    );
                }
            }
        }
    }
}

#[test]
fn covering_driven_deduplication_preserves_matches() {
    // A router can skip registering covered subscriptions and forward
    // the cover's notifications instead: the cover must match a
    // superset of events.
    let mut scenario = StockScenario::new(23);
    let subs = scenario.subscriptions(60);

    // Find covered pairs in the generated corpus.
    let mut covered_by: Vec<(usize, usize)> = Vec::new();
    for (i, a) in subs.iter().enumerate() {
        for (j, b) in subs.iter().enumerate() {
            if i != j && covering::covers(a, b, 1024) == Ok(true) {
                covered_by.push((i, j)); // a covers b
            }
        }
    }

    let mut engine = EngineKind::NonCanonical.build_matcher();
    let ids: Vec<SubscriptionId> = subs.iter().map(|s| engine.subscribe(s).unwrap()).collect();
    let events: Vec<Event> = (0..400).map(|_| scenario.tick()).collect();
    for event in &events {
        let matched = engine.match_event(event).matched;
        for &(general, specific) in &covered_by {
            if matched.contains(&ids[specific]) {
                assert!(
                    matched.contains(&ids[general]),
                    "subscription {general} covers {specific} but missed {event}"
                );
            }
        }
    }
    // Self-covering means the corpus always "covers itself": sanity
    // that the relation found at least the reflexive-free pairs when
    // the generator produced any overlapping interests. (May be zero
    // for some seeds; the assertion above is the real content.)
    let _ = covered_by.len();
}
