//! Small-scale integration check of the paper's §4 claims, asserted on
//! *work counters and memory* (time is asserted only where the gap is
//! orders of magnitude, to stay robust on shared CI hosts).

use boolmatch::core::EngineKind;
use boolmatch::workload::sweep::{run, SweepConfig};
use boolmatch::workload::{MemoryModel, Table1Config};

fn config(predicates: usize, fulfilled: usize) -> SweepConfig {
    SweepConfig {
        label: format!("claims-{predicates}-{fulfilled}"),
        engines: EngineKind::ALL.to_vec(),
        subscription_counts: vec![1_000, 4_000, 16_000],
        predicates_per_sub: predicates,
        fulfilled_per_event: fulfilled,
        events_per_point: 3,
        seed: 7,
        memory_model: MemoryModel::paper(),
    }
}

#[test]
fn claim_transformation_multiplies_problem_size() {
    let table1 = Table1Config::paper();
    for predicates in [6usize, 8, 10] {
        let rows = run(&SweepConfig {
            subscription_counts: vec![1_000],
            ..config(predicates, 500)
        });
        let factor = table1.transformation_factor(predicates);
        for r in &rows {
            match r.engine {
                EngineKind::NonCanonical => assert_eq!(r.units, 1_000),
                _ => assert_eq!(r.units, 1_000 * factor, "{predicates} predicates"),
            }
        }
    }
}

#[test]
fn claim_counting_comparisons_grow_linearly_variant_stays_flat() {
    let rows = run(&config(8, 1_000));
    let counting: Vec<_> = rows
        .iter()
        .filter(|r| r.engine == EngineKind::Counting)
        .collect();
    // Comparisons scale exactly with registered units (linear curve).
    assert_eq!(counting[0].stats.comparisons, 16_000);
    assert_eq!(counting[2].stats.comparisons, 256_000);

    let variant: Vec<_> = rows
        .iter()
        .filter(|r| r.engine == EngineKind::CountingVariant)
        .collect();
    // The variant's comparisons are bounded by candidates, which are
    // bounded by increments (fulfilled * conjunctions-per-predicate),
    // independent of the corpus size.
    for r in &variant {
        assert!(
            r.stats.comparisons <= r.stats.increments,
            "variant comparisons bounded by increments"
        );
    }
    let growth = variant[2].stats.comparisons as f64 / variant[0].stats.comparisons as f64;
    let corpus_growth = 16.0;
    assert!(
        growth < corpus_growth / 2.0,
        "variant comparison growth {growth} must be sublinear in corpus growth"
    );
}

#[test]
fn claim_redundant_computation_after_transformation() {
    // §2.2: "if one unique predicate is fulfilled we have to increase a
    // counter for several subscriptions". With 8 predicates -> 16
    // conjunctions, each fulfilled predicate is counted 8 times.
    let rows = run(&SweepConfig {
        subscription_counts: vec![4_000],
        ..config(8, 1_000)
    });
    for r in &rows {
        match r.engine {
            EngineKind::NonCanonical => {
                assert_eq!(r.stats.increments, 0);
                // Candidate work is bounded by the fulfilled predicates.
                assert!(r.stats.candidates <= r.stats.fulfilled);
            }
            _ => {
                assert_eq!(
                    r.stats.increments,
                    r.stats.fulfilled * 8,
                    "each fulfilled predicate touches half the 16 conjunctions"
                );
            }
        }
    }
}

#[test]
fn claim_canonical_engines_hit_the_memory_wall_first() {
    // Scale the analytic wall to sit between the two working sets —
    // the paper's situation at ~700k subscriptions and 512 MB, shrunk
    // to test size: the counting engines' phase-2 working set crosses
    // the wall while the non-canonical engine's does not.
    let rows = run(&SweepConfig {
        subscription_counts: vec![16_000],
        ..config(10, 500)
    });
    let find = |k: EngineKind| rows.iter().find(|r| r.engine == k).unwrap();

    let nc = find(EngineKind::NonCanonical);
    let counting = find(EngineKind::Counting);
    let variant = find(EngineKind::CountingVariant);

    assert!(
        nc.phase2_bytes < counting.phase2_bytes,
        "non-canonical working set ({}) must be smaller than counting's ({})",
        nc.phase2_bytes,
        counting.phase2_bytes
    );
    let wall = MemoryModel::with_budget(((nc.phase2_bytes + counting.phase2_bytes) / 2) as u64);
    // Non-canonical fits: the model leaves its time unchanged.
    assert_eq!(wall.modeled(nc.measured, nc.phase2_bytes), nc.measured);
    // Counting engines blow the budget: the model kinks their curves.
    assert!(wall.modeled(counting.measured, counting.phase2_bytes) > counting.measured * 10);
    assert!(wall.modeled(variant.measured, variant.phase2_bytes) > variant.measured * 10);
}

#[test]
fn claim_matches_are_identical_across_engines_at_scale() {
    let rows = run(&config(6, 2_000));
    for n in [1_000usize, 4_000, 16_000] {
        let matched: Vec<usize> = EngineKind::ALL
            .iter()
            .map(|&k| {
                rows.iter()
                    .find(|r| r.engine == k && r.subscriptions == n)
                    .unwrap()
                    .stats
                    .matched
            })
            .collect();
        assert_eq!(matched[0], matched[1], "at {n}");
        assert_eq!(matched[0], matched[2], "at {n}");
    }
}
