//! # boolmatch
//!
//! A content-based publish/subscribe toolkit built around
//! **non-canonical Boolean subscription matching** — a from-scratch
//! Rust reproduction of:
//!
//! > Sven Bittner & Annika Hinze, *"On the Benefits of Non-Canonical
//! > Filtering in Publish/Subscribe Systems"*, ICDCS Workshops 2005.
//!
//! Classic pub/sub matchers only support conjunctive subscriptions;
//! arbitrary Boolean subscriptions must be DNF-transformed first, which
//! is exponential in space and multiplies per-event work. This
//! workspace implements the paper's alternative — match the *original*
//! expression over fulfilled-predicate sets — alongside the canonical
//! baselines, a broker, workload generators and a full experiment
//! harness. See `DESIGN.md` and `EXPERIMENTS.md` in the repository for
//! the system inventory and the reproduced figures.
//!
//! ## Quickstart
//!
//! ```
//! use boolmatch::prelude::*;
//!
//! // A broker running the paper's non-canonical engine:
//! let broker = Broker::builder().engine(EngineKind::NonCanonical).build();
//!
//! // Subscriptions are arbitrary Boolean expressions:
//! let sub = broker.subscribe(
//!     "(price > 10.0 or price <= 5.0 or kind = \"sale\") and symbol = \"NZX\"",
//! )?;
//!
//! broker.publish(
//!     Event::builder().attr("symbol", "NZX").attr("price", 12.5).build(),
//! );
//! assert!(sub.try_recv().is_some());
//! # Ok::<(), boolmatch::broker::BrokerError>(())
//! ```
//!
//! ## Layout
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`types`] | `boolmatch-types` | values, events, schemas |
//! | [`expr`] | `boolmatch-expr` | predicates, Boolean ASTs, parser, DNF/NNF transforms |
//! | [`index`] | `boolmatch-index` | B+ tree, hash index, the phase-1 predicate index |
//! | [`core`] | `boolmatch-core` | the three matching engines |
//! | [`broker`] | `boolmatch-broker` | the pub/sub service shell |
//! | [`workload`] | `boolmatch-workload` | generators, sweeps, the memory-wall model |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use boolmatch_broker as broker;
pub use boolmatch_core as core;
pub use boolmatch_expr as expr;
pub use boolmatch_index as index;
pub use boolmatch_types as types;
pub use boolmatch_workload as workload;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use boolmatch_broker::{
        Broker, BrokerError, DeliveryPolicy, DeliveryReceiver, QuarantineConfig, RebalancePolicy,
        SubscriberLag, Subscription,
    };
    pub use boolmatch_core::{
        CountingEngine, CountingVariantEngine, EngineKind, FilterEngine, MatchResult, MatchScratch,
        Matcher, NonCanonicalEngine, PlacementPolicy, ShardTranslation, ShardedEngine,
        SubscriptionDirectory, SubscriptionId,
    };
    pub use boolmatch_expr::{CompareOp, Expr, Predicate};
    pub use boolmatch_types::{Event, Schema, Value, ValueKind};
}
