//! Auction sniping: deeply nested Boolean interests with negation,
//! plus live unsubscription — the operation the paper's data-structure
//! design (§3.2, footnote 1) exists to support.
//!
//! Run with: `cargo run --example auction_watch`

use boolmatch::prelude::*;
use boolmatch::workload::scenarios::AuctionScenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let broker = Broker::builder().engine(EngineKind::NonCanonical).build();
    let mut scenario = AuctionScenario::new(42);

    // A fleet of snipers.
    let mut snipers: Vec<Subscription> = scenario
        .subscriptions(150)
        .iter()
        .map(|e| broker.subscribe_expr(e))
        .collect::<Result<_, _>>()?;
    println!("{} snipers registered", broker.subscription_count());

    // First auction round.
    for _ in 0..2_000 {
        broker.publish(scenario.bid());
    }
    let first_round: usize = snipers.iter().map(|s| s.drain().len()).sum();
    println!("round 1: {first_round} notifications across all snipers");

    // Half the snipers won their items and leave: drop the handles —
    // the broker unsubscribes them, the engine releases their
    // predicates and tree storage.
    let before = broker.memory_usage().total();
    snipers.truncate(75);
    println!(
        "75 snipers left; engine now holds {} subscriptions",
        broker.subscription_count()
    );

    // Second round: only the remaining snipers are matched.
    for _ in 0..2_000 {
        broker.publish(scenario.bid());
    }
    let second_round: usize = snipers.iter().map(|s| s.drain().len()).sum();
    let after = broker.memory_usage().total();
    println!("round 2: {second_round} notifications across remaining snipers");
    println!(
        "memory: {:.1} KiB before churn, {:.1} KiB after (freed storage is reused)",
        before as f64 / 1024.0,
        after as f64 / 1024.0
    );

    let stats = broker.stats();
    println!(
        "{} subscriptions created, {} removed over the session",
        stats.subscriptions_created, stats.subscriptions_removed
    );
    Ok(())
}
