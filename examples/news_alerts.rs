//! News alerting with string predicates: categories, keyword
//! containment, region prefixes and negated exclusions.
//!
//! Demonstrates the subscription language beyond numeric comparisons
//! and the `not` semantics of the non-canonical engine (full Boolean
//! negation, paper §3.1).
//!
//! Run with: `cargo run --example news_alerts`

use boolmatch::prelude::*;
use boolmatch::workload::scenarios::NewsScenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let broker = Broker::builder().engine(EngineKind::NonCanonical).build();

    // Hand-written subscriptions showing the language.
    let science_quakes = broker.subscribe(
        "category = \"science\" and (headline contains \"quake\" or headline contains \"storm\")",
    )?;
    let not_us_politics =
        broker.subscribe("category = \"politics\" and not (region prefix \"us\")")?;
    let urgent_anything = broker.subscribe("urgency >= 9")?;

    // Plus a generated batch for volume.
    let mut scenario = NewsScenario::new(7);
    let generated: Vec<Subscription> = scenario
        .subscriptions(100)
        .iter()
        .map(|e| broker.subscribe_expr(e))
        .collect::<Result<_, _>>()?;
    println!("{} subscriptions registered", broker.subscription_count());

    // A hand-written headline for each hand-written interest:
    let headlines = [
        Event::builder()
            .attr("category", "science")
            .attr("headline", "major quake recorded off the coast")
            .attr("region", "nz-3")
            .attr("urgency", 6_i64)
            .build(),
        Event::builder()
            .attr("category", "politics")
            .attr("headline", "coalition talks resume")
            .attr("region", "eu-1")
            .attr("urgency", 4_i64)
            .build(),
        Event::builder()
            .attr("category", "politics")
            .attr("headline", "primaries kick off")
            .attr("region", "us-2") // excluded by the `not` subscription
            .attr("urgency", 9_i64)
            .build(),
    ];
    for h in &headlines {
        broker.publish(h.clone());
    }
    // And generated traffic:
    for _ in 0..1_000 {
        broker.publish(scenario.headline());
    }

    println!(
        "science/quake subscriber: {} notification(s)",
        science_quakes.drain().len()
    );
    println!(
        "non-US politics subscriber: {} notification(s) (the us-2 story was filtered)",
        not_us_politics.drain().len()
    );
    println!(
        "urgency >= 9 subscriber: {} notification(s)",
        urgent_anything.drain().len()
    );
    let generated_total: usize = generated.iter().map(|s| s.drain().len()).sum();
    println!("generated subscribers together: {generated_total} notification(s)");

    let stats = broker.stats();
    println!(
        "{} events published, {} notifications delivered",
        stats.events_published, stats.notifications_delivered
    );
    Ok(())
}
