//! Stock-ticker demo: concurrent publishers feeding a broker, many
//! subscribers with non-canonical (alternative-rich) interests.
//!
//! This is the workload class the paper's introduction motivates:
//! subscribers on "laptops and mobile devices" with interests like
//! "IBM breaks out above 120 *or* dips under 80, with enough volume" —
//! disjunctions that conjunctive-only matchers cannot register without
//! a blow-up.
//!
//! Run with: `cargo run --example stock_ticker`

use std::thread;
use std::time::Duration;

use boolmatch::prelude::*;
use boolmatch::workload::scenarios::StockScenario;

const SUBSCRIBERS: usize = 200;
const PUBLISHERS: usize = 3;
const TICKS_PER_PUBLISHER: usize = 2_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let broker = Broker::builder()
        .engine(EngineKind::NonCanonical)
        // Slow consumers drop rather than stall the market feed.
        .delivery(DeliveryPolicy::DropNewest { capacity: 1_024 })
        .build();

    // Register subscribers with generated, deliberately disjunctive
    // interests.
    let mut scenario = StockScenario::new(2005);
    let mut subscriptions = Vec::with_capacity(SUBSCRIBERS);
    for _ in 0..SUBSCRIBERS {
        let expr = scenario.subscription();
        subscriptions.push(broker.subscribe_expr(&expr)?);
    }
    println!(
        "registered {} subscriptions ({} distinct predicates in the engine)",
        broker.subscription_count(),
        broker.memory_usage().predicates / 64 // rough count, for flavour
    );

    // Publisher threads feed ticks concurrently.
    let mut handles = Vec::new();
    for p in 0..PUBLISHERS {
        let publisher = broker.publisher();
        handles.push(thread::spawn(move || {
            let mut feed = StockScenario::new(9_000 + p as u64);
            let mut delivered = 0usize;
            for _ in 0..TICKS_PER_PUBLISHER {
                delivered += publisher.publish(feed.tick());
            }
            delivered
        }));
    }

    // A consumer thread drains one subscriber live.
    let watched = subscriptions.pop().expect("at least one subscription");
    let consumer = thread::spawn(move || {
        let mut seen = 0usize;
        while let Some(note) = watched.recv_timeout(Duration::from_millis(200)) {
            if seen < 3 {
                println!("watched subscriber notified: {note}");
            }
            seen += 1;
        }
        seen
    });

    let mut delivered_total = 0usize;
    for h in handles {
        delivered_total += h.join().expect("publisher thread");
    }
    let watched_count = consumer.join().expect("consumer thread");

    let stats = broker.stats();
    println!("--------------------------------------------------");
    println!("ticks published          : {}", stats.events_published);
    println!("notifications delivered  : {delivered_total}");
    println!("notifications dropped    : {}", stats.notifications_dropped);
    println!("watched subscriber saw   : {watched_count} notifications");
    println!(
        "engine memory (total)    : {:.1} MiB",
        broker.memory_usage().total() as f64 / (1024.0 * 1024.0)
    );
    Ok(())
}
