//! Concurrent publishers over one broker — the shared-read matching
//! model in action: every publisher thread matches under the engine's
//! read lock with its own thread-local scratch.
//!
//! ```text
//! cargo run --release --example concurrent_publishers
//! ```

use std::time::Instant;

use boolmatch::prelude::*;
use boolmatch::workload::scenarios::StockScenario;

const PUBLISHERS: usize = 4;
const EVENTS_PER_PUBLISHER: usize = 10_000;
const SUBSCRIPTIONS: usize = 500;

fn main() {
    let broker = Broker::builder().engine(EngineKind::NonCanonical).build();

    let mut scenario = StockScenario::new(7);
    let subs: Vec<Subscription> = scenario
        .subscriptions(SUBSCRIPTIONS)
        .iter()
        .map(|e| broker.subscribe_expr(e).expect("accepted"))
        .collect();
    println!(
        "{} subscriptions registered on a {} broker",
        subs.len(),
        broker.engine_kind()
    );

    let start = Instant::now();
    std::thread::scope(|scope| {
        for p in 0..PUBLISHERS {
            let publisher = broker.publisher();
            scope.spawn(move || {
                let mut feed = StockScenario::new(100 + p as u64);
                for _ in 0..EVENTS_PER_PUBLISHER {
                    publisher.publish(feed.tick());
                }
            });
        }
    });
    let elapsed = start.elapsed();

    let stats = broker.stats();
    let total = PUBLISHERS * EVENTS_PER_PUBLISHER;
    println!(
        "{total} events published by {PUBLISHERS} threads in {:.2?} \
         ({:.0} events/sec aggregate)",
        elapsed,
        total as f64 / elapsed.as_secs_f64()
    );
    println!(
        "delivered {} notifications ({:.1} per event)",
        stats.notifications_delivered,
        stats.notifications_delivered as f64 / total as f64
    );
    assert_eq!(stats.events_published, total as u64);
    let received: usize = subs.iter().map(Subscription::queued).sum();
    assert_eq!(received as u64, stats.notifications_delivered);
    println!("subscriber queues hold every delivered notification: OK");
}
