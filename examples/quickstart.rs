//! Quickstart: register Boolean subscriptions, publish events, receive
//! notifications.
//!
//! Run with: `cargo run --example quickstart`

use boolmatch::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A broker running the paper's non-canonical matching engine.
    let broker = Broker::builder().engine(EngineKind::NonCanonical).build();

    // The example subscription from Fig. 1 of the paper — an arbitrary
    // Boolean expression, registered without any DNF transformation:
    let fig1 = broker.subscribe("(a > 10 or a <= 5 or b = 1) and (c <= 20 or c = 30 or d = 5)")?;
    println!("registered subscription {}", fig1.id());

    // A second subscriber with a string-heavy interest:
    let alerts = broker
        .subscribe("severity >= 3 and (service prefix \"auth\" or message contains \"timeout\")")?;
    println!("registered subscription {}", alerts.id());

    // Publish a few events.
    let events = [
        Event::builder().attr("a", 12_i64).attr("c", 30_i64).build(),
        Event::builder().attr("a", 7_i64).attr("c", 30_i64).build(), // matches nothing
        Event::builder()
            .attr("severity", 4_i64)
            .attr("service", "auth-gateway")
            .build(),
    ];
    for event in events {
        let delivered = broker.publish(event);
        println!("published; {delivered} notification(s) delivered");
    }

    // Drain the notification queues.
    for note in fig1.drain() {
        println!("fig1 subscriber got: {note}");
    }
    for note in alerts.drain() {
        println!("alert subscriber got: {note}");
    }

    let stats = broker.stats();
    println!(
        "broker stats: {} events published, {} notifications delivered",
        stats.events_published, stats.notifications_delivered
    );
    Ok(())
}
