//! Side-by-side engine comparison on one workload — a miniature of the
//! paper's §4 experiment, runnable in seconds.
//!
//! Registers the same AND-of-OR-pairs corpus (Table 1 shape) in all
//! three engines, fires the same synthetic fulfilled-predicate sets at
//! their subscription-matching phases, and prints time, work counters
//! and memory side by side.
//!
//! Run with: `cargo run --release --example engine_comparison`

use boolmatch::core::EngineKind;
use boolmatch::workload::sweep::{self, SweepConfig};
use boolmatch::workload::{MemoryModel, Table1Config};

fn main() {
    let table1 = Table1Config::paper();
    let predicates = 10; // the paper's harshest setting (32x blow-up)
    let config = SweepConfig {
        label: "comparison".to_owned(),
        engines: EngineKind::ALL.to_vec(),
        subscription_counts: vec![2_000, 10_000, 50_000],
        predicates_per_sub: predicates,
        fulfilled_per_event: 2_000,
        events_per_point: 5,
        seed: 1,
        memory_model: MemoryModel::paper(),
    };
    println!(
        "paper workload shape: {} predicates/subscription -> {} conjunctions after DNF",
        predicates,
        table1.transformation_factor(predicates)
    );
    println!();
    println!(
        "{:<18} {:>8} {:>10} {:>12} {:>12} {:>12} {:>10}",
        "engine", "subs", "units", "phase2", "increments", "comparisons", "phase2 MiB"
    );

    sweep::run_with_progress(&config, |row| {
        println!(
            "{:<18} {:>8} {:>10} {:>9.2} µs {:>12} {:>12} {:>10.2}",
            row.engine.label(),
            row.subscriptions,
            row.units,
            row.measured.as_secs_f64() * 1e6,
            row.stats.increments,
            row.stats.comparisons,
            row.phase2_bytes as f64 / (1024.0 * 1024.0),
        );
    });

    println!();
    println!("reading the table:");
    println!("- units: counting engines register 32 conjunctions per subscription");
    println!("- comparisons: the classic counting engine scans every unit per event");
    println!("- the non-canonical engine touches only candidate subscriptions");
}
