//! Sharded broker: partition subscriptions across engine shards so
//! registration churn stops stalling publishers, and publish in
//! batches to amortise per-event overhead.
//!
//! Run with: `cargo run --example sharded_broker`

use boolmatch::prelude::*;
use boolmatch::workload::scenarios::{ChurnOp, ChurnScenario, StockScenario};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Four engine shards, each behind its own lock: a subscribe or
    // unsubscribe write-locks one shard while matching keeps running
    // on the other three. `shards(1)` (the default) is the classic
    // single-engine broker.
    let broker = Broker::builder()
        .engine(EngineKind::NonCanonical)
        .shards(4)
        .build();
    println!("broker with {} shards", broker.shard_count());

    // A stable audience of stock watchers...
    let mut stock = StockScenario::new(42);
    let watchers: Vec<Subscription> = stock
        .subscriptions(100)
        .iter()
        .map(|expr| broker.subscribe_expr(expr))
        .collect::<Result<_, _>>()?;

    // ...plus sustained churn: subscribers joining and leaving while
    // the market feed keeps publishing. With one shard every one of
    // these registrations would briefly stall all matching.
    let mut churn = ChurnScenario::new(7, 50);
    let mut churners: Vec<Subscription> = Vec::new();
    let mut ticks: Vec<std::sync::Arc<Event>> = Vec::new();
    let mut delivered = 0usize;
    for op in churn.ops(2_000) {
        match op {
            ChurnOp::Subscribe(expr) => churners.push(broker.subscribe_expr(&expr)?),
            ChurnOp::Unsubscribe(i) => drop(churners.remove(i)),
            // Batch the feed: one lock acquisition per shard and one
            // sender-map lookup pass per flush, instead of per event.
            // Each event is `Arc`-wrapped once, here — matching and
            // every delivered notification share that allocation.
            ChurnOp::Publish(event) => {
                ticks.push(std::sync::Arc::new(event));
                if ticks.len() == 64 {
                    delivered += broker.publish_batch(&ticks);
                    ticks.clear();
                }
            }
        }
    }
    delivered += broker.publish_batch(&ticks);

    let stats = broker.stats();
    println!(
        "published {} events in batches; {} notifications delivered",
        stats.events_published, delivered
    );
    println!(
        "churn: {} subscriptions created, {} removed, {} still live",
        stats.subscriptions_created,
        stats.subscriptions_removed,
        broker.subscription_count()
    );
    let received: usize = watchers.iter().map(|w| w.drain().len()).sum();
    println!("stable watchers received {received} notifications");
    println!(
        "engine memory (all shards): {} bytes",
        broker.memory_usage().total()
    );
    Ok(())
}
