//! Sharded broker: partition subscriptions across engine shards so
//! registration churn stops stalling publishers, and publish in
//! batches to amortise per-event overhead.
//!
//! Run with: `cargo run --example sharded_broker`

use boolmatch::prelude::*;
use boolmatch::workload::scenarios::{ChurnOp, ChurnScenario, StockScenario};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Four engine shards, each behind its own lock: a subscribe or
    // unsubscribe write-locks one shard while matching keeps running
    // on the other three. `shards(1)` (the default) is the classic
    // single-engine broker.
    let broker = Broker::builder()
        .engine(EngineKind::NonCanonical)
        .shards(4)
        .build();
    println!("broker with {} shards", broker.shard_count());

    // A stable audience of stock watchers...
    let mut stock = StockScenario::new(42);
    let watchers: Vec<Subscription> = stock
        .subscriptions(100)
        .iter()
        .map(|expr| broker.subscribe_expr(expr))
        .collect::<Result<_, _>>()?;

    // ...plus sustained churn: subscribers joining and leaving while
    // the market feed keeps publishing. With one shard every one of
    // these registrations would briefly stall all matching.
    let mut churn = ChurnScenario::new(7, 50);
    let mut churners: Vec<Subscription> = Vec::new();
    let mut ticks: Vec<std::sync::Arc<Event>> = Vec::new();
    let mut delivered = 0usize;
    for op in churn.ops(2_000) {
        match op {
            ChurnOp::Subscribe(expr) => churners.push(broker.subscribe_expr(&expr)?),
            ChurnOp::Unsubscribe(i) => drop(churners.remove(i)),
            // Batch the feed: one lock acquisition per shard and one
            // sender-map lookup pass per flush, instead of per event.
            // Each event is `Arc`-wrapped once, here — matching and
            // every delivered notification share that allocation.
            ChurnOp::Publish(event) => {
                ticks.push(std::sync::Arc::new(event));
                if ticks.len() == 64 {
                    delivered += broker.publish_batch(&ticks);
                    ticks.clear();
                }
            }
        }
    }
    delivered += broker.publish_batch(&ticks);

    // Least-loaded placement kept the shards even through all that
    // churn (the old blind round-robin cursor could not). An adversarial
    // drain still skews them: everyone who happens to live on shards 1
    // and 2 leaves at once. `rebalance()` live-migrates subscriptions
    // (ids, handles and queues untouched) until no shard is more than
    // one subscription heavier than another.
    println!("shard loads after churn:      {:?}", broker.shard_loads());
    churners.clear(); // the churn cohort leaves; watchers remain
    let mut watchers = watchers;
    for i in (0..watchers.len()).rev() {
        if i % 4 == 1 || i % 4 == 2 {
            drop(watchers.remove(i)); // drains shards 1 and 2
        }
    }
    println!("shard loads after the drain:  {:?}", broker.shard_loads());
    let moved = broker.rebalance();
    println!(
        "shard loads after migrating {moved} subscriptions: {:?}",
        broker.shard_loads()
    );

    // The shard count itself is a live knob: grow to six shards (the
    // lock array is swapped behind an epoch; publishes never stop),
    // spread onto the new shards, then shrink back — every dying
    // shard's subscriptions are live-migrated onto the survivors.
    broker.resize(6);
    broker.rebalance();
    println!("shard loads after resize(6):  {:?}", broker.shard_loads());
    let drained = broker.resize(4);
    println!(
        "shard loads after resize(4) drained {drained} subscriptions back: {:?}",
        broker.shard_loads()
    );

    // Counts even does not mean load even: per-shard match counters
    // expose which shards actually produce the matches, and a
    // frequency-weighted rebalance tick (what
    // `BrokerBuilder::background_rebalance` runs continuously on its
    // own thread) migrates hot load instead of raw counts.
    println!(
        "per-shard match counters:     {:?}",
        broker.shard_match_hits()
    );
    broker.rebalance_by_match_frequency(8);

    let stats = broker.stats();
    println!(
        "published {} events in batches; {} notifications delivered",
        stats.events_published, delivered
    );
    println!(
        "churn: {} subscriptions created, {} removed, {} still live",
        stats.subscriptions_created,
        stats.subscriptions_removed,
        broker.subscription_count()
    );
    let received: usize = watchers.iter().map(|w| w.drain().len()).sum();
    println!("stable watchers received {received} notifications");
    println!(
        "engine memory (all shards): {} bytes",
        broker.memory_usage().total()
    );
    Ok(())
}
