//! Drift guards: the lint's hard-coded vocabulary must track the
//! workspace it patrols. A new lock class in
//! `boolmatch_core::lock_classes`, a new broker-global lock field, or
//! a new rule that never makes the README table should fail *here*,
//! not silently escape enforcement or documentation.

use std::fs;
use std::path::{Path, PathBuf};

use boolmatch_analysis::rules::{GLOBAL_LOCKS, LEAF_LOCKS, RELAXED_COUNTER_CELLS, RULES};
use boolmatch_analysis::workspace_sources;

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root exists")
        .to_path_buf()
}

/// Every flat (string-const) lock class in `lock_classes` must be
/// classified by the lint: either banned on the hot path
/// (`GLOBAL_LOCKS`) or a documented leaf (`LEAF_LOCKS`). Parameterised
/// classes (`shard[{i}]`, `delivery-queue[{g}]`) are per-instance by
/// construction — the test pins that they stay indexed.
#[test]
fn every_lock_class_is_classified_by_the_lint() {
    let routing = fs::read_to_string(workspace_root().join("crates/core/src/routing.rs"))
        .expect("routing.rs is readable");
    let start = routing
        .find("pub mod lock_classes")
        .expect("lock_classes module exists");
    let module = &routing[start..];
    let end = module.find("\n}").expect("lock_classes module closes");
    let module = &module[..end];

    let mut flat_classes = Vec::new();
    for line in module.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("pub const ") {
            if rest.contains("&str") {
                let value = rest
                    .split('"')
                    .nth(1)
                    .expect("string lock-class const carries a literal");
                flat_classes.push(value.to_owned());
            }
        }
        if let Some(at) = line.find("format!(\"") {
            let value = line[at..]
                .split('"')
                .nth(1)
                .expect("format! carries a literal");
            assert!(
                value.contains('['),
                "parameterised lock class `{value}` must stay per-instance \
                 (indexed); a flat class belongs in GLOBAL_LOCKS or LEAF_LOCKS"
            );
        }
    }
    assert!(
        !flat_classes.is_empty(),
        "found no flat lock classes — the textual scan of lock_classes broke"
    );
    for class in &flat_classes {
        assert!(
            GLOBAL_LOCKS.contains(&class.as_str()) || LEAF_LOCKS.contains(&class.as_str()),
            "lock class `{class}` is neither banned on the hot path (GLOBAL_LOCKS) \
             nor a documented leaf (LEAF_LOCKS) — classify it in \
             crates/analysis/src/rules.rs"
        );
    }
}

/// Every name the lint bans or allow-lists must exist in the sources it
/// patrols — a renamed broker field would otherwise leave a stale entry
/// silently matching nothing.
#[test]
fn lint_vocabulary_names_exist_in_the_workspace() {
    let root = workspace_root();
    let mut haystack = String::new();
    for path in workspace_sources(&root).expect("workspace sources are readable") {
        if path.to_string_lossy().contains("crates/shims/") {
            continue;
        }
        haystack.push_str(&fs::read_to_string(&path).expect("source is readable"));
    }
    for lock in GLOBAL_LOCKS {
        assert!(
            haystack.contains(&format!("{lock}:")),
            "GLOBAL_LOCKS entry `{lock}` matches no field declaration in the \
             workspace — stale vocabulary?"
        );
    }
    for cell in RELAXED_COUNTER_CELLS {
        assert!(
            haystack.contains(&format!("{cell}:")),
            "RELAXED_COUNTER_CELLS entry `{cell}` matches no field declaration \
             in the workspace — stale vocabulary?"
        );
    }
}

/// The README's rule table and the lint's `RULES` list must stay in
/// lockstep, both directions.
#[test]
fn readme_rule_table_matches_rules() {
    let readme =
        fs::read_to_string(workspace_root().join("README.md")).expect("README is readable");
    let section = readme
        .split("## Invariants & analysis")
        .nth(1)
        .expect("README has an Invariants & analysis section");
    let section = section.split("\n## ").next().expect("section has content");
    let mut documented: Vec<String> = section
        .lines()
        .filter_map(|line| line.trim().strip_prefix("| `"))
        .map(|rest| {
            rest.split('`')
                .next()
                .expect("table cell closes its backtick")
                .to_owned()
        })
        .collect();
    documented.sort();
    documented.dedup();
    let mut rules: Vec<String> = RULES.iter().map(|r| (*r).to_owned()).collect();
    rules.sort();
    assert_eq!(
        documented, rules,
        "README rule table and rules::RULES drifted apart — document new rules \
         in the table, or remove stale rows"
    );
}
