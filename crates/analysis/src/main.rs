//! `invariant-lint` — CLI over [`boolmatch_analysis`].
//!
//! ```text
//! invariant-lint [--root PATH] [--format text|json]
//! ```
//!
//! Exits 0 when the tree is clean, 1 when any finding survives, 2 on
//! usage or I/O errors. CI runs this as a required job.

use std::path::PathBuf;
use std::process::ExitCode;

use boolmatch_analysis::{lint_workspace, render_json, render_text};

struct Args {
    root: PathBuf,
    json: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut root = None;
    let mut json = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--root" => {
                let value = argv.next().ok_or("--root needs a path")?;
                root = Some(PathBuf::from(value));
            }
            "--format" => match argv.next().as_deref() {
                Some("json") => json = true,
                Some("text") => json = false,
                other => {
                    return Err(format!(
                        "--format takes `text` or `json`, got {:?}",
                        other.unwrap_or("nothing")
                    ))
                }
            },
            other if other.starts_with("--format=") => match &other["--format=".len()..] {
                "json" => json = true,
                "text" => json = false,
                bad => return Err(format!("--format takes `text` or `json`, got `{bad}`")),
            },
            other if other.starts_with("--root=") => {
                root = Some(PathBuf::from(&other["--root=".len()..]));
            }
            "--help" | "-h" => {
                println!("usage: invariant-lint [--root PATH] [--format text|json]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    // Default root: the workspace the binary was built from — correct
    // for `cargo run -p boolmatch-analysis`; CI passes --root=. anyway.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."))
    });
    Ok(Args { root, json })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("invariant-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    let findings = match lint_workspace(&args.root) {
        Ok(findings) => findings,
        Err(err) => {
            eprintln!("invariant-lint: {}: {err}", args.root.display());
            return ExitCode::from(2);
        }
    };
    if args.json {
        print!("{}", render_json(&findings));
    } else {
        print!("{}", render_text(&findings));
        if findings.is_empty() {
            eprintln!("invariant-lint: clean ({})", args.root.display());
        } else {
            eprintln!("invariant-lint: {} finding(s)", findings.len());
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
