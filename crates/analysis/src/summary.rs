//! Per-function **effect summaries** and their transitive closure over
//! the call graph.
//!
//! Each function gets three facts the interprocedural rules care
//! about:
//!
//! - **named global locks acquired** — `receiver.read()/.write()/
//!   .lock()` where the receiver is one of the broker-global lock
//!   fields ([`crate::rules::GLOBAL_LOCKS`], the `lock_classes`
//!   vocabulary);
//! - **panic sites** — `.unwrap()` / `.expect()` / `panic!`-family
//!   macros;
//! - **blocking operations** — condvar waits, channel receives, a
//!   zero-argument `.join()`, `sleep(…)`, and a
//!   `DeliveryPolicy::Block { .. }` match arm (the blocking-enqueue
//!   implementation marker).
//!
//! A `// lint: allow(rule, reason = "…")` covering a site removes the
//! effect at the source: the written justification holds for every
//! caller, so nothing propagates. Likewise an allow at a *call site*
//! stops that callee's effects from flowing into the caller — one
//! documented suppression quiets the whole chain above it, instead of
//! demanding an allow per transitive caller.
//!
//! Propagation is a fixpoint over the call graph (monotone — effects
//! only ever appear — so recursion and mutual recursion terminate).
//! Every inherited effect remembers *which call* it came through;
//! walking those links back to the direct site yields the call chain
//! findings print. Ambiguous names (several same-named definitions)
//! propagate only the effects common to all candidates — see the
//! policy note on [`crate::callgraph`].

use std::collections::BTreeMap;

use crate::callgraph::CallGraph;
use crate::lexer::{Lexed, Tok, TokKind};
use crate::rules::{GLOBAL_LOCKS, PANIC_MACROS, PANIC_METHODS};

/// Blocking **method** names (`.name(…)` shapes): condvar waits and
/// channel receives. `try_*` variants are non-blocking by contract and
/// absent on purpose.
pub const BLOCKING_METHODS: &[&str] = &[
    "wait",
    "wait_for",
    "wait_while",
    "wait_timeout",
    "wait_timeout_while",
    "wait_each",
    "recv",
    "recv_timeout",
    "recv_deadline",
];

/// Where an effect entered a function's summary.
#[derive(Debug, Clone)]
pub enum Origin {
    /// The construct itself, in this function's body.
    Direct {
        file: usize,
        line: u32,
        /// Rendered construct, e.g. `directory.write()` or
        /// `.unwrap()`.
        what: String,
    },
    /// Inherited through a call.
    Via {
        /// Call-site line in *this* function.
        line: u32,
        /// The candidate definition the chain continues through.
        callee: usize,
        /// Number of same-named definitions the call resolved to
        /// (1 = unique).
        ambiguous: usize,
    },
}

/// One function's (eventually transitive) effect summary.
#[derive(Debug, Clone, Default)]
pub struct Effects {
    /// Global lock name → how this function comes to acquire it.
    pub locks: BTreeMap<String, Origin>,
    /// A representative panic site, if any path panics.
    pub panics: Option<Origin>,
    /// A representative blocking operation, if any path blocks.
    pub blocks: Option<Origin>,
}

/// Rule names the allow-filter is consulted under, one per effect
/// kind. An allow for the matching rule at an effect's (or call's)
/// line strips that effect.
pub const LOCK_RULE: &str = "hot-path-locking";
pub const PANIC_RULE: &str = "panic-policy";
pub const BLOCK_RULE: &str = "blocking-while-locked";

/// `receiver.method(` at token `i` (pointing at `method`): the
/// receiver ident.
pub fn method_receiver(toks: &[Tok], i: usize) -> Option<&str> {
    if i < 2 || !toks[i - 1].is_punct('.') {
        return None;
    }
    if toks.get(i + 1).is_none_or(|t| !t.is_punct('(')) {
        return None;
    }
    toks[i - 2].ident()
}

/// Is token `i` a `.method(` call on any receiver?
pub fn is_method_call(toks: &[Tok], i: usize) -> bool {
    i >= 1 && toks[i - 1].is_punct('.') && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
}

/// Classifies token `i` as a direct blocking operation, returning a
/// rendering for messages. The shapes:
/// - `.wait(…)` / `.recv(…)` family method calls ([`BLOCKING_METHODS`]);
/// - `sleep(…)` in call position (bare or `thread::sleep`);
/// - a zero-argument `.join()` — thread join; `join(sep)` on slices and
///   paths takes arguments and is excluded;
/// - `Block { … } =>` — a match arm implementing the blocking-enqueue
///   delivery policy.
pub fn blocking_op(toks: &[Tok], i: usize) -> Option<String> {
    let name = toks[i].ident()?;
    if BLOCKING_METHODS.contains(&name) && is_method_call(toks, i) {
        return Some(format!(".{name}(…)"));
    }
    if name == "sleep" && toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
        return Some("sleep(…)".into());
    }
    if name == "join" && is_method_call(toks, i) && toks.get(i + 2).is_some_and(|t| t.is_punct(')'))
    {
        return Some(".join()".into());
    }
    if name == "Block" && toks.get(i + 1).is_some_and(|t| t.is_punct('{')) {
        // Only the *match arm* (`Block { … } =>`) marks a blocking
        // enqueue; constructing the policy value blocks nothing.
        let depth = toks[i + 1].depth;
        let mut j = i + 2;
        while let Some(tok) = toks.get(j) {
            if tok.kind == TokKind::Punct('}') && tok.depth == depth + 1 {
                if toks.get(j + 1).is_some_and(|t| t.is_punct('='))
                    && toks.get(j + 2).is_some_and(|t| t.is_punct('>'))
                {
                    return Some("Block { .. } enqueue arm".into());
                }
                return None;
            }
            j += 1;
        }
        return None;
    }
    None
}

/// Extracts every function's **direct** effects. `allowed(file, rule,
/// line)` is the suppression oracle (an allow with a written reason
/// covering that line).
pub fn direct_effects(
    files: &[(&str, &Lexed)],
    graph: &CallGraph,
    allowed: &dyn Fn(usize, &str, u32) -> bool,
) -> Vec<Effects> {
    let mut out = vec![Effects::default(); graph.fns.len()];
    for (fn_idx, item) in graph.fns.iter().enumerate() {
        let toks = &files[item.file].1.tokens;
        let eff = &mut out[fn_idx];
        for i in (item.open + 1)..item.close {
            if !item.owns(i) {
                continue;
            }
            let line = toks[i].line;
            let Some(name) = toks[i].ident() else {
                continue;
            };
            // Named global lock acquisition.
            if matches!(name, "read" | "write" | "lock") {
                if let Some(receiver) = method_receiver(toks, i) {
                    if GLOBAL_LOCKS.contains(&receiver)
                        && !allowed(item.file, LOCK_RULE, line)
                        && !eff.locks.contains_key(receiver)
                    {
                        eff.locks.insert(
                            receiver.to_owned(),
                            Origin::Direct {
                                file: item.file,
                                line,
                                what: format!("{receiver}.{name}()"),
                            },
                        );
                    }
                }
            }
            // Panic sites.
            let is_panic_method = PANIC_METHODS.contains(&name) && is_method_call(toks, i);
            let is_panic_macro =
                PANIC_MACROS.contains(&name) && toks.get(i + 1).is_some_and(|t| t.is_punct('!'));
            if (is_panic_method || is_panic_macro)
                && eff.panics.is_none()
                && !allowed(item.file, PANIC_RULE, line)
            {
                let what = if is_panic_macro {
                    format!("{name}!")
                } else {
                    format!(".{name}()")
                };
                eff.panics = Some(Origin::Direct {
                    file: item.file,
                    line,
                    what,
                });
            }
            // Blocking operations.
            if eff.blocks.is_none() && !allowed(item.file, BLOCK_RULE, line) {
                if let Some(what) = blocking_op(toks, i) {
                    eff.blocks = Some(Origin::Direct {
                        file: item.file,
                        line,
                        what,
                    });
                }
            }
        }
    }
    out
}

/// The effects a call to this candidate set contributes: a unique
/// definition contributes its full summary; an ambiguous set only what
/// every candidate shares (see the module policy note).
pub struct MergedEffects {
    pub locks: Vec<String>,
    pub panics: bool,
    pub blocks: bool,
    /// The candidate a chain continues through, per effect kind —
    /// always one that actually carries the effect.
    pub lock_via: BTreeMap<String, usize>,
    pub panic_via: usize,
    pub block_via: usize,
}

/// Merges candidate summaries under the ambiguity policy.
pub fn merge_candidates(candidates: &[usize], effects: &[Effects]) -> MergedEffects {
    let mut merged = MergedEffects {
        locks: Vec::new(),
        panics: !candidates.is_empty(),
        blocks: !candidates.is_empty(),
        lock_via: BTreeMap::new(),
        panic_via: candidates.first().copied().unwrap_or(0),
        block_via: candidates.first().copied().unwrap_or(0),
    };
    if candidates.is_empty() {
        merged.panics = false;
        merged.blocks = false;
        return merged;
    }
    // Locks: intersection of lock-name sets.
    let first = &effects[candidates[0]];
    for name in first.locks.keys() {
        if candidates
            .iter()
            .all(|&c| effects[c].locks.contains_key(name))
        {
            merged.locks.push(name.clone());
            merged.lock_via.insert(name.clone(), candidates[0]);
        }
    }
    for &c in candidates {
        merged.panics &= effects[c].panics.is_some();
        merged.blocks &= effects[c].blocks.is_some();
    }
    if merged.panics {
        merged.panic_via = candidates[0];
    }
    if merged.blocks {
        merged.block_via = candidates[0];
    }
    merged
}

/// Propagates effects transitively: repeatedly folds every call site's
/// (merged) callee effects into its caller until nothing changes.
/// Inherited effects record the call they came through; an allow at
/// the call-site line for the matching rule blocks inheritance there.
pub fn propagate(
    graph: &CallGraph,
    effects: &mut [Effects],
    allowed: &dyn Fn(usize, &str, u32) -> bool,
) {
    loop {
        let mut changed = false;
        for caller in 0..graph.fns.len() {
            for &call_idx in &graph.calls_of[caller] {
                let call = &graph.calls[call_idx];
                let candidates = graph.resolve(&call.callee);
                if candidates.is_empty() {
                    continue;
                }
                let merged = merge_candidates(candidates, effects);
                let ambiguous = candidates.len();
                for lock in &merged.locks {
                    if !effects[caller].locks.contains_key(lock)
                        && !allowed(call.file, LOCK_RULE, call.line)
                    {
                        effects[caller].locks.insert(
                            lock.clone(),
                            Origin::Via {
                                line: call.line,
                                callee: merged.lock_via[lock],
                                ambiguous,
                            },
                        );
                        changed = true;
                    }
                }
                if merged.panics
                    && effects[caller].panics.is_none()
                    && !allowed(call.file, PANIC_RULE, call.line)
                {
                    effects[caller].panics = Some(Origin::Via {
                        line: call.line,
                        callee: merged.panic_via,
                        ambiguous,
                    });
                    changed = true;
                }
                if merged.blocks
                    && effects[caller].blocks.is_none()
                    && !allowed(call.file, BLOCK_RULE, call.line)
                {
                    effects[caller].blocks = Some(Origin::Via {
                        line: call.line,
                        callee: merged.block_via,
                        ambiguous,
                    });
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
}

/// A chain walked back to its direct site, ready for a finding.
pub struct Chain {
    /// `helper → inner_helper (×2 defs) → leaf` — the call chain from
    /// the reported call's callee down to the effect.
    pub path: String,
    /// Rendered construct at the end of the chain.
    pub what: String,
    /// File index / line of the direct site.
    pub file: usize,
    pub line: u32,
}

/// Walks `Origin` links from `start` (a callee fn index) down to the
/// direct site of the given effect. `pick` selects which effect to
/// follow (`|e| e.panics.as_ref()`, etc.). Origins are written once
/// and never overwritten, so the walk cannot cycle; the `hops` guard
/// is a belt against future edits.
pub fn chain<'e>(
    graph: &CallGraph,
    effects: &'e [Effects],
    start: usize,
    start_ambiguous: usize,
    pick: impl Fn(&'e Effects) -> Option<&'e Origin>,
) -> Option<Chain> {
    let mut path = String::new();
    let mut current = start;
    let mut ambiguous = start_ambiguous;
    let mut hops = 0usize;
    loop {
        if !path.is_empty() {
            path.push_str(" → ");
        }
        path.push_str(&graph.fns[current].name);
        if ambiguous > 1 {
            path.push_str(&format!(" (×{ambiguous} defs)"));
        }
        match pick(&effects[current])? {
            Origin::Direct { file, line, what } => {
                return Some(Chain {
                    path,
                    what: what.clone(),
                    file: *file,
                    line: *line,
                });
            }
            Origin::Via {
                callee,
                ambiguous: a,
                ..
            } => {
                current = *callee;
                ambiguous = *a;
            }
        }
        hops += 1;
        if hops > graph.fns.len() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ops(src: &str) -> Vec<String> {
        let lexed = lex(src);
        (0..lexed.tokens.len())
            .filter_map(|i| blocking_op(&lexed.tokens, i))
            .collect()
    }

    #[test]
    fn blocking_op_classifies_waits_sleeps_and_zero_arg_join() {
        assert_eq!(ops("self.not_empty.wait(&mut guard);"), vec![".wait(…)"]);
        assert_eq!(ops("thread::sleep(backoff);"), vec!["sleep(…)"]);
        assert_eq!(ops("handle.join();"), vec![".join()"]);
        assert!(
            ops("parts.join(\", \");").is_empty(),
            "join with arguments is the slice/path join, not a thread join"
        );
        assert!(
            ops("while let Ok(ev) = rx.try_recv() {}").is_empty(),
            "try_* variants are non-blocking by contract"
        );
    }

    #[test]
    fn block_match_arm_blocks_but_constructing_the_policy_does_not() {
        assert_eq!(
            ops("match policy { Block { timeout } => enqueue(timeout), _ => {} }"),
            vec!["Block { .. } enqueue arm"]
        );
        assert!(ops("let policy = Block { timeout };").is_empty());
    }
}
