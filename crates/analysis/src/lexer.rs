//! A lightweight Rust lexer — just enough token structure for the
//! invariant rules in [`crate::rules`].
//!
//! The scanner understands the lexical shapes that would otherwise
//! produce false matches in a text grep: line and block comments
//! (captured, with line numbers — they carry the lint directives),
//! string / raw-string / byte-string / char literals (skipped, so an
//! `"unwrap()"` inside a fixture string is invisible to the rules),
//! lifetimes vs char literals, and numbers. Everything else becomes an
//! identifier or single-character punctuation token tagged with its
//! line and the brace depth it sits at.
//!
//! It deliberately does **not** parse: no expressions, no items, no
//! macro expansion. The rules work on token patterns plus the brace
//! depth, which is exactly the level of ambition a repo-local lint can
//! keep sound.

/// What a token is; contents are kept only where a rule needs them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident(String),
    /// One punctuation character (`.`, `(`, `!`, …).
    Punct(char),
    /// String/char/number literal (contents irrelevant to the rules).
    Literal,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    /// 1-based source line.
    pub line: u32,
    /// Brace depth *before* this token (`{` itself sits at the outer
    /// depth; the matching `}` at the inner one minus the pop).
    pub depth: u32,
}

impl Tok {
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(name) => Some(name),
            _ => None,
        }
    }

    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokKind::Punct(ch)
    }
}

/// One comment (line or block), with its text and starting line —
/// directives and `SAFETY:` annotations live here.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text without the `//` / `/*` framing.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// The lexed view of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Tok>,
    pub comments: Vec<Comment>,
}

/// Lexes `source`; never fails — unterminated constructs simply run to
/// end of input (the compiler is the authority on well-formedness; the
/// lint only needs to stay in sync on the happy path).
pub fn lex(source: &str) -> Lexed {
    Lexer {
        chars: source.chars().collect(),
        at: 0,
        line: 1,
        depth: 0,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    at: usize,
    line: u32,
    depth: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.at + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let ch = self.peek(0)?;
        self.at += 1;
        if ch == '\n' {
            self.line += 1;
        }
        Some(ch)
    }

    fn run(mut self) -> Lexed {
        while let Some(ch) = self.peek(0) {
            match ch {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(),
                '\'' => self.char_or_lifetime(),
                c if c.is_ascii_digit() => self.number(),
                c if c == '_' || c.is_alphabetic() => self.ident(),
                c => {
                    let line = self.line;
                    let depth = self.depth;
                    self.bump();
                    if c == '{' {
                        self.depth += 1;
                    } else if c == '}' {
                        self.depth = self.depth.saturating_sub(1);
                    }
                    self.push(TokKind::Punct(c), line, depth);
                }
            }
        }
        self.out
    }

    fn push(&mut self, kind: TokKind, line: u32, depth: u32) {
        self.out.tokens.push(Tok { kind, line, depth });
    }

    fn line_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump(); // the `//`
                     // Doc commments (`///`, `//!`) are comments too.
        let mut text = String::new();
        while let Some(ch) = self.peek(0) {
            if ch == '\n' {
                break;
            }
            text.push(ch);
            self.bump();
        }
        self.out.comments.push(Comment { text, line });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump(); // the `/*`
        let mut text = String::new();
        let mut nesting = 1u32;
        while let Some(ch) = self.peek(0) {
            if ch == '/' && self.peek(1) == Some('*') {
                nesting += 1;
                self.bump();
                self.bump();
                text.push_str("/*");
            } else if ch == '*' && self.peek(1) == Some('/') {
                nesting -= 1;
                self.bump();
                self.bump();
                if nesting == 0 {
                    break;
                }
                text.push_str("*/");
            } else {
                text.push(ch);
                self.bump();
            }
        }
        self.out.comments.push(Comment { text, line });
    }

    /// A plain `"…"` string (escapes honoured); the opening quote is
    /// current.
    fn string(&mut self) {
        let line = self.line;
        let depth = self.depth;
        self.bump();
        while let Some(ch) = self.bump() {
            match ch {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokKind::Literal, line, depth);
    }

    /// A `r"…"` / `r#"…"#` raw string; `self.at` is on the `r` (or the
    /// `b` of `br`), already consumed by the caller — here the position
    /// is on the first `#` or `"`.
    fn raw_string(&mut self, line: u32, depth: u32) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        'scan: while let Some(ch) = self.bump() {
            if ch == '"' {
                for ahead in 0..hashes {
                    if self.peek(ahead) != Some('#') {
                        continue 'scan;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push(TokKind::Literal, line, depth);
    }

    /// `'c'` (char literal) vs `'label` / `'lifetime`.
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        let depth = self.depth;
        // A char literal closes with `'` after one (possibly escaped)
        // char; a lifetime never has a closing quote.
        let is_char = match self.peek(1) {
            Some('\\') => true,
            Some(_) => self.peek(2) == Some('\''),
            None => false,
        };
        self.bump(); // the `'`
        if is_char {
            while let Some(ch) = self.bump() {
                match ch {
                    '\\' => {
                        self.bump();
                    }
                    '\'' => break,
                    _ => {}
                }
            }
            self.push(TokKind::Literal, line, depth);
        } else {
            // Lifetime or loop label: consume the identifier, emit
            // nothing (no rule cares).
            while let Some(ch) = self.peek(0) {
                if ch == '_' || ch.is_alphanumeric() {
                    self.bump();
                } else {
                    break;
                }
            }
        }
    }

    fn number(&mut self) {
        let line = self.line;
        let depth = self.depth;
        let mut text = String::new();
        while let Some(ch) = self.peek(0) {
            // Good enough for ints, floats, suffixes and hex/oct/bin;
            // `1.0e-3` loses its `-` (two tokens) which no rule minds.
            if ch == '_' || ch == '.' || ch.is_alphanumeric() {
                // A method call on a literal (`0..n`, `1.max(x)`) must
                // not swallow the dots: stop at `..` and at `.ident`.
                if ch == '.' {
                    match self.peek(1) {
                        Some(next) if next.is_ascii_digit() => {}
                        _ => break,
                    }
                }
                text.push(ch);
                self.bump();
            } else {
                break;
            }
        }
        // Numeric index literals matter to the shard-order rule, so
        // numbers keep their text as identifiers would.
        self.push(TokKind::Ident(text), line, depth);
    }

    fn ident(&mut self) {
        let line = self.line;
        let depth = self.depth;
        let mut name = String::new();
        while let Some(ch) = self.peek(0) {
            if ch == '_' || ch.is_alphanumeric() {
                name.push(ch);
                self.bump();
            } else {
                break;
            }
        }
        // Raw/byte string prefixes: `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
        if matches!(name.as_str(), "r" | "b" | "br" | "rb")
            && matches!(self.peek(0), Some('"') | Some('#'))
        {
            // Only a prefix when a quote actually follows the hashes.
            let mut ahead = 0usize;
            while self.peek(ahead) == Some('#') {
                ahead += 1;
            }
            if self.peek(ahead) == Some('"') {
                self.raw_string(line, depth);
                return;
            }
        }
        self.push(TokKind::Ident(name), line, depth);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_owned))
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"
            let a = "x.unwrap()"; // tail .unwrap() note
            let b = r#"also .expect("hidden")"#;
            /* block .lock() */
            call();
        "##;
        let names = idents(src);
        assert!(!names.contains(&"unwrap".to_owned()));
        assert!(!names.contains(&"expect".to_owned()));
        assert!(names.contains(&"call".to_owned()));
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("unwrap"));
        assert!(lexed.comments[1].text.contains(".lock()"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let c = '\\''; let d = 'x'; loop { break; } }";
        let lexed = lex(src);
        // No stray quote-confusion: the fn body still lexes and the
        // two char literals appear.
        let lits = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .count();
        assert_eq!(lits, 2);
        assert!(idents(src).contains(&"loop".to_owned()));
    }

    #[test]
    fn depth_tracks_braces() {
        let lexed = lex("a { b { c } d } e");
        let depth_of = |name: &str| {
            lexed
                .tokens
                .iter()
                .find(|t| t.ident() == Some(name))
                .unwrap()
                .depth
        };
        assert_eq!(depth_of("a"), 0);
        assert_eq!(depth_of("b"), 1);
        assert_eq!(depth_of("c"), 2);
        assert_eq!(depth_of("d"), 1);
        assert_eq!(depth_of("e"), 0);
    }

    #[test]
    fn numbers_stop_at_method_dots_and_ranges() {
        let names = idents("for i in 0..n { 1.max(x); 2.5f64; }");
        assert!(names.contains(&"0".to_owned()));
        assert!(names.contains(&"1".to_owned()));
        assert!(names.contains(&"max".to_owned()));
        assert!(names.contains(&"2.5f64".to_owned()));
    }

    #[test]
    fn lines_are_one_based_and_advance() {
        let lexed = lex("a\nb\n\nc");
        let lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }
}
