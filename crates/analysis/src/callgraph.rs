//! The parser layer over [`crate::lexer`]: function items and call
//! sites, assembled into a workspace-wide call graph.
//!
//! Still deliberately not a full parser — the lexer's token stream
//! plus brace depths carry enough structure to recognise `fn NAME`
//! items, bracket their bodies, and pick out `name(…)` / `.name(…)`
//! call shapes. That is what the interprocedural rules in
//! [`crate::rules`] need: *which function's body am I in, and which
//! functions does it call*.
//!
//! ## Resolution policy (explicit, and reported in findings)
//!
//! Calls resolve **by name** against every `fn` item in the workspace,
//! with three carve-outs:
//!
//! - Sources under `crates/shims/` never *define* resolution targets:
//!   the shims are API stand-ins for external crates, and their
//!   internals (a condvar inside a `RwLock` shim, say) are modelled by
//!   the rules' primitive vocabulary, not traced.
//! - [`PRIMITIVE_CALLS`] — lock acquisition, condvar waits, channel
//!   receives, `unwrap`/`expect` and friends — are likewise primitives:
//!   the direct token-pattern rules understand them natively, so a
//!   workspace `fn wait` or `fn lock` never hijacks them.
//! - [`STD_CONTAINER_CALLS`] — `resize`, `push` and the other std
//!   container mutators. The overwhelming majority of `.push(…)` /
//!   `.resize(…)` shapes in this workspace are `Vec` operations; a
//!   same-named workspace `fn` (the broker's shard-count `resize`,
//!   say) would otherwise inherit *every* such call site and spray its
//!   maintenance-path effects across the hot path.
//!
//! When one name has **several** definitions, the call is ambiguous.
//! The policy: an ambiguous call propagates only the effects **common
//! to every candidate**, and any finding whose chain crosses the
//! ambiguity says so (`name (×N defs)`). A unique name propagates its
//! definition's full summary. This trades a little recall at ambiguous
//! names for not drowning the report in `get`/`len`-style collisions —
//! and the trade is printed, never silent.

use std::collections::HashMap;

use crate::lexer::{Lexed, Tok, TokKind};

/// Method/function names the call graph refuses to resolve: they are
/// the rules' *primitive* vocabulary (lock acquisition, blocking
/// operations, panic constructs), matched as token patterns where they
/// occur. Resolving them against same-named workspace `fn`s would
/// double-count at best and misattribute at worst.
pub const PRIMITIVE_CALLS: &[&str] = &[
    "read",
    "write",
    "lock",
    "try_read",
    "try_write",
    "try_lock",
    "wait",
    "wait_for",
    "wait_while",
    "wait_timeout",
    "wait_timeout_while",
    "wait_each",
    "recv",
    "recv_timeout",
    "recv_deadline",
    "try_recv",
    "join",
    "sleep",
    "send",
    "unwrap",
    "expect",
    "clone",
    "drop",
];

/// Std container/slice mutator names the call graph refuses to
/// resolve: nearly every such call shape is a `Vec`/`VecDeque`/map
/// operation, so a coincidentally same-named workspace `fn` would
/// inherit thousands of unrelated call sites. Names with *many*
/// workspace definitions (`get`, `len`, `insert`, …) stay resolvable —
/// the ambiguity intersection already defuses them; this list is for
/// the dangerous low-definition-count collisions.
pub const STD_CONTAINER_CALLS: &[&str] = &[
    "resize", "push", "pop", "extend", "reserve", "truncate", "retain",
];

/// Keywords that look like `name(` call shapes but are control flow.
const NON_CALL_KEYWORDS: &[&str] = &["if", "while", "for", "match", "return", "loop", "fn"];

/// One `fn` item: where it is and which tokens form its body.
#[derive(Debug)]
pub struct FnItem {
    pub name: String,
    /// Index into the workspace file list.
    pub file: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index of the body's `{`.
    pub open: usize,
    /// Token index of the matching `}`.
    pub close: usize,
    /// Token ranges (inclusive) of `fn` items nested inside this body —
    /// skipped when walking it, so a nested helper's effects are its
    /// own, not its textual parent's. Closure bodies are *not* skipped:
    /// a closure belongs to the function that wrote it.
    pub skips: Vec<(usize, usize)>,
}

impl FnItem {
    /// Does token index `i` belong to this body proper (inside the
    /// braces, outside any nested `fn`)?
    pub fn owns(&self, i: usize) -> bool {
        i > self.open && i < self.close && !self.skips.iter().any(|&(s, e)| i >= s && i <= e)
    }
}

/// One `name(…)` / `.name(…)` call shape inside a function body.
#[derive(Debug)]
pub struct CallSite {
    /// Index into [`CallGraph::fns`] of the enclosing function.
    pub caller: usize,
    /// Index into the workspace file list (same as the caller's).
    pub file: usize,
    /// 1-based line of the callee name.
    pub line: u32,
    /// Token index of the callee name.
    pub tok: usize,
    pub callee: String,
}

/// The workspace call graph: every `fn` item, every call site, and the
/// name-resolution table.
#[derive(Debug, Default)]
pub struct CallGraph {
    pub fns: Vec<FnItem>,
    pub calls: Vec<CallSite>,
    /// Per-function indexes into [`CallGraph::calls`].
    pub calls_of: Vec<Vec<usize>>,
    /// Resolution table: name → definitions (shims and primitives
    /// excluded). Sorted by (file, line) so ambiguity is deterministic.
    by_name: HashMap<String, Vec<usize>>,
}

impl CallGraph {
    /// The definitions a call to `name` resolves to; empty for
    /// externals and primitives.
    pub fn resolve(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map_or(&[], Vec::as_slice)
    }
}

/// Is this file a dependency shim (API stand-in, not traced)?
fn is_shim(label: &str) -> bool {
    label.starts_with("crates/shims/") || label.contains("/crates/shims/")
}

/// Builds the call graph over the lexed workspace. `files` pairs each
/// file's label with its token stream; indexes into it are the `file`
/// fields everywhere else.
pub fn build(files: &[(&str, &Lexed)]) -> CallGraph {
    let mut graph = CallGraph::default();
    for (file_idx, (_, lexed)) in files.iter().enumerate() {
        collect_fns(file_idx, lexed, &mut graph.fns);
    }
    // Nested-fn skip ranges: a body strictly inside another body (same
    // file) is carved out of the outer walk.
    let spans: Vec<(usize, usize, usize)> = graph
        .fns
        .iter()
        .map(|f| (f.file, f.open, f.close))
        .collect();
    for f in &mut graph.fns {
        f.skips = spans
            .iter()
            .filter(|&&(file, open, close)| file == f.file && open > f.open && close < f.close)
            .map(|&(_, open, close)| (open, close))
            .collect();
    }
    for (fn_idx, item) in graph.fns.iter().enumerate() {
        if !is_shim(files[item.file].0)
            && !PRIMITIVE_CALLS.contains(&item.name.as_str())
            && !STD_CONTAINER_CALLS.contains(&item.name.as_str())
        {
            graph
                .by_name
                .entry(item.name.clone())
                .or_default()
                .push(fn_idx);
        }
    }
    // Call sites, attributed to the innermost enclosing fn via `owns`.
    graph.calls_of = vec![Vec::new(); graph.fns.len()];
    for (fn_idx, item) in graph.fns.iter().enumerate() {
        let toks = &files[item.file].1.tokens;
        for i in (item.open + 1)..item.close {
            if !item.owns(i) {
                continue;
            }
            let Some(callee) = call_shape(toks, i) else {
                continue;
            };
            graph.calls_of[fn_idx].push(graph.calls.len());
            graph.calls.push(CallSite {
                caller: fn_idx,
                file: item.file,
                line: toks[i].line,
                tok: i,
                callee: callee.to_owned(),
            });
        }
    }
    graph
}

/// The callee name if token `i` is a call shape: ident directly
/// followed by `(`, not a definition (`fn name(`), not a macro
/// (`name!(`), not a keyword, not a numeric "ident".
fn call_shape(toks: &[Tok], i: usize) -> Option<&str> {
    let name = toks[i].ident()?;
    if name.starts_with(|c: char| c.is_ascii_digit()) {
        return None;
    }
    if NON_CALL_KEYWORDS.contains(&name) {
        return None;
    }
    if toks.get(i + 1).is_none_or(|t| !t.is_punct('(')) {
        return None;
    }
    if i > 0 && toks[i - 1].ident() == Some("fn") {
        return None;
    }
    Some(name)
}

/// Scans one file's tokens for `fn NAME … { … }` items.
fn collect_fns(file: usize, lexed: &Lexed, out: &mut Vec<FnItem>) {
    let toks = &lexed.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].ident() != Some("fn") {
            i += 1;
            continue;
        }
        let Some(name) = toks.get(i + 1).and_then(Tok::ident) else {
            i += 1; // `fn(` pointer type or malformed
            continue;
        };
        let fn_depth = toks[i].depth;
        // The body `{` is the first brace back at the fn's own depth;
        // a `;` there instead means a bodyless declaration.
        let mut j = i + 2;
        let mut open = None;
        while let Some(tok) = toks.get(j) {
            if tok.depth < fn_depth {
                break; // enclosing block closed: no body
            }
            if tok.depth == fn_depth {
                match tok.kind {
                    TokKind::Punct('{') => {
                        open = Some(j);
                        break;
                    }
                    TokKind::Punct(';') => break,
                    _ => {}
                }
            }
            j += 1;
        }
        let Some(open) = open else {
            i += 2;
            continue;
        };
        // Matching `}`: first close brace that returns to fn depth.
        let mut close = None;
        let mut k = open + 1;
        while let Some(tok) = toks.get(k) {
            if tok.kind == TokKind::Punct('}') && tok.depth == fn_depth + 1 {
                close = Some(k);
                break;
            }
            k += 1;
        }
        let Some(close) = close else {
            break; // unterminated body runs to EOF; nothing to bracket
        };
        out.push(FnItem {
            name: name.to_owned(),
            file,
            line: toks[i].line,
            open,
            close,
            skips: Vec::new(),
        });
        // Continue *inside* the body: nested fns are items too.
        i = open + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn graph_of(sources: &[(&str, &str)]) -> (CallGraph, Vec<Lexed>) {
        let lexed: Vec<Lexed> = sources.iter().map(|(_, s)| lex(s)).collect();
        let files: Vec<(&str, &Lexed)> = sources
            .iter()
            .zip(&lexed)
            .map(|((label, _), l)| (*label, l))
            .collect();
        (build(&files), lexed)
    }

    #[test]
    fn fns_and_calls_are_found_and_attributed() {
        let src = "
            fn outer(&self) {
                helper(1);
                fn nested() { inner_only(); }
                self.method_call(2);
            }
            fn helper(x: u32) {}
        ";
        let (graph, _) = graph_of(&[("a.rs", src)]);
        let names: Vec<&str> = graph.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "nested", "helper"]);
        let outer_calls: Vec<&str> = graph.calls_of[0]
            .iter()
            .map(|&c| graph.calls[c].callee.as_str())
            .collect();
        assert_eq!(outer_calls, vec!["helper", "method_call"]);
        let nested_calls: Vec<&str> = graph.calls_of[1]
            .iter()
            .map(|&c| graph.calls[c].callee.as_str())
            .collect();
        assert_eq!(nested_calls, vec!["inner_only"]);
    }

    #[test]
    fn resolution_skips_shims_primitives_and_keywords() {
        let (graph, _) = graph_of(&[
            ("crates/shims/fake/src/lib.rs", "fn helper() {}"),
            ("crates/x/src/lib.rs", "fn wait() {} fn real_helper() {}"),
        ]);
        assert!(
            graph.resolve("helper").is_empty(),
            "shim fns do not resolve"
        );
        assert!(
            graph.resolve("wait").is_empty(),
            "primitives do not resolve"
        );
        assert_eq!(graph.resolve("real_helper").len(), 1);
    }

    #[test]
    fn macros_declarations_and_fn_pointers_are_not_calls() {
        let src = "
            fn f(cb: fn(u32) -> u32) {
                println!(\"not a call site\");
                if cond(1) { g(); }
            }
            fn g();
        ";
        let (graph, _) = graph_of(&[("a.rs", src)]);
        assert_eq!(graph.fns.len(), 1, "bodyless fn g(); declares nothing");
        let calls: Vec<&str> = graph.calls_of[0]
            .iter()
            .map(|&c| graph.calls[c].callee.as_str())
            .collect();
        assert_eq!(calls, vec!["cond", "g"]);
    }

    #[test]
    fn ambiguous_names_resolve_to_every_definition() {
        let (graph, _) = graph_of(&[
            ("a.rs", "fn twice() { one(); }"),
            ("b.rs", "fn twice() { two(); }"),
        ]);
        assert_eq!(graph.resolve("twice").len(), 2);
    }
}
