//! The invariant rules, run over the token/comment stream from
//! [`crate::lexer`] — intraprocedurally per file, and
//! interprocedurally over the workspace call graph built by
//! [`crate::callgraph`] with the effect summaries of
//! [`crate::summary`].
//!
//! Regions are declared in comments (see the README's *Invariants &
//! analysis* section for the user-facing catalogue):
//!
//! - `// lint: hot-path` … `// lint: end-hot-path` — the enclosed code
//!   runs on the publish fast path: the `hot-path-locking`,
//!   `panic-policy` and `scratch-hygiene` rules apply — including
//!   **through calls**: a helper (anywhere in the workspace) that
//!   transitively acquires a broker-global lock or panics is reported
//!   at the hot-path call site, with the full call chain.
//! - `// lint: lock-order` … `// lint: end-lock-order` — the enclosed
//!   code holds several engine locks at once: the `lock-order` rule
//!   applies (ascending shard indexes, directory innermost).
//! - `// lint: allow(rule, reason = "…")` — suppress `rule` over the
//!   **whole statement** that follows (to the terminating `;`, or the
//!   close of a brace block at the statement's own depth). A missing
//!   or empty reason is itself a finding (`lint-hygiene`). An allow at
//!   an effect's source — or at a call site — also stops that effect
//!   from propagating to callers: one written justification covers the
//!   chain above it.
//!
//! Rules that need no region:
//!
//! - `safety-comment` — every `unsafe` block needs a `SAFETY:` comment
//!   within the three preceding lines.
//! - `blocking-while-locked` — no blocking operation (condvar wait,
//!   channel receive, zero-arg `.join()`, `sleep`, or a call that
//!   transitively reaches one) while a **named** lock guard (a
//!   [`GLOBAL_LOCKS`] field or a per-shard/per-queue `state`) is live.
//!   A condvar wait that *takes the guard as an argument* releases it
//!   for the sleep and is exempt.
//! - `atomic-ordering` — every `Ordering::Relaxed` outside the
//!   allow-listed lock-free counter cells
//!   ([`RELAXED_COUNTER_CELLS`]) needs a `// ordering:` justification
//!   comment within the three preceding lines.

use crate::callgraph::{self, CallGraph};
use crate::lexer::{lex, Comment, Lexed, Tok, TokKind};
use crate::summary::{
    self, blocking_op, chain, is_method_call, merge_candidates, method_receiver, Effects,
};

/// Broker-global lock *field* names: acquiring any of these inside a
/// hot-path region — directly or through any call chain — is a
/// finding. `shard` states are per-shard and fine; `senders` reads
/// during delivery carry an explicit allow. The names are the
/// `boolmatch_core::lock_classes` vocabulary plus the unclassed
/// broker-global mutexes; the drift-guard test in
/// `crates/analysis/tests/drift.rs` keeps the two in sync.
pub const GLOBAL_LOCKS: &[&str] = &[
    "directory",
    "maintenance",
    "senders",
    "shard_set",
    "freq_baseline",
    "rebalancer",
    "delivery_maintenance",
];

/// Lock classes that are *leaves by discipline*, not broker-global
/// locks: hot paths may touch them (`pool` slots are `try_lock`-only;
/// per-shard `state` and per-queue locks are per-instance). Listed so
/// the drift-guard test can prove every `lock_classes` name is either
/// banned ([`GLOBAL_LOCKS`]) or deliberately exempt — never silently
/// unknown to the lint.
pub const LEAF_LOCKS: &[&str] = &["pool"];

/// Field names whose guards the `blocking-while-locked` rule tracks in
/// addition to [`GLOBAL_LOCKS`]: the per-shard / per-delivery-queue
/// `state` locks. Blocking while one is live stalls every publisher
/// that routes through that shard or queue.
pub const SHARD_GUARD_FIELDS: &[&str] = &["state"];

/// Panicking constructs disallowed in hot-path regions. `assert!` /
/// `debug_assert!` stay legal: they state invariants, and the policy
/// targets *recoverable-error-turned-abort* sites, not invariant
/// checks.
pub const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
pub const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Monotonic statistics counters that may use `Ordering::Relaxed`
/// without a justification comment: they are single-writer-per-event
/// fetch-adds and racy-read loads whose only consumer is reporting —
/// no control flow or data is published through them. Everything else
/// relaxed needs a `// ordering:` comment saying why.
pub const RELAXED_COUNTER_CELLS: &[&str] = &[
    // Per-shard match/prune tallies (`ShardCell`).
    "hits",
    "pruned",
    // Per-queue delivery tallies (`NotifyQueue`).
    "enqueued",
    "dropped",
    // Broker-wide `BrokerStats` cells.
    "events_published",
    "notifications_delivered",
    "notifications_dropped",
    "notifications_disconnected",
    "subscriptions_created",
    "subscriptions_removed",
    "subscriptions_migrated",
    "fanout_worker_failures",
    "subscribers_quarantined",
    "quarantine_recoveries",
    "consumer_panics",
];

/// Atomic operations whose trailing `Ordering` argument the
/// `atomic-ordering` rule attributes backwards to a receiver.
const ATOMIC_OPS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Every rule the lint knows, as stable machine-readable names.
pub const RULES: &[&str] = &[
    "hot-path-locking",
    "lock-order",
    "scratch-hygiene",
    "panic-policy",
    "safety-comment",
    "blocking-while-locked",
    "atomic-ordering",
    "lint-hygiene",
];

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Path label the caller supplied (repo-relative in the CLI).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name, one of [`RULES`].
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

/// A parsed `// lint: …` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Directive {
    HotPath,
    EndHotPath,
    LockOrder,
    EndLockOrder,
    Allow {
        rule: String,
        reason: Option<String>,
    },
    /// `lint:` prefix present but unparseable — reported, never ignored
    /// silently.
    Malformed(String),
}

fn parse_directive(text: &str) -> Option<Directive> {
    // Comment text arrives without `//`; doc-comment markers and
    // leading whitespace are framing.
    let body = text.trim_start_matches(['/', '!']).trim_start();
    let rest = body.strip_prefix("lint:")?.trim_start();
    let word_end = rest
        .find(|c: char| !(c.is_alphanumeric() || c == '-' || c == '_'))
        .unwrap_or(rest.len());
    let (word, tail) = rest.split_at(word_end);
    match word {
        "hot-path" => Some(Directive::HotPath),
        "end-hot-path" => Some(Directive::EndHotPath),
        "lock-order" => Some(Directive::LockOrder),
        "end-lock-order" => Some(Directive::EndLockOrder),
        "allow" => Some(parse_allow(tail.trim_start())),
        other => Some(Directive::Malformed(format!(
            "unknown lint directive `{other}`"
        ))),
    }
}

/// Parses the `(rule, reason = "…")` tail of an allow directive.
fn parse_allow(tail: &str) -> Directive {
    let Some(inner) = tail.strip_prefix('(') else {
        return Directive::Malformed("allow needs `(rule, reason = \"…\")`".into());
    };
    let Some(close) = inner.rfind(')') else {
        return Directive::Malformed("allow is missing its closing `)`".into());
    };
    let inner = &inner[..close];
    let (rule, rest) = match inner.find(',') {
        Some(comma) => (inner[..comma].trim(), inner[comma + 1..].trim()),
        None => (inner.trim(), ""),
    };
    let reason = rest
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('='))
        .map(str::trim)
        .and_then(|r| r.strip_prefix('"'))
        .and_then(|r| r.strip_suffix('"'))
        .map(str::to_owned);
    Directive::Allow {
        rule: rule.to_owned(),
        reason,
    }
}

/// An inclusive line range a region (or an allow's statement) covers.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Region {
    pub(crate) start: u32,
    pub(crate) end: u32,
}

impl Region {
    pub(crate) fn contains(&self, line: u32) -> bool {
        self.start <= line && line <= self.end
    }
}

/// Everything the rules need about one file, precomputed.
pub(crate) struct FileView<'a> {
    pub(crate) file: &'a str,
    pub(crate) lexed: &'a Lexed,
    pub(crate) hot: Vec<Region>,
    lock_order: Vec<Region>,
    /// `(rule, statement-range-it-covers)` per well-formed allow.
    allows: Vec<(String, Region)>,
    pub(crate) findings: Vec<Finding>,
}

impl<'a> FileView<'a> {
    pub(crate) fn new(file: &'a str, lexed: &'a Lexed) -> Self {
        let last_line = lexed
            .tokens
            .last()
            .map_or(1, |t| t.line)
            .max(lexed.comments.last().map_or(1, |c| c.line));
        let mut view = FileView {
            file,
            lexed,
            hot: Vec::new(),
            lock_order: Vec::new(),
            allows: Vec::new(),
            findings: Vec::new(),
        };
        view.collect_directives(last_line);
        view
    }

    pub(crate) fn report(&mut self, line: u32, rule: &'static str, message: String) {
        // `lint-hygiene` findings are never suppressible — an allow
        // that allowed itself would be unfalsifiable.
        if rule != "lint-hygiene" && self.is_allowed(rule, line) {
            return;
        }
        self.findings.push(Finding {
            file: self.file.to_owned(),
            line,
            rule,
            message,
        });
    }

    pub(crate) fn is_allowed(&self, rule: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|(r, range)| r == rule && range.contains(line))
    }

    /// The line range an allow on `line` suppresses: the allow's own
    /// line through the end of the statement that follows — the first
    /// `;` at the statement's brace depth, or the close of a brace
    /// block opened at that depth (an `if`/`match`/loop statement, or
    /// a whole item), whichever comes first. `else` branches and
    /// `.`/`?` continuations keep the statement open.
    fn allow_cover(&self, line: u32) -> Region {
        let toks = &self.lexed.tokens;
        let Some(first) = toks.iter().position(|t| t.line >= line) else {
            return Region {
                start: line,
                end: line,
            };
        };
        let stmt_depth = toks[first].depth;
        let mut j = first;
        while let Some(tok) = toks.get(j) {
            if tok.depth < stmt_depth {
                // The enclosing block closed before any terminator: the
                // statement ended on the previous token's line.
                let end = if j > first { toks[j - 1].line } else { line };
                return Region { start: line, end };
            }
            match tok.kind {
                TokKind::Punct(';') if tok.depth == stmt_depth => {
                    return Region {
                        start: line,
                        end: tok.line,
                    };
                }
                // A brace block opened at the statement's own depth
                // just closed (its `}` sits one level in). Unless the
                // statement visibly continues, it ends here.
                TokKind::Punct('}') if tok.depth == stmt_depth + 1 => match toks.get(j + 1) {
                    Some(next)
                        if next.ident() == Some("else")
                            || next.is_punct('.')
                            || next.is_punct('?') => {}
                    Some(next) if next.is_punct(';') => {
                        return Region {
                            start: line,
                            end: next.line,
                        };
                    }
                    _ => {
                        return Region {
                            start: line,
                            end: tok.line,
                        };
                    }
                },
                _ => {}
            }
            j += 1;
        }
        let end = toks.last().map_or(line, |t| t.line);
        Region { start: line, end }
    }

    fn collect_directives(&mut self, last_line: u32) {
        let mut open_hot: Option<u32> = None;
        let mut open_lock: Option<u32> = None;
        for Comment { text, line } in &self.lexed.comments {
            let Some(directive) = parse_directive(text) else {
                continue;
            };
            let line = *line;
            match directive {
                Directive::HotPath => {
                    if open_hot.is_some() {
                        self.report(
                            line,
                            "lint-hygiene",
                            "`lint: hot-path` while a hot-path region is already open".into(),
                        );
                    } else {
                        open_hot = Some(line);
                    }
                }
                Directive::EndHotPath => match open_hot.take() {
                    Some(start) => self.hot.push(Region { start, end: line }),
                    None => self.report(
                        line,
                        "lint-hygiene",
                        "`lint: end-hot-path` without an open hot-path region".into(),
                    ),
                },
                Directive::LockOrder => {
                    if open_lock.is_some() {
                        self.report(
                            line,
                            "lint-hygiene",
                            "`lint: lock-order` while a lock-order region is already open".into(),
                        );
                    } else {
                        open_lock = Some(line);
                    }
                }
                Directive::EndLockOrder => match open_lock.take() {
                    Some(start) => self.lock_order.push(Region { start, end: line }),
                    None => self.report(
                        line,
                        "lint-hygiene",
                        "`lint: end-lock-order` without an open lock-order region".into(),
                    ),
                },
                Directive::Allow { rule, reason } => {
                    if !RULES.contains(&rule.as_str()) {
                        self.report(
                            line,
                            "lint-hygiene",
                            format!("allow names unknown rule `{rule}`"),
                        );
                        continue;
                    }
                    match reason.as_deref() {
                        Some(r) if !r.trim().is_empty() => {
                            let covers = self.allow_cover(line);
                            self.allows.push((rule, covers));
                        }
                        _ => self.report(
                            line,
                            "lint-hygiene",
                            format!(
                                "allow({rule}) needs a non-empty `reason = \"…\"` — \
                                 suppressions must say why"
                            ),
                        ),
                    }
                }
                Directive::Malformed(msg) => self.report(line, "lint-hygiene", msg),
            }
        }
        if let Some(start) = open_hot {
            self.report(
                start,
                "lint-hygiene",
                "hot-path region is never closed (`lint: end-hot-path` missing)".into(),
            );
            self.hot.push(Region {
                start,
                end: last_line,
            });
        }
        if let Some(start) = open_lock {
            self.report(
                start,
                "lint-hygiene",
                "lock-order region is never closed (`lint: end-lock-order` missing)".into(),
            );
            self.lock_order.push(Region {
                start,
                end: last_line,
            });
        }
    }

    pub(crate) fn in_hot(&self, line: u32) -> bool {
        self.hot.iter().any(|r| r.contains(line))
    }

    fn in_lock_order(&self, line: u32) -> bool {
        self.lock_order.iter().any(|r| r.contains(line))
    }
}

/// Lints one file's source; `file` is only a label for findings. The
/// interprocedural pass still runs — over this file's own call graph.
pub fn lint_source(file: &str, source: &str) -> Vec<Finding> {
    lint_files(&[(file.to_owned(), source.to_owned())])
}

/// Lints a set of sources as one workspace: per-file rules plus the
/// interprocedural pass over the cross-file call graph.
pub fn lint_files(files: &[(String, String)]) -> Vec<Finding> {
    let lexed: Vec<Lexed> = files.iter().map(|(_, source)| lex(source)).collect();
    let mut views: Vec<FileView> = files
        .iter()
        .zip(&lexed)
        .map(|((label, _), lx)| FileView::new(label, lx))
        .collect();
    for view in &mut views {
        check_hot_path_locking(view);
        check_panic_policy(view);
        check_scratch_hygiene(view);
        check_lock_order(view);
        check_safety_comments(view);
        check_atomic_ordering(view);
    }

    // Interprocedural pass: call graph, then effect summaries to a
    // fixpoint, then the transitive checks.
    let file_refs: Vec<(&str, &Lexed)> = files
        .iter()
        .zip(&lexed)
        .map(|((label, _), lx)| (label.as_str(), lx))
        .collect();
    let graph = callgraph::build(&file_refs);
    let effects = {
        let allowed =
            |file: usize, rule: &str, line: u32| -> bool { views[file].is_allowed(rule, line) };
        let mut effects = summary::direct_effects(&file_refs, &graph, &allowed);
        summary::propagate(&graph, &mut effects, &allowed);
        effects
    };
    let hot_by_file: Vec<Vec<Region>> = views.iter().map(|v| v.hot.clone()).collect();
    let labels: Vec<&str> = files.iter().map(|(label, _)| label.as_str()).collect();
    for (file_idx, view) in views.iter_mut().enumerate() {
        check_transitive_hot_path(view, file_idx, &graph, &effects, &hot_by_file, &labels);
        check_blocking_while_locked(view, file_idx, &graph, &effects, &labels);
    }

    let mut findings: Vec<Finding> = views.into_iter().flat_map(|v| v.findings).collect();
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
    findings.dedup();
    findings
}

/// No broker-global lock may be acquired inside a hot-path region.
fn check_hot_path_locking(view: &mut FileView<'_>) {
    let toks = &view.lexed.tokens;
    for (i, tok) in toks.iter().enumerate() {
        let Some(method) = tok.ident() else { continue };
        if !matches!(method, "read" | "write" | "lock") || !view.in_hot(tok.line) {
            continue;
        }
        if let Some(receiver) = method_receiver(toks, i) {
            if GLOBAL_LOCKS.contains(&receiver) {
                let line = tok.line;
                view.report(
                    line,
                    "hot-path-locking",
                    format!(
                        "`{receiver}.{method}()` acquires the broker-global `{receiver}` \
                         lock inside a hot-path region; the publish fast path must stay \
                         off every global lock (use try_* / per-shard state, or justify \
                         with an allow)"
                    ),
                );
            }
        }
    }
}

/// No `unwrap`/`expect`/`panic!`-family construct in a hot-path region
/// without an allow carrying a reason.
fn check_panic_policy(view: &mut FileView<'_>) {
    let toks = &view.lexed.tokens;
    for (i, tok) in toks.iter().enumerate() {
        let Some(name) = tok.ident() else { continue };
        if !view.in_hot(tok.line) {
            continue;
        }
        let line = tok.line;
        if PANIC_METHODS.contains(&name) && is_method_call(toks, i) {
            view.report(
                line,
                "panic-policy",
                format!(
                    "`.{name}()` on the hot path can abort a publish; return the error, \
                     handle the None, or add `lint: allow(panic-policy, reason = …)` \
                     naming the invariant that makes it unreachable"
                ),
            );
        } else if PANIC_MACROS.contains(&name) && toks.get(i + 1).is_some_and(|t| t.is_punct('!')) {
            view.report(
                line,
                "panic-policy",
                format!("`{name}!` on the hot path; same policy as unwrap/expect"),
            );
        }
    }
}

/// In hot-path regions a zero-argument `.reset()` on a scratch value
/// must be followed shortly by `.ensure_capacity(…)` — a reset scratch
/// with stale capacity silently reallocates on the next publish.
fn check_scratch_hygiene(view: &mut FileView<'_>) {
    let toks = &view.lexed.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if tok.ident() != Some("reset") || !view.in_hot(tok.line) {
            continue;
        }
        // Zero-arg only: `reset ( )`. FanOut's `reset(n)` is a
        // different protocol (slot-count rendezvous) and exempt.
        if !is_method_call(toks, i) || toks.get(i + 2).is_none_or(|t| !t.is_punct(')')) {
            continue;
        }
        // Look ahead a short window for the pairing call.
        const WINDOW: usize = 48;
        let paired = toks[i..toks.len().min(i + WINDOW)]
            .iter()
            .any(|t| t.ident() == Some("ensure_capacity"));
        if !paired {
            let line = tok.line;
            view.report(
                line,
                "scratch-hygiene",
                "`.reset()` in a hot-path region without a nearby `.ensure_capacity(…)`; \
                 checkout sites must re-arm capacity or the next publish reallocates"
                    .into(),
            );
        }
    }
}

/// Lock-order regions: multi-shard acquisitions must be in ascending
/// index order, and no shard state may be locked while a named
/// directory guard is still live (directory is the innermost lock).
fn check_lock_order(view: &mut FileView<'_>) {
    let toks = &view.lexed.tokens;

    // --- directory-innermost -------------------------------------------------
    // Track `let [mut] NAME = … directory … .read()/.write() … ;`
    // bindings; the guard lives until its block closes (depth drops
    // below the binding depth). A later `.state.read/.write(` while a
    // guard is live inverts shard-then-directory.
    let mut live_guards: Vec<(u32, u32)> = Vec::new(); // (depth, bound-at-line)
    let mut i = 0usize;
    while i < toks.len() {
        let tok = &toks[i];
        if !view.in_lock_order(tok.line) {
            // Leaving the region kills tracking; regions are function-
            // scoped so guards never straddle a region edge.
            live_guards.clear();
            i += 1;
            continue;
        }
        live_guards.retain(|&(depth, _)| tok.depth >= depth);
        if tok.ident() == Some("let") {
            let (binds_directory, _stmt_end) = statement_binds_directory_guard(toks, i);
            if binds_directory {
                live_guards.push((tok.depth, tok.line));
            }
            // Fall through token by token: a later `let` statement can
            // itself contain the shard-state acquisition under check.
        }
        // `….state.read(` / `….state.write(` — a shard-state lock.
        if tok.ident() == Some("state")
            && i >= 1
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('.'))
            && toks
                .get(i + 2)
                .and_then(Tok::ident)
                .is_some_and(|m| m == "read" || m == "write")
            && toks.get(i + 3).is_some_and(|t| t.is_punct('('))
        {
            if let Some(&(_, guard_line)) = live_guards.first() {
                let line = tok.line;
                view.report(
                    line,
                    "lock-order",
                    format!(
                        "shard state locked while the directory guard bound on line \
                         {guard_line} is still live; the directory is the innermost \
                         lock — drop the guard (end its block) before touching shards"
                    ),
                );
            }
        }
        i += 1;
    }

    // --- ascending shard indexes --------------------------------------------
    // Collect `shards[IDX].state.write(` sites; consecutive pairs in
    // one region at overlapping scopes must be ascending. Single-token
    // indexes only — computed indexes are the caller's proof burden.
    let mut acquisitions: Vec<(u32, u32, String)> = Vec::new(); // (line, depth, index-text)
    for (i, tok) in toks.iter().enumerate() {
        if tok.ident() != Some("shards") || !view.in_lock_order(tok.line) {
            continue;
        }
        let Some(open) = toks.get(i + 1).filter(|t| t.is_punct('[')) else {
            continue;
        };
        let _ = open;
        let Some(index) = toks.get(i + 2).and_then(Tok::ident) else {
            continue;
        };
        if !(toks.get(i + 3).is_some_and(|t| t.is_punct(']'))
            && toks.get(i + 4).is_some_and(|t| t.is_punct('.'))
            && toks.get(i + 5).and_then(Tok::ident) == Some("state")
            && toks.get(i + 6).is_some_and(|t| t.is_punct('.'))
            && toks.get(i + 7).and_then(Tok::ident) == Some("write")
            && toks.get(i + 8).is_some_and(|t| t.is_punct('(')))
        {
            continue;
        }
        acquisitions.push((tok.line, tok.depth, index.to_owned()));
    }
    for pair in acquisitions.windows(2) {
        let (first_line, _, first) = &pair[0];
        let (second_line, _, second) = &pair[1];
        // Only adjacent acquisitions in the same region count as a
        // nested pair; different regions are different critical
        // sections.
        let same_region = view
            .lock_order
            .iter()
            .any(|r| r.contains(*first_line) && r.contains(*second_line));
        if !same_region {
            continue;
        }
        let violation = match (first.parse::<u64>(), second.parse::<u64>()) {
            (Ok(a), Ok(b)) => a >= b,
            // The blessed identifier idiom is `(lo, hi)`; the reverse
            // spelling is the classic inversion.
            _ => first == "hi" && second == "lo",
        };
        if violation {
            view.report(
                *second_line,
                "lock-order",
                format!(
                    "shard `{second}` locked after shard `{first}` (line {first_line}); \
                     multi-shard acquisitions must use ascending indexes — sort into \
                     the `(lo, hi)` idiom first"
                ),
            );
        }
    }
}

/// Does the `let` statement starting at `start` bind a guard from
/// `directory….read()`/`….write()`? Returns (binds, index-after-`;`).
fn statement_binds_directory_guard(toks: &[Tok], start: usize) -> (bool, usize) {
    let mut depth_delta = 0i32;
    let mut binds = false;
    let mut i = start + 1;
    while i < toks.len() {
        let tok = &toks[i];
        match &tok.kind {
            TokKind::Punct('{') => depth_delta += 1,
            TokKind::Punct('}') => {
                depth_delta -= 1;
                if depth_delta < 0 {
                    break; // malformed / end of block
                }
            }
            TokKind::Punct(';') if depth_delta == 0 => {
                i += 1;
                break;
            }
            // The guard source must be `directory.read(` / `.write(`
            // verbatim, and at the statement's own nesting level: a
            // guard taken inside a nested block dies at that block's
            // `}` and never escapes into the binding.
            TokKind::Ident(name)
                if name == "directory"
                    && depth_delta == 0
                    && toks.get(i + 1).is_some_and(|t| t.is_punct('.'))
                    && toks
                        .get(i + 2)
                        .and_then(Tok::ident)
                        .is_some_and(|m| m == "read" || m == "write")
                    && toks.get(i + 3).is_some_and(|t| t.is_punct('(')) =>
            {
                binds = true;
            }
            _ => {}
        }
        i += 1;
    }
    (binds, i)
}

/// Every `unsafe { … }` block needs a `SAFETY:` comment on one of the
/// three preceding lines (or its own). Applies file-wide.
fn check_safety_comments(view: &mut FileView<'_>) {
    let toks = &view.lexed.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if tok.ident() != Some("unsafe") {
            continue;
        }
        // Only blocks: `unsafe {`. (`unsafe fn`/`unsafe impl` document
        // their contract in rustdoc, not a SAFETY comment.)
        if toks.get(i + 1).is_none_or(|t| !t.is_punct('{')) {
            continue;
        }
        let line = tok.line;
        let documented = view
            .lexed
            .comments
            .iter()
            .any(|c| c.line + 3 >= line && c.line <= line && c.text.contains("SAFETY:"));
        if !documented {
            view.report(
                line,
                "safety-comment",
                "`unsafe` block without a `SAFETY:` comment in the three preceding \
                 lines; state the proof obligation being discharged"
                    .into(),
            );
        }
    }
}

/// Every `Ordering::Relaxed` outside the allow-listed counter cells
/// needs a `// ordering:` justification comment within the three
/// preceding lines (or on its own line). Applies file-wide — relaxed
/// atomics are exactly the construct whose correctness is invisible at
/// the use site.
fn check_atomic_ordering(view: &mut FileView<'_>) {
    let toks = &view.lexed.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if tok.ident() != Some("Ordering")
            || !toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            || !toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            || toks.get(i + 3).and_then(Tok::ident) != Some("Relaxed")
        {
            continue;
        }
        let line = tok.line;
        // Attribute the ordering backwards to the atomic op it
        // parameterises, and that op's receiver cell.
        let mut receiver = None;
        for k in (i.saturating_sub(24)..i).rev() {
            let Some(name) = toks[k].ident() else {
                continue;
            };
            if ATOMIC_OPS.contains(&name) && toks.get(k + 1).is_some_and(|t| t.is_punct('(')) {
                receiver = method_receiver(toks, k);
                break;
            }
        }
        if receiver.is_some_and(|r| RELAXED_COUNTER_CELLS.contains(&r)) {
            continue;
        }
        let justified = view.lexed.comments.iter().any(|c| {
            c.line + 3 >= line
                && c.line <= line
                && c.text
                    .trim_start_matches(['/', '!'])
                    .trim_start()
                    .starts_with("ordering:")
        });
        if justified {
            continue;
        }
        let cell = receiver.unwrap_or("<unknown>");
        view.report(
            line,
            "atomic-ordering",
            format!(
                "`Ordering::Relaxed` on `{cell}` is outside the allow-listed lock-free \
                 counter cells; add a `// ordering:` comment stating why relaxed is \
                 sound here, or use an acquire/release ordering"
            ),
        );
    }
}

// ---------------------------------------------------------------------------
// Interprocedural checks
// ---------------------------------------------------------------------------

/// Hot-path regions, through calls: a call site inside a hot-path
/// region whose callee **transitively** acquires a broker-global lock
/// or panics is reported here, with the full call chain. Effects whose
/// direct site already sits inside a hot-path region are skipped —
/// the intraprocedural rules reported them at the source.
fn check_transitive_hot_path(
    view: &mut FileView<'_>,
    file_idx: usize,
    graph: &CallGraph,
    effects: &[Effects],
    hot_by_file: &[Vec<Region>],
    labels: &[&str],
) {
    for call in &graph.calls {
        if call.file != file_idx || !view.in_hot(call.line) {
            continue;
        }
        let candidates = graph.resolve(&call.callee);
        if candidates.is_empty() {
            continue;
        }
        let merged = merge_candidates(candidates, effects);
        for lock in &merged.locks {
            let Some(found) = chain(
                graph,
                effects,
                merged.lock_via[lock],
                candidates.len(),
                |e| e.locks.get(lock),
            ) else {
                continue;
            };
            if hot_by_file[found.file]
                .iter()
                .any(|r| r.contains(found.line))
            {
                continue;
            }
            view.report(
                call.line,
                "hot-path-locking",
                format!(
                    "`{callee}(…)` transitively acquires the broker-global `{lock}` lock: \
                     `{what}` at {site_file}:{site_line}, reached via {path}; the publish \
                     fast path must stay off every global lock — restructure the helper, \
                     or justify this call with an allow",
                    callee = call.callee,
                    what = found.what,
                    site_file = labels[found.file],
                    site_line = found.line,
                    path = found.path,
                ),
            );
        }
        if merged.panics {
            if let Some(found) = chain(graph, effects, merged.panic_via, candidates.len(), |e| {
                e.panics.as_ref()
            }) {
                if !hot_by_file[found.file]
                    .iter()
                    .any(|r| r.contains(found.line))
                {
                    view.report(
                        call.line,
                        "panic-policy",
                        format!(
                            "`{callee}(…)` can transitively panic: `{what}` at \
                             {site_file}:{site_line}, reached via {path}; a hot-path \
                             publish must not abort — handle the error in the helper, \
                             or justify this call with an allow",
                            callee = call.callee,
                            what = found.what,
                            site_file = labels[found.file],
                            site_line = found.line,
                            path = found.path,
                        ),
                    );
                }
            }
        }
    }
}

/// A named lock guard tracked by `blocking-while-locked`.
struct LiveGuard {
    /// Binding name (`senders`, `_maintenance`, …).
    name: String,
    /// Lock field the guard came from.
    lock: String,
    /// Brace depth of the binding: the guard dies when the depth drops
    /// below it.
    depth: u32,
    line: u32,
}

/// No blocking operation — direct, or through any call chain — while a
/// named lock guard is live. Applies everywhere (no region needed): a
/// parked thread holding `directory` or a shard `state` stalls every
/// publisher behind it, and only a lucky test interleaving would catch
/// it dynamically. A condvar wait that takes the guard as an argument
/// releases it for the sleep and is exempt (so are waits naming every
/// live guard).
fn check_blocking_while_locked(
    view: &mut FileView<'_>,
    file_idx: usize,
    graph: &CallGraph,
    effects: &[Effects],
    labels: &[&str],
) {
    let toks = &view.lexed.tokens;
    for (fn_idx, item) in graph.fns.iter().enumerate() {
        if item.file != file_idx {
            continue;
        }
        // Call sites of this fn, findable by token index.
        let calls_here: Vec<&callgraph::CallSite> = graph.calls_of[fn_idx]
            .iter()
            .map(|&c| &graph.calls[c])
            .collect();
        let mut next_call = 0usize;
        let mut guards: Vec<LiveGuard> = Vec::new();
        for i in (item.open + 1)..item.close {
            if !item.owns(i) {
                continue;
            }
            let tok = &toks[i];
            guards.retain(|g| tok.depth >= g.depth);
            // Explicit early release: `drop(guard)`.
            if tok.ident() == Some("drop") && toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
                if let Some(dropped) = toks.get(i + 2).and_then(Tok::ident) {
                    if toks.get(i + 3).is_some_and(|t| t.is_punct(')')) {
                        guards.retain(|g| g.name != dropped);
                    }
                }
            }
            if tok.ident() == Some("let") {
                if let Some(guard) = guard_binding(toks, i) {
                    guards.push(guard);
                }
            }
            if guards.is_empty() {
                continue;
            }
            // Direct blocking operation?
            if let Some(what) = blocking_op(toks, i) {
                // The `Block { .. }` arm is a summary marker for the
                // enclosing fn, not a positional blocking op — the
                // concrete wait inside the arm is checked on its own.
                if !what.starts_with("Block") {
                    let exempt = call_arg_idents(toks, i);
                    if let Some(guard) = guards.iter().find(|g| !exempt.contains(&g.name)) {
                        let line = tok.line;
                        let message = format!(
                            "`{what}` while the `{lock}` guard `{name}` (bound line \
                             {gline}) is live — blocking with a named lock held invites \
                             deadlock; drop the guard first, hand it to the wait, or \
                             justify with an allow",
                            lock = guard.lock,
                            name = guard.name,
                            gline = guard.line,
                        );
                        view.report(line, "blocking-while-locked", message);
                    }
                    continue;
                }
            }
            // Transitively blocking call?
            while next_call < calls_here.len() && calls_here[next_call].tok < i {
                next_call += 1;
            }
            if next_call < calls_here.len() && calls_here[next_call].tok == i {
                let call = calls_here[next_call];
                let candidates = graph.resolve(&call.callee);
                if candidates.is_empty() {
                    continue;
                }
                let merged = merge_candidates(candidates, effects);
                if !merged.blocks {
                    continue;
                }
                let exempt = call_arg_idents(toks, i);
                let Some(guard) = guards.iter().find(|g| !exempt.contains(&g.name)) else {
                    continue;
                };
                let Some(found) = chain(graph, effects, merged.block_via, candidates.len(), |e| {
                    e.blocks.as_ref()
                }) else {
                    continue;
                };
                let line = call.line;
                let message = format!(
                    "`{callee}(…)` transitively blocks (`{what}` at {site_file}:{site_line}, \
                     reached via {path}) while the `{lock}` guard `{name}` (bound line \
                     {gline}) is live — release the guard before the call, or justify \
                     with an allow",
                    callee = call.callee,
                    what = found.what,
                    site_file = labels[found.file],
                    site_line = found.line,
                    path = found.path,
                    lock = guard.lock,
                    name = guard.name,
                    gline = guard.line,
                );
                view.report(line, "blocking-while-locked", message);
            }
        }
    }
}

/// Recognises `let [mut] NAME = …RECEIVER.read/write/lock();` — a
/// named guard binding the `blocking-while-locked` rule tracks. The
/// lock call must terminate the statement (`();` directly): a chained
/// temporary (`directory.read().skew_pair()`) releases its guard at
/// the statement's end and binds only the derived value.
fn guard_binding(toks: &[Tok], let_idx: usize) -> Option<LiveGuard> {
    let depth = toks[let_idx].depth;
    let mut j = let_idx + 1;
    if toks.get(j).and_then(Tok::ident) == Some("mut") {
        j += 1;
    }
    let name = toks.get(j).and_then(Tok::ident)?;
    if name == "_" {
        return None; // `let _ = …` drops the guard immediately
    }
    // Tuple/struct/enum patterns (`let (a, b) =`, `let Some(x) =`)
    // are not single-guard bindings.
    if toks
        .get(j + 1)
        .is_some_and(|t| t.is_punct('(') || t.is_punct('{'))
    {
        return None;
    }
    // Find the statement's terminating `;` at the binding depth.
    let mut k = j + 1;
    let mut end = None;
    while let Some(tok) = toks.get(k) {
        if tok.depth < depth {
            break;
        }
        if tok.kind == TokKind::Punct(';') && tok.depth == depth {
            end = Some(k);
            break;
        }
        k += 1;
    }
    let end = end?;
    // `… RECEIVER . METHOD ( ) ;`
    if end < 5 {
        return None;
    }
    let method = toks[end - 3].ident()?;
    if !matches!(method, "read" | "write" | "lock") {
        return None;
    }
    if !toks[end - 2].is_punct('(') || !toks[end - 1].is_punct(')') || !toks[end - 4].is_punct('.')
    {
        return None;
    }
    let receiver = toks[end - 5].ident()?;
    if !GLOBAL_LOCKS.contains(&receiver) && !SHARD_GUARD_FIELDS.contains(&receiver) {
        return None;
    }
    Some(LiveGuard {
        name: name.to_owned(),
        lock: receiver.to_owned(),
        depth,
        line: toks[let_idx].line,
    })
}

/// Identifiers appearing in the argument list of the call at token
/// `i` (the callee name; `i + 1` must be the `(`). A condvar wait that
/// names a guard here consumes/releases it for the sleep.
fn call_arg_idents(toks: &[Tok], i: usize) -> Vec<String> {
    let mut out = Vec::new();
    if toks.get(i + 1).is_none_or(|t| !t.is_punct('(')) {
        return out;
    }
    let mut parens = 1i32;
    let mut j = i + 2;
    while let Some(tok) = toks.get(j) {
        match tok.kind {
            TokKind::Punct('(') => parens += 1,
            TokKind::Punct(')') => {
                parens -= 1;
                if parens == 0 {
                    break;
                }
            }
            TokKind::Ident(ref name) => out.push(name.clone()),
            _ => {}
        }
        j += 1;
        if j > i + 512 {
            break; // degenerate; stop scanning
        }
    }
    out
}
