//! The invariant rules, run over the token/comment stream from
//! [`crate::lexer`].
//!
//! Regions are declared in comments (see the README's *Invariants &
//! analysis* section for the user-facing catalogue):
//!
//! - `// lint: hot-path` … `// lint: end-hot-path` — the enclosed code
//!   runs on the publish fast path: the `hot-path-locking`,
//!   `panic-policy` and `scratch-hygiene` rules apply.
//! - `// lint: lock-order` … `// lint: end-lock-order` — the enclosed
//!   code holds several engine locks at once: the `lock-order` rule
//!   applies (ascending shard indexes, directory innermost).
//! - `// lint: allow(rule, reason = "…")` — suppress `rule` on this
//!   line and on the next code line. A missing or empty reason is
//!   itself a finding (`lint-hygiene`).
//!
//! The `safety-comment` rule is global: every `unsafe` block needs a
//! `SAFETY:` comment within the three preceding lines.

use crate::lexer::{lex, Comment, Lexed, Tok, TokKind};

/// Broker-global lock *field* names: acquiring any of these inside a
/// hot-path region is a finding. `shard` states are per-shard and fine;
/// `senders` reads during delivery carry an explicit allow.
const GLOBAL_LOCKS: &[&str] = &[
    "directory",
    "maintenance",
    "senders",
    "shard_set",
    "freq_baseline",
    "rebalancer",
    "delivery_maintenance",
];

/// Panicking constructs disallowed in hot-path regions. `assert!` /
/// `debug_assert!` stay legal: they state invariants, and the policy
/// targets *recoverable-error-turned-abort* sites, not invariant
/// checks.
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Every rule the lint knows, as stable machine-readable names.
pub const RULES: &[&str] = &[
    "hot-path-locking",
    "lock-order",
    "scratch-hygiene",
    "panic-policy",
    "safety-comment",
    "lint-hygiene",
];

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Path label the caller supplied (repo-relative in the CLI).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name, one of [`RULES`].
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

/// A parsed `// lint: …` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Directive {
    HotPath,
    EndHotPath,
    LockOrder,
    EndLockOrder,
    Allow {
        rule: String,
        reason: Option<String>,
    },
    /// `lint:` prefix present but unparseable — reported, never ignored
    /// silently.
    Malformed(String),
}

fn parse_directive(text: &str) -> Option<Directive> {
    // Comment text arrives without `//`; doc-comment markers and
    // leading whitespace are framing.
    let body = text.trim_start_matches(['/', '!']).trim_start();
    let rest = body.strip_prefix("lint:")?.trim_start();
    let word_end = rest
        .find(|c: char| !(c.is_alphanumeric() || c == '-' || c == '_'))
        .unwrap_or(rest.len());
    let (word, tail) = rest.split_at(word_end);
    match word {
        "hot-path" => Some(Directive::HotPath),
        "end-hot-path" => Some(Directive::EndHotPath),
        "lock-order" => Some(Directive::LockOrder),
        "end-lock-order" => Some(Directive::EndLockOrder),
        "allow" => Some(parse_allow(tail.trim_start())),
        other => Some(Directive::Malformed(format!(
            "unknown lint directive `{other}`"
        ))),
    }
}

/// Parses the `(rule, reason = "…")` tail of an allow directive.
fn parse_allow(tail: &str) -> Directive {
    let Some(inner) = tail.strip_prefix('(') else {
        return Directive::Malformed("allow needs `(rule, reason = \"…\")`".into());
    };
    let Some(close) = inner.rfind(')') else {
        return Directive::Malformed("allow is missing its closing `)`".into());
    };
    let inner = &inner[..close];
    let (rule, rest) = match inner.find(',') {
        Some(comma) => (inner[..comma].trim(), inner[comma + 1..].trim()),
        None => (inner.trim(), ""),
    };
    let reason = rest
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('='))
        .map(str::trim)
        .and_then(|r| r.strip_prefix('"'))
        .and_then(|r| r.strip_suffix('"'))
        .map(str::to_owned);
    Directive::Allow {
        rule: rule.to_owned(),
        reason,
    }
}

/// An inclusive line range a region covers.
#[derive(Debug, Clone, Copy)]
struct Region {
    start: u32,
    end: u32,
}

impl Region {
    fn contains(&self, line: u32) -> bool {
        self.start <= line && line <= self.end
    }
}

/// Everything the rules need about one file, precomputed.
struct FileView<'a> {
    file: &'a str,
    lexed: &'a Lexed,
    hot: Vec<Region>,
    lock_order: Vec<Region>,
    /// `(rule, lines-it-covers)` per well-formed allow.
    allows: Vec<(String, [u32; 2])>,
    findings: Vec<Finding>,
}

impl<'a> FileView<'a> {
    fn new(file: &'a str, lexed: &'a Lexed, last_line: u32) -> Self {
        let mut view = FileView {
            file,
            lexed,
            hot: Vec::new(),
            lock_order: Vec::new(),
            allows: Vec::new(),
            findings: Vec::new(),
        };
        view.collect_directives(last_line);
        view
    }

    fn report(&mut self, line: u32, rule: &'static str, message: String) {
        // `lint-hygiene` findings are never suppressible — an allow
        // that allowed itself would be unfalsifiable.
        if rule != "lint-hygiene" {
            let suppressed = self
                .allows
                .iter()
                .any(|(r, lines)| r == rule && lines.contains(&line));
            if suppressed {
                return;
            }
        }
        self.findings.push(Finding {
            file: self.file.to_owned(),
            line,
            rule,
            message,
        });
    }

    /// First token line strictly after `line` — where a preceding-line
    /// allow lands.
    fn next_code_line(&self, line: u32) -> u32 {
        self.lexed
            .tokens
            .iter()
            .map(|t| t.line)
            .find(|&l| l > line)
            .unwrap_or(line)
    }

    fn collect_directives(&mut self, last_line: u32) {
        let mut open_hot: Option<u32> = None;
        let mut open_lock: Option<u32> = None;
        for Comment { text, line } in &self.lexed.comments {
            let Some(directive) = parse_directive(text) else {
                continue;
            };
            let line = *line;
            match directive {
                Directive::HotPath => {
                    if open_hot.is_some() {
                        self.report(
                            line,
                            "lint-hygiene",
                            "`lint: hot-path` while a hot-path region is already open".into(),
                        );
                    } else {
                        open_hot = Some(line);
                    }
                }
                Directive::EndHotPath => match open_hot.take() {
                    Some(start) => self.hot.push(Region { start, end: line }),
                    None => self.report(
                        line,
                        "lint-hygiene",
                        "`lint: end-hot-path` without an open hot-path region".into(),
                    ),
                },
                Directive::LockOrder => {
                    if open_lock.is_some() {
                        self.report(
                            line,
                            "lint-hygiene",
                            "`lint: lock-order` while a lock-order region is already open".into(),
                        );
                    } else {
                        open_lock = Some(line);
                    }
                }
                Directive::EndLockOrder => match open_lock.take() {
                    Some(start) => self.lock_order.push(Region { start, end: line }),
                    None => self.report(
                        line,
                        "lint-hygiene",
                        "`lint: end-lock-order` without an open lock-order region".into(),
                    ),
                },
                Directive::Allow { rule, reason } => {
                    if !RULES.contains(&rule.as_str()) {
                        self.report(
                            line,
                            "lint-hygiene",
                            format!("allow names unknown rule `{rule}`"),
                        );
                        continue;
                    }
                    match reason.as_deref() {
                        Some(r) if !r.trim().is_empty() => {
                            let covers = [line, self.next_code_line(line)];
                            self.allows.push((rule, covers));
                        }
                        _ => self.report(
                            line,
                            "lint-hygiene",
                            format!(
                                "allow({rule}) needs a non-empty `reason = \"…\"` — \
                                 suppressions must say why"
                            ),
                        ),
                    }
                }
                Directive::Malformed(msg) => self.report(line, "lint-hygiene", msg),
            }
        }
        if let Some(start) = open_hot {
            self.report(
                start,
                "lint-hygiene",
                "hot-path region is never closed (`lint: end-hot-path` missing)".into(),
            );
            self.hot.push(Region {
                start,
                end: last_line,
            });
        }
        if let Some(start) = open_lock {
            self.report(
                start,
                "lint-hygiene",
                "lock-order region is never closed (`lint: end-lock-order` missing)".into(),
            );
            self.lock_order.push(Region {
                start,
                end: last_line,
            });
        }
    }

    fn in_hot(&self, line: u32) -> bool {
        self.hot.iter().any(|r| r.contains(line))
    }

    fn in_lock_order(&self, line: u32) -> bool {
        self.lock_order.iter().any(|r| r.contains(line))
    }
}

/// Lints one file's source; `file` is only a label for findings.
pub fn lint_source(file: &str, source: &str) -> Vec<Finding> {
    let lexed = lex(source);
    let last_line = lexed
        .tokens
        .last()
        .map_or(1, |t| t.line)
        .max(lexed.comments.last().map_or(1, |c| c.line));
    let mut view = FileView::new(file, &lexed, last_line);
    check_hot_path_locking(&mut view);
    check_panic_policy(&mut view);
    check_scratch_hygiene(&mut view);
    check_lock_order(&mut view);
    check_safety_comments(&mut view);
    let mut findings = view.findings;
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// `receiver.method(` shape at token index `i` (pointing at `method`):
/// returns the receiver ident.
fn method_call_receiver(toks: &[Tok], i: usize) -> Option<&str> {
    if i < 2 || !toks[i - 1].is_punct('.') {
        return None;
    }
    if toks.get(i + 1).is_none_or(|t| !t.is_punct('(')) {
        return None;
    }
    toks[i - 2].ident()
}

/// Is token `i` a `.method(` call (any receiver)?
fn is_method_call(toks: &[Tok], i: usize) -> bool {
    i >= 1 && toks[i - 1].is_punct('.') && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
}

/// No broker-global lock may be acquired inside a hot-path region.
fn check_hot_path_locking(view: &mut FileView<'_>) {
    let toks = &view.lexed.tokens;
    for (i, tok) in toks.iter().enumerate() {
        let Some(method) = tok.ident() else { continue };
        if !matches!(method, "read" | "write" | "lock") || !view.in_hot(tok.line) {
            continue;
        }
        if let Some(receiver) = method_call_receiver(toks, i) {
            if GLOBAL_LOCKS.contains(&receiver) {
                let line = tok.line;
                view.report(
                    line,
                    "hot-path-locking",
                    format!(
                        "`{receiver}.{method}()` acquires the broker-global `{receiver}` \
                         lock inside a hot-path region; the publish fast path must stay \
                         off every global lock (use try_* / per-shard state, or justify \
                         with an allow)"
                    ),
                );
            }
        }
    }
}

/// No `unwrap`/`expect`/`panic!`-family construct in a hot-path region
/// without an allow carrying a reason.
fn check_panic_policy(view: &mut FileView<'_>) {
    let toks = &view.lexed.tokens;
    for (i, tok) in toks.iter().enumerate() {
        let Some(name) = tok.ident() else { continue };
        if !view.in_hot(tok.line) {
            continue;
        }
        let line = tok.line;
        if PANIC_METHODS.contains(&name) && is_method_call(toks, i) {
            view.report(
                line,
                "panic-policy",
                format!(
                    "`.{name}()` on the hot path can abort a publish; return the error, \
                     handle the None, or add `lint: allow(panic-policy, reason = …)` \
                     naming the invariant that makes it unreachable"
                ),
            );
        } else if PANIC_MACROS.contains(&name) && toks.get(i + 1).is_some_and(|t| t.is_punct('!')) {
            view.report(
                line,
                "panic-policy",
                format!("`{name}!` on the hot path; same policy as unwrap/expect"),
            );
        }
    }
}

/// In hot-path regions a zero-argument `.reset()` on a scratch value
/// must be followed shortly by `.ensure_capacity(…)` — a reset scratch
/// with stale capacity silently reallocates on the next publish.
fn check_scratch_hygiene(view: &mut FileView<'_>) {
    let toks = &view.lexed.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if tok.ident() != Some("reset") || !view.in_hot(tok.line) {
            continue;
        }
        // Zero-arg only: `reset ( )`. FanOut's `reset(n)` is a
        // different protocol (slot-count rendezvous) and exempt.
        if !is_method_call(toks, i) || toks.get(i + 2).is_none_or(|t| !t.is_punct(')')) {
            continue;
        }
        // Look ahead a short window for the pairing call.
        const WINDOW: usize = 48;
        let paired = toks[i..toks.len().min(i + WINDOW)]
            .iter()
            .any(|t| t.ident() == Some("ensure_capacity"));
        if !paired {
            let line = tok.line;
            view.report(
                line,
                "scratch-hygiene",
                "`.reset()` in a hot-path region without a nearby `.ensure_capacity(…)`; \
                 checkout sites must re-arm capacity or the next publish reallocates"
                    .into(),
            );
        }
    }
}

/// Lock-order regions: multi-shard acquisitions must be in ascending
/// index order, and no shard state may be locked while a named
/// directory guard is still live (directory is the innermost lock).
fn check_lock_order(view: &mut FileView<'_>) {
    let toks = &view.lexed.tokens;

    // --- directory-innermost -------------------------------------------------
    // Track `let [mut] NAME = … directory … .read()/.write() … ;`
    // bindings; the guard lives until its block closes (depth drops
    // below the binding depth). A later `.state.read/.write(` while a
    // guard is live inverts shard-then-directory.
    let mut live_guards: Vec<(u32, u32)> = Vec::new(); // (depth, bound-at-line)
    let mut i = 0usize;
    while i < toks.len() {
        let tok = &toks[i];
        if !view.in_lock_order(tok.line) {
            // Leaving the region kills tracking; regions are function-
            // scoped so guards never straddle a region edge.
            live_guards.clear();
            i += 1;
            continue;
        }
        live_guards.retain(|&(depth, _)| tok.depth >= depth);
        if tok.ident() == Some("let") {
            let (binds_directory, _stmt_end) = statement_binds_directory_guard(toks, i);
            if binds_directory {
                live_guards.push((tok.depth, tok.line));
            }
            // Fall through token by token: a later `let` statement can
            // itself contain the shard-state acquisition under check.
        }
        // `….state.read(` / `….state.write(` — a shard-state lock.
        if tok.ident() == Some("state")
            && i >= 1
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('.'))
            && toks
                .get(i + 2)
                .and_then(Tok::ident)
                .is_some_and(|m| m == "read" || m == "write")
            && toks.get(i + 3).is_some_and(|t| t.is_punct('('))
        {
            if let Some(&(_, guard_line)) = live_guards.first() {
                let line = tok.line;
                view.report(
                    line,
                    "lock-order",
                    format!(
                        "shard state locked while the directory guard bound on line \
                         {guard_line} is still live; the directory is the innermost \
                         lock — drop the guard (end its block) before touching shards"
                    ),
                );
            }
        }
        i += 1;
    }

    // --- ascending shard indexes --------------------------------------------
    // Collect `shards[IDX].state.write(` sites; consecutive pairs in
    // one region at overlapping scopes must be ascending. Single-token
    // indexes only — computed indexes are the caller's proof burden.
    let mut acquisitions: Vec<(u32, u32, String)> = Vec::new(); // (line, depth, index-text)
    for (i, tok) in toks.iter().enumerate() {
        if tok.ident() != Some("shards") || !view.in_lock_order(tok.line) {
            continue;
        }
        let Some(open) = toks.get(i + 1).filter(|t| t.is_punct('[')) else {
            continue;
        };
        let _ = open;
        let Some(index) = toks.get(i + 2).and_then(Tok::ident) else {
            continue;
        };
        if !(toks.get(i + 3).is_some_and(|t| t.is_punct(']'))
            && toks.get(i + 4).is_some_and(|t| t.is_punct('.'))
            && toks.get(i + 5).and_then(Tok::ident) == Some("state")
            && toks.get(i + 6).is_some_and(|t| t.is_punct('.'))
            && toks.get(i + 7).and_then(Tok::ident) == Some("write")
            && toks.get(i + 8).is_some_and(|t| t.is_punct('(')))
        {
            continue;
        }
        acquisitions.push((tok.line, tok.depth, index.to_owned()));
    }
    for pair in acquisitions.windows(2) {
        let (first_line, _, first) = &pair[0];
        let (second_line, _, second) = &pair[1];
        // Only adjacent acquisitions in the same region count as a
        // nested pair; different regions are different critical
        // sections.
        let same_region = view
            .lock_order
            .iter()
            .any(|r| r.contains(*first_line) && r.contains(*second_line));
        if !same_region {
            continue;
        }
        let violation = match (first.parse::<u64>(), second.parse::<u64>()) {
            (Ok(a), Ok(b)) => a >= b,
            // The blessed identifier idiom is `(lo, hi)`; the reverse
            // spelling is the classic inversion.
            _ => first == "hi" && second == "lo",
        };
        if violation {
            view.report(
                *second_line,
                "lock-order",
                format!(
                    "shard `{second}` locked after shard `{first}` (line {first_line}); \
                     multi-shard acquisitions must use ascending indexes — sort into \
                     the `(lo, hi)` idiom first"
                ),
            );
        }
    }
}

/// Does the `let` statement starting at `start` bind a guard from
/// `directory….read()`/`….write()`? Returns (binds, index-after-`;`).
fn statement_binds_directory_guard(toks: &[Tok], start: usize) -> (bool, usize) {
    let mut depth_delta = 0i32;
    let mut binds = false;
    let mut i = start + 1;
    while i < toks.len() {
        let tok = &toks[i];
        match &tok.kind {
            TokKind::Punct('{') => depth_delta += 1,
            TokKind::Punct('}') => {
                depth_delta -= 1;
                if depth_delta < 0 {
                    break; // malformed / end of block
                }
            }
            TokKind::Punct(';') if depth_delta == 0 => {
                i += 1;
                break;
            }
            // The guard source must be `directory.read(` / `.write(`
            // verbatim, and at the statement's own nesting level: a
            // guard taken inside a nested block dies at that block's
            // `}` and never escapes into the binding.
            TokKind::Ident(name)
                if name == "directory"
                    && depth_delta == 0
                    && toks.get(i + 1).is_some_and(|t| t.is_punct('.'))
                    && toks
                        .get(i + 2)
                        .and_then(Tok::ident)
                        .is_some_and(|m| m == "read" || m == "write")
                    && toks.get(i + 3).is_some_and(|t| t.is_punct('(')) =>
            {
                binds = true;
            }
            _ => {}
        }
        i += 1;
    }
    (binds, i)
}

/// Every `unsafe { … }` block needs a `SAFETY:` comment on one of the
/// three preceding lines (or its own). Applies file-wide.
fn check_safety_comments(view: &mut FileView<'_>) {
    let toks = &view.lexed.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if tok.ident() != Some("unsafe") {
            continue;
        }
        // Only blocks: `unsafe {`. (`unsafe fn`/`unsafe impl` document
        // their contract in rustdoc, not a SAFETY comment.)
        if toks.get(i + 1).is_none_or(|t| !t.is_punct('{')) {
            continue;
        }
        let line = tok.line;
        let documented = view
            .lexed
            .comments
            .iter()
            .any(|c| c.line + 3 >= line && c.line <= line && c.text.contains("SAFETY:"));
        if !documented {
            view.report(
                line,
                "safety-comment",
                "`unsafe` block without a `SAFETY:` comment in the three preceding \
                 lines; state the proof obligation being discharged"
                    .into(),
            );
        }
    }
}
