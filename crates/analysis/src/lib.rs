//! `boolmatch-analysis` — the workspace invariant lint.
//!
//! The broker's concurrency story rests on a handful of invariants the
//! compiler cannot see: the publish fast path takes no broker-global
//! lock, multi-shard critical sections acquire shard states in
//! ascending index order with the directory innermost, scratch
//! checkouts re-arm capacity after a reset, and the hot path never
//! panics on recoverable conditions. This crate enforces them
//! statically with a lightweight lexer ([`lexer`]) and a set of
//! token-pattern rules ([`rules`]); the dynamic half of the story is
//! the debug-build lockdep in the `parking_lot` shim.
//!
//! Since PR 9 the lint is **interprocedural**: a parser layer
//! ([`callgraph`]) recognises `fn` items and call sites over the whole
//! workspace, per-function effect summaries ([`summary`]) record which
//! named locks each function acquires and whether it can panic or
//! block, and the summaries propagate transitively — so a hot-path
//! region calling a helper three modules away that grabs `directory`
//! is reported at the call site, with the full chain in the message.
//!
//! Run it as `cargo run -p boolmatch-analysis` (binary name
//! `invariant-lint`); it exits non-zero when any finding survives, so
//! CI can gate on it. `--format=json` emits machine-readable findings.

pub mod callgraph;
pub mod lexer;
pub mod rules;
pub mod summary;

pub use rules::{lint_files, lint_source, Finding, RULES};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Collects every `.rs` file under `root`, skipping build output and
/// VCS internals. Deterministic (sorted) so reports diff cleanly.
pub fn workspace_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if name == "target" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lints every source file under `root` **as one workspace** — the
/// call graph and effect summaries span all of them, so a hot-path
/// call into another crate's helper is still traced. Paths in findings
/// are root-relative.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    for path in workspace_sources(root)? {
        let source = fs::read_to_string(&path)?;
        let label = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .into_owned();
        files.push((label, source));
    }
    Ok(lint_files(&files))
}

/// Renders findings as human-readable text, one per line.
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n",
            f.file, f.line, f.rule, f.message
        ));
    }
    out
}

/// Renders findings as a JSON array (hand-rolled: the container ships
/// no serde, and the schema is four flat fields).
pub fn render_json(findings: &[Finding]) -> String {
    fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for ch in s.chars() {
            match ch {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            escape(&f.file),
            f.line,
            f.rule,
            escape(&f.message)
        ));
    }
    out.push_str(if findings.is_empty() { "]" } else { "\n]" });
    out.push('\n');
    out
}

// ---------------------------------------------------------------------------
// Self-tests: one passing and one violating fixture per rule. Fixtures
// are string literals, so the lexer scanning *this* crate never sees
// their contents.
// ---------------------------------------------------------------------------
#[cfg(test)]
mod tests {
    use super::*;

    fn rules_hit(src: &str) -> Vec<&'static str> {
        lint_source("fixture.rs", src)
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn hot_path_locking_flags_global_locks_and_passes_shard_state() {
        let bad = "
            // lint: hot-path
            fn publish(&self) {
                let dir = self.inner.directory.read();
                drop(dir);
            }
            // lint: end-hot-path
        ";
        assert_eq!(rules_hit(bad), vec!["hot-path-locking"]);

        let good = "
            // lint: hot-path
            fn publish(&self) {
                let set = self.shard_set();
                let state = shard.state.read();
                drop(state);
            }
            // lint: end-hot-path
        ";
        assert!(rules_hit(good).is_empty());
    }

    #[test]
    fn hot_path_locking_respects_allow_with_reason() {
        let allowed = r#"
            // lint: hot-path
            fn deliver(&self) {
                // lint: allow(hot-path-locking, reason = "sender map read is by design")
                let senders = self.inner.senders.read();
                drop(senders);
            }
            // lint: end-hot-path
        "#;
        assert!(rules_hit(allowed).is_empty());

        // Same suppression without a reason is itself a finding, and
        // the underlying violation still reports.
        let reasonless = "
            // lint: hot-path
            fn deliver(&self) {
                // lint: allow(hot-path-locking)
                let senders = self.inner.senders.read();
            }
            // lint: end-hot-path
        ";
        let hit = rules_hit(reasonless);
        assert!(hit.contains(&"lint-hygiene"));
        assert!(hit.contains(&"hot-path-locking"));
    }

    #[test]
    fn panic_policy_flags_unwraps_and_macros_in_hot_regions_only() {
        let bad = r#"
            // lint: hot-path
            fn fast(&self) {
                let x = self.slot.take().unwrap();
                match x { 0 => {} _ => unreachable!("nope") }
            }
            // lint: end-hot-path
        "#;
        assert_eq!(rules_hit(bad), vec!["panic-policy", "panic-policy"]);

        let good = r#"
            fn cold(&self) {
                let x = self.slot.take().unwrap(); // outside any region
                let _ = x;
            }
            // lint: hot-path
            fn fast(&self) {
                debug_assert!(self.ok());
                let Some(x) = self.slot.take() else { return };
                // lint: allow(panic-policy, reason = "slot is Some from construction to Drop")
                let y = self.other.take().expect("present");
                let _ = (x, y);
            }
            // lint: end-hot-path
        "#;
        assert!(rules_hit(good).is_empty());
    }

    #[test]
    fn scratch_hygiene_pairs_reset_with_ensure_capacity() {
        let bad = "
            // lint: hot-path
            fn checkout(&self) -> Scratch {
                let mut scratch = self.take();
                scratch.reset();
                scratch
            }
            // lint: end-hot-path
        ";
        assert_eq!(rules_hit(bad), vec!["scratch-hygiene"]);

        let good = "
            // lint: hot-path
            fn checkout(&self, subs: usize) -> Scratch {
                let mut scratch = self.take();
                scratch.reset();
                scratch.ensure_capacity(subs);
                scratch
            }
            fn rendezvous(&self, n: usize) {
                self.fan.reset(n); // arg'd reset is a different protocol
            }
            // lint: end-hot-path
        ";
        assert!(rules_hit(good).is_empty());
    }

    /// The batch-matching checkout sites obey the same hygiene pair:
    /// a `BatchScratch` reset in a hot-path region (pool checkout, the
    /// broker's per-shard batch loop) must re-arm capacity for the
    /// engine it is about to serve, or the first chunk kernel of the
    /// next batch reallocates every lane plane.
    #[test]
    fn scratch_hygiene_covers_batch_scratch_checkout() {
        let bad = "
            // lint: hot-path
            fn checkout(&self) -> BatchScratch {
                let mut batch = self.take_batch();
                batch.reset();
                batch
            }
            // lint: end-hot-path
        ";
        assert_eq!(rules_hit(bad), vec!["scratch-hygiene"]);

        let good = "
            // lint: hot-path
            fn publish_batch_cell(&self, state: &ShardState, batch: &mut BatchScratch) {
                batch.reset();
                batch.ensure_capacity(&*state.engine);
                let stats = state.engine.match_batch(events, &skip, batch);
                drop(stats);
            }
            // lint: end-hot-path
        ";
        assert!(rules_hit(good).is_empty());
    }

    #[test]
    fn lock_order_flags_shard_state_under_a_live_directory_guard() {
        let bad = "
            // lint: lock-order
            fn migrate(&self, shards: &[Cell]) {
                let directory = self.inner.directory.write();
                let state = shards[0].state.write();
                drop((directory, state));
            }
            // lint: end-lock-order
        ";
        assert_eq!(rules_hit(bad), vec!["lock-order"]);

        // Guard scoped to an inner block dies before the shard lock.
        let good = "
            // lint: lock-order
            fn migrate(&self, shards: &[Cell]) {
                let expr = {
                    let directory = self.inner.directory.read();
                    directory.expr_of(7)
                };
                let state = shards[0].state.write();
                drop((expr, state));
            }
            // lint: end-lock-order
        ";
        assert!(rules_hit(good).is_empty());
    }

    #[test]
    fn lock_order_requires_ascending_shard_indexes() {
        let bad = "
            // lint: lock-order
            fn swap(&self, shards: &[Cell]) {
                let b = shards[9].state.write();
                let a = shards[3].state.write();
                drop((a, b));
            }
            // lint: end-lock-order
        ";
        assert_eq!(rules_hit(bad), vec!["lock-order"]);

        let inverted_idiom = "
            // lint: lock-order
            fn swap(&self, shards: &[Cell]) {
                let first = shards[hi].state.write();
                let second = shards[lo].state.write();
                drop((first, second));
            }
            // lint: end-lock-order
        ";
        assert_eq!(rules_hit(inverted_idiom), vec!["lock-order"]);

        let good = "
            // lint: lock-order
            fn swap(&self, shards: &[Cell]) {
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                let first = shards[lo].state.write();
                let second = shards[hi].state.write();
                drop((first, second));
            }
            // lint: end-lock-order
        ";
        assert!(rules_hit(good).is_empty());
    }

    #[test]
    fn safety_comment_is_required_on_unsafe_blocks_anywhere() {
        let bad = "
            fn fast(ptr: *const u8) -> u8 {
                unsafe { *ptr }
            }
        ";
        assert_eq!(rules_hit(bad), vec!["safety-comment"]);

        let good = "
            fn fast(ptr: *const u8) -> u8 {
                // SAFETY: caller guarantees ptr is valid for reads.
                unsafe { *ptr }
            }
        ";
        assert!(rules_hit(good).is_empty());
    }

    #[test]
    fn region_markers_must_balance() {
        let unclosed = "
            // lint: hot-path
            fn fast() {}
        ";
        assert_eq!(rules_hit(unclosed), vec!["lint-hygiene"]);

        let stray_end = "
            fn fast() {}
            // lint: end-lock-order
        ";
        assert_eq!(rules_hit(stray_end), vec!["lint-hygiene"]);

        let unknown = "
            // lint: warm-path
            fn fast() {}
        ";
        assert_eq!(rules_hit(unknown), vec!["lint-hygiene"]);
    }

    #[test]
    fn findings_render_as_text_and_json() {
        let findings = vec![Finding {
            file: "crates/x/src/lib.rs".into(),
            line: 12,
            rule: "panic-policy",
            message: "a \"quoted\" message".into(),
        }];
        let text = render_text(&findings);
        assert!(text.contains("crates/x/src/lib.rs:12: [panic-policy]"));
        let json = render_json(&findings);
        assert!(json.contains("\"line\": 12"));
        assert!(json.contains("\\\"quoted\\\""));
        assert_eq!(render_json(&[]), "[]\n");
    }

    /// The seeded acceptance fixture: a hot-path region calls a helper
    /// in another module (file), which calls a second helper, which
    /// writes the broker-global directory. The finding lands at the
    /// hot-path call site with the full chain and the terminal site.
    #[test]
    fn hot_path_call_into_another_module_reports_the_full_chain() {
        let hot = "
            // lint: hot-path
            fn publish(&self) {
                refresh_routing(self);
            }
            // lint: end-hot-path
        ";
        let cold = "
            fn refresh_routing(b: &Broker) {
                rebuild_table(b);
            }
            fn rebuild_table(b: &Broker) {
                let directory = b.inner.directory.write();
                drop(directory);
            }
        ";
        let findings = lint_files(&[
            ("crates/broker/src/hot.rs".into(), hot.into()),
            ("crates/core/src/cold.rs".into(), cold.into()),
        ]);
        assert_eq!(findings.len(), 1, "{}", render_text(&findings));
        let f = &findings[0];
        assert_eq!(f.rule, "hot-path-locking");
        assert_eq!(f.file, "crates/broker/src/hot.rs");
        assert_eq!(f.line, 4);
        assert!(f.message.contains("refresh_routing → rebuild_table"));
        assert!(f.message.contains("`directory.write()`"));
        assert!(f.message.contains("crates/core/src/cold.rs:6"));
    }

    #[test]
    fn transitive_panic_reports_at_the_hot_call_site() {
        let files = [
            (
                "hot.rs".to_owned(),
                "// lint: hot-path\nfn fast(&self) { decode(self); }\n// lint: end-hot-path\n"
                    .to_owned(),
            ),
            (
                "cold.rs".to_owned(),
                "fn decode(b: &B) { parse_header(b).unwrap(); }\n".to_owned(),
            ),
        ];
        let findings = lint_files(&files);
        assert_eq!(findings.len(), 1, "{}", render_text(&findings));
        assert_eq!(findings[0].rule, "panic-policy");
        assert_eq!(findings[0].file, "hot.rs");
        assert!(findings[0].message.contains("decode"));
        assert!(findings[0].message.contains(".unwrap()"));
    }

    /// Mutual recursion must terminate the fixpoint and still report.
    #[test]
    fn recursive_helpers_terminate_and_report() {
        let src = "
            // lint: hot-path
            fn fast(&self) { ping(3); }
            // lint: end-hot-path
            fn ping(n: u32) {
                if n > 0 { pong(n); }
                let g = self.maintenance.lock();
                drop(g);
            }
            fn pong(n: u32) { ping(n - 1); }
        ";
        let hits = rules_hit(src);
        assert_eq!(hits, vec!["hot-path-locking"]);
    }

    /// An allow at the hot-path call site stops the inherited effect —
    /// one written reason covers the whole chain above it.
    #[test]
    fn allow_at_the_call_site_stops_propagation() {
        let src = r#"
            // lint: hot-path
            fn fast(&self) {
                // lint: allow(hot-path-locking, reason = "epoch sweep is amortised against the publish budget")
                sweep_epochs(self);
            }
            // lint: end-hot-path
            fn sweep_epochs(b: &B) {
                let g = b.maintenance.lock();
                drop(g);
            }
        "#;
        assert!(rules_hit(src).is_empty());
    }

    /// Two same-named definitions: only effects common to both
    /// propagate, and the printed chain marks the ambiguity.
    #[test]
    fn ambiguous_callees_propagate_shared_effects_and_say_so() {
        let variant_a = "
            fn prune(&self) {
                let maintenance = self.inner.maintenance.lock();
                drop(maintenance);
            }
        ";
        let variant_b = "
            fn prune(&self) {
                let maintenance = self.inner.maintenance.lock();
                let directory = self.inner.directory.write();
                drop((maintenance, directory));
            }
        ";
        let hot = "
            // lint: hot-path
            fn sweep(&self) { prune(self); }
            // lint: end-hot-path
        ";
        let findings = lint_files(&[
            ("a.rs".into(), variant_a.into()),
            ("b.rs".into(), variant_b.into()),
            ("hot.rs".into(), hot.into()),
        ]);
        assert_eq!(findings.len(), 1, "{}", render_text(&findings));
        assert!(findings[0].message.contains("`maintenance`"));
        assert!(findings[0].message.contains("(×2 defs)"));
        assert!(
            !render_text(&findings).contains("`directory`"),
            "directory is not common to both candidates and must not propagate"
        );
    }

    #[test]
    fn blocking_while_locked_flags_sleeps_and_exempts_condvar_waits() {
        let bad = "
            fn drain(&self) {
                let senders = self.inner.senders.read();
                sleep(Duration::from_millis(5));
                drop(senders);
            }
        ";
        assert_eq!(rules_hit(bad), vec!["blocking-while-locked"]);

        // The wait *consumes* the guard it names: the condvar releases
        // it for the sleep, so nothing is held.
        let condvar = "
            fn dequeue(&self) {
                let mut state = self.state.lock();
                while state.queue.is_empty() {
                    self.not_empty.wait(&mut state);
                }
            }
        ";
        assert!(rules_hit(condvar).is_empty());

        // Explicitly released before the block: fine.
        let released = "
            fn pace(&self) {
                let senders = self.inner.senders.read();
                drop(senders);
                sleep(Duration::from_millis(5));
            }
        ";
        assert!(rules_hit(released).is_empty());
    }

    #[test]
    fn blocking_while_locked_traces_through_helpers() {
        let src = "
            fn flush(&self) {
                let directory = self.inner.directory.read();
                settle(self);
                drop(directory);
            }
            fn settle(&self) {
                self.worker.join()
            }
        ";
        let findings = lint_source("fixture.rs", src);
        assert_eq!(findings.len(), 1, "{}", render_text(&findings));
        assert_eq!(findings[0].rule, "blocking-while-locked");
        assert!(findings[0].message.contains("settle"));
        assert!(findings[0].message.contains(".join()"));
        assert!(findings[0].message.contains("`directory`"));
    }

    #[test]
    fn atomic_ordering_requires_justification_outside_counter_cells() {
        let bad = "
            fn spin(&self) {
                while self.flag.load(Ordering::Relaxed) {}
            }
        ";
        assert_eq!(rules_hit(bad), vec!["atomic-ordering"]);

        let good = "
            fn tally(&self) {
                self.stats.events_published.fetch_add(1, Ordering::Relaxed);
                // ordering: handshake is the scope join, not this flag.
                while self.flag.load(Ordering::Relaxed) {}
            }
        ";
        assert!(rules_hit(good).is_empty());
    }

    /// Satellite regression: the allow must cover the *whole statement*
    /// that follows it — the old next-code-line scoping leaked findings
    /// on the continuation lines of a multi-line call chain.
    #[test]
    fn allow_covers_the_full_statement_not_just_the_next_line() {
        let multiline = r#"
            // lint: hot-path
            fn fast(&self) {
                // lint: allow(hot-path-locking, reason = "startup-only snapshot read")
                let snapshot = self
                    .inner
                    .directory
                    .read();
                drop(snapshot);
            }
            // lint: end-hot-path
        "#;
        assert!(rules_hit(multiline).is_empty());

        // …and no further: the next statement still reports.
        let next_statement = r#"
            // lint: hot-path
            fn fast(&self) {
                // lint: allow(hot-path-locking, reason = "first read is amortised")
                let a = self.inner.directory.read();
                let b = self.inner.directory.read();
                drop((a, b));
            }
            // lint: end-hot-path
        "#;
        assert_eq!(rules_hit(next_statement), vec!["hot-path-locking"]);
    }

    #[test]
    fn the_workspace_itself_lints_clean() {
        // The analysis crate lives two levels below the workspace root;
        // when run via `cargo test -p boolmatch-analysis` the manifest
        // dir is crates/analysis.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root exists")
            .to_path_buf();
        let findings = lint_workspace(&root).expect("workspace sources are readable");
        assert!(
            findings.is_empty(),
            "invariant-lint found violations:\n{}",
            render_text(&findings)
        );
    }
}
