//! Delivery channel policies.

use std::sync::Arc;

use boolmatch_types::Event;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TrySendError};

/// How notifications are queued towards a slow subscriber.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DeliveryPolicy {
    /// Unbounded queue: the broker never blocks and never drops; a
    /// subscriber that stops draining grows the queue.
    #[default]
    Unbounded,
    /// Bounded queue of the given capacity; when full, new
    /// notifications for that subscriber are **dropped** and counted in
    /// [`crate::BrokerStats::notifications_dropped`]. This is the
    /// classic real-time notification trade-off (Elvin's "quenching"
    /// drops at the source instead).
    DropNewest {
        /// Queue capacity per subscriber.
        capacity: usize,
    },
}

impl DeliveryPolicy {
    pub(crate) fn channel(self) -> (Sender<Arc<Event>>, Receiver<Arc<Event>>) {
        match self {
            DeliveryPolicy::Unbounded => unbounded(),
            DeliveryPolicy::DropNewest { capacity } => bounded(capacity),
        }
    }

    /// Attempts delivery under this policy. Returns:
    /// `Ok(true)` delivered, `Ok(false)` dropped (queue full),
    /// `Err(())` subscriber disconnected.
    pub(crate) fn deliver(
        self,
        sender: &Sender<Arc<Event>>,
        event: Arc<Event>,
    ) -> Result<bool, ()> {
        match sender.try_send(event) {
            Ok(()) => Ok(true),
            Err(TrySendError::Full(_)) => Ok(false),
            Err(TrySendError::Disconnected(_)) => Err(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event() -> Arc<Event> {
        Arc::new(Event::builder().attr("a", 1_i64).build())
    }

    #[test]
    fn unbounded_never_drops() {
        let (tx, rx) = DeliveryPolicy::Unbounded.channel();
        for _ in 0..1000 {
            assert_eq!(DeliveryPolicy::Unbounded.deliver(&tx, event()), Ok(true));
        }
        assert_eq!(rx.len(), 1000);
    }

    #[test]
    fn drop_newest_drops_when_full() {
        let policy = DeliveryPolicy::DropNewest { capacity: 2 };
        let (tx, rx) = policy.channel();
        assert_eq!(policy.deliver(&tx, event()), Ok(true));
        assert_eq!(policy.deliver(&tx, event()), Ok(true));
        assert_eq!(policy.deliver(&tx, event()), Ok(false));
        rx.recv().unwrap();
        assert_eq!(policy.deliver(&tx, event()), Ok(true));
    }

    #[test]
    fn disconnected_receiver_is_reported() {
        let (tx, rx) = DeliveryPolicy::Unbounded.channel();
        drop(rx);
        assert_eq!(DeliveryPolicy::Unbounded.deliver(&tx, event()), Err(()));
    }
}
