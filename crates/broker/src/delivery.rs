//! The asynchronous delivery tier: per-subscriber notification queues,
//! overflow policies and slow-consumer quarantine.
//!
//! Every subscriber owns one bounded (or unbounded) [`NotifyQueue`]: a
//! ring buffer of `Arc<Event>` plus lag counters, guarded by a classed
//! leaf mutex (`delivery-queue[g]`, see
//! `boolmatch_core::lock_classes::delivery_queue`). A publish
//! **enqueues and returns** — what happens to a full queue is the
//! subscriber's [`DeliveryPolicy`], not the publisher's problem — and
//! the queue is drained either by the subscriber pulling on its
//! [`crate::Subscription`] handle or, for consumer-callback
//! subscriptions, by the broker's delivery worker pool.
//!
//! The quarantine state machine (driven by
//! [`crate::Broker::delivery_maintenance_tick`]) demotes a subscriber
//! whose lag stays above the configured watermark: its queue is capped
//! at [`QuarantineConfig::quarantine_capacity`] (degrading to
//! drop-newest regardless of policy) until the lag drains, or — with
//! [`QuarantineConfig::auto_disconnect`] — the subscriber is dropped
//! outright.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use boolmatch_core::lock_classes;
use boolmatch_types::Event;
use parking_lot::{Condvar, Mutex};

/// What a full queue does with the next notification — per subscriber,
/// chosen at [`crate::Broker::subscribe_with_policy`] time or
/// defaulted from [`crate::BrokerBuilder::delivery`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DeliveryPolicy {
    /// Unbounded queue: the broker never blocks and never drops; a
    /// subscriber that stops draining grows the queue (pair with
    /// [`crate::BrokerBuilder::quarantine`] to bound the damage).
    #[default]
    Unbounded,
    /// Bounded queue; when full, **new** notifications are dropped and
    /// counted in [`crate::BrokerStats::notifications_dropped`]. This
    /// is the classic real-time notification trade-off (Elvin's
    /// "quenching" drops at the source instead): the subscriber keeps
    /// the oldest backlog.
    DropNewest {
        /// Queue capacity per subscriber.
        capacity: usize,
    },
    /// Bounded queue; when full, the **oldest** queued notification is
    /// evicted (counted dropped) to make room — the subscriber always
    /// holds the freshest `capacity` events, the right policy for
    /// last-value-wins feeds like tickers.
    DropOldest {
        /// Queue capacity per subscriber.
        capacity: usize,
    },
    /// Bounded queue; overflow **disconnects** the subscriber: its
    /// queue closes (already-queued events stay drainable), the
    /// overflowing notification counts in
    /// [`crate::BrokerStats::notifications_disconnected`], and the
    /// broker unsubscribes it — the strictest contract: fall behind
    /// and you are gone.
    Disconnect {
        /// Queue capacity per subscriber.
        capacity: usize,
    },
    /// Bounded queue with **bounded backpressure**: a publish into a
    /// full queue waits up to `timeout` for the subscriber to drain,
    /// then drops the notification. The wait holds no broker lock —
    /// only this subscriber's queue lock — so it delays the publishing
    /// thread, never unsubscribe or other subscribers' deliveries.
    Block {
        /// Queue capacity per subscriber.
        capacity: usize,
        /// Longest a publish will wait for space on this queue.
        timeout: Duration,
    },
}

/// Slow-consumer quarantine thresholds; enable with
/// [`crate::BrokerBuilder::quarantine`] and drive with
/// [`crate::Broker::delivery_maintenance_tick`] (or the background
/// thread from [`crate::BrokerBuilder::delivery_maintenance`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuarantineConfig {
    /// Queue depth above which a tick counts a strike against the
    /// subscriber (and below half of which a quarantined subscriber
    /// earns a recovery strike).
    pub lag_watermark: usize,
    /// Consecutive lagging ticks before demotion — and consecutive
    /// recovered ticks before release.
    pub strikes: u32,
    /// The capped queue depth while quarantined: the queue degrades to
    /// drop-newest at this capacity regardless of its policy, and the
    /// backlog beyond it is shed (oldest first) at demotion.
    pub quarantine_capacity: usize,
    /// Disconnect the subscriber at demotion instead of capping it.
    pub auto_disconnect: bool,
}

impl Default for QuarantineConfig {
    fn default() -> Self {
        QuarantineConfig {
            lag_watermark: 1_024,
            strikes: 3,
            quarantine_capacity: 64,
            auto_disconnect: false,
        }
    }
}

/// A consumer-callback subscription's event sink; see
/// [`crate::Broker::subscribe_consumer`].
pub(crate) type Consumer = Arc<dyn Fn(Arc<Event>) + Send + Sync>;

/// One subscriber's lag snapshot; see
/// [`crate::Broker::subscriber_lag`] and [`crate::Subscription::lag`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubscriberLag {
    /// Notifications currently queued (enqueued minus drained).
    pub queued: usize,
    /// Notifications ever placed on this queue.
    pub enqueued: u64,
    /// Notifications this queue shed: policy drops, block timeouts,
    /// drop-oldest evictions and quarantine backlog sheds.
    pub dropped: u64,
    /// Whether the subscriber is currently quarantined.
    pub quarantined: bool,
}

/// Where an enqueue attempt ended up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Enqueue {
    /// Placed on the queue.
    Delivered,
    /// Shed by policy (full bounded queue, block timeout, or the
    /// quarantine cap).
    Dropped,
    /// The queue was closed — subscriber gone or a
    /// [`DeliveryPolicy::Disconnect`] overflow just closed it. The
    /// caller should prune the subscription.
    Disconnected,
}

/// What one quarantine maintenance tick decided for a queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TickOutcome {
    /// No state change.
    Steady,
    /// Lag exceeded the watermark for the configured strikes: the
    /// queue is now capped and marked quarantined.
    Demoted,
    /// A quarantined queue drained below the recovery floor for the
    /// configured strikes: cap lifted.
    Recovered,
    /// Demotion under [`QuarantineConfig::auto_disconnect`]: the queue
    /// closed; the caller unsubscribes the id.
    Disconnect,
}

/// The mutable half of a queue, inside the classed leaf mutex.
#[derive(Default)]
struct QueueState {
    buf: VecDeque<Arc<Event>>,
    /// No further enqueues; queued events stay drainable. Set by
    /// unsubscribe, handle/receiver drop, `Disconnect` overflow,
    /// consumer panic, auto-disconnect quarantine and broker drop.
    closed: bool,
    /// Live pull-side handles ([`crate::Subscription`] +
    /// [`DeliveryReceiver`] clones); the queue closes when the last
    /// one drops, mirroring channel semantics.
    receivers: usize,
    /// `Some(cap)` while quarantined: overflow degrades to
    /// drop-newest at `cap` regardless of policy.
    cap_override: Option<usize>,
    /// Consecutive lagging (or, while quarantined, recovered)
    /// maintenance ticks.
    strikes: u32,
    /// A consumer drain job is queued or running; enqueue schedules a
    /// new one only on the `false → true` transition, and the drain
    /// clears it (under this lock) only after seeing the buffer empty
    /// — the classic wakeup protocol, race-free because both sides
    /// hold the queue lock.
    scheduled: bool,
    /// Receivers parked in `recv`/`recv_timeout` (skip the condvar
    /// notify when zero — the steady-state enqueue's fast path).
    waiting_recv: usize,
    /// Publishers parked in a [`DeliveryPolicy::Block`] wait.
    waiting_send: usize,
}

/// One subscriber's notification queue; shared by the broker's sender
/// map, the [`crate::Subscription`] handle and any in-flight drain
/// job via `Arc`.
pub(crate) struct NotifyQueue {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    policy: DeliveryPolicy,
    /// Consumer-callback subscriptions only; pull subscriptions leave
    /// it `None` and the drain-scheduling branch compiles to a load.
    consumer: Option<Consumer>,
    /// Lifetime notifications placed on the queue (lock-free for lag
    /// snapshots).
    enqueued: AtomicU64,
    /// Lifetime notifications this queue shed (see
    /// [`SubscriberLag::dropped`]).
    dropped: AtomicU64,
}

impl NotifyQueue {
    /// Creates the queue for subscription-id index `id_index`, classed
    /// into that id's delivery-queue lockdep group.
    pub(crate) fn new(id_index: usize, policy: DeliveryPolicy, consumer: Option<Consumer>) -> Self {
        let queue = NotifyQueue {
            state: Mutex::new(QueueState {
                receivers: 1,
                ..QueueState::default()
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            policy,
            consumer,
            enqueued: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        };
        queue
            .state
            .set_class(&lock_classes::delivery_queue(id_index));
        queue
    }

    pub(crate) fn consumer(&self) -> Option<Consumer> {
        self.consumer.clone()
    }

    // lint: hot-path — the enqueue path runs on every publish for
    // every matched subscriber: one classed leaf lock (this queue's),
    // no broker-global lock, no unwrap. A `Block` policy may park on
    // the queue's own condvar, still holding nothing else.

    /// Attempts to place `event` on the queue under this queue's
    /// policy. Returns the outcome plus whether the caller must
    /// schedule a consumer drain job (consumer queues only, on the
    /// empty→non-empty transition).
    pub(crate) fn enqueue(&self, event: Arc<Event>) -> (Enqueue, bool) {
        let mut state = self.state.lock();
        if state.closed {
            return (Enqueue::Disconnected, false);
        }
        let outcome = if let Some(cap) = state.cap_override {
            // Quarantined: drop-newest at the quarantine cap,
            // regardless of policy — graceful degradation, not the
            // subscriber's contract.
            if state.buf.len() >= cap {
                Enqueue::Dropped
            } else {
                state.buf.push_back(event);
                Enqueue::Delivered
            }
        } else {
            match self.policy {
                DeliveryPolicy::Unbounded => {
                    state.buf.push_back(event);
                    Enqueue::Delivered
                }
                DeliveryPolicy::DropNewest { capacity } => {
                    if state.buf.len() >= capacity {
                        Enqueue::Dropped
                    } else {
                        state.buf.push_back(event);
                        Enqueue::Delivered
                    }
                }
                DeliveryPolicy::DropOldest { capacity } => {
                    if capacity == 0 {
                        Enqueue::Dropped
                    } else {
                        if state.buf.len() >= capacity {
                            state.buf.pop_front();
                            self.dropped.fetch_add(1, Ordering::Relaxed);
                        }
                        state.buf.push_back(event);
                        Enqueue::Delivered
                    }
                }
                DeliveryPolicy::Disconnect { capacity } => {
                    if state.buf.len() >= capacity {
                        state.closed = true;
                        self.wake_all(&state);
                        Enqueue::Disconnected
                    } else {
                        state.buf.push_back(event);
                        Enqueue::Delivered
                    }
                }
                DeliveryPolicy::Block { capacity, timeout } => {
                    let deadline = Instant::now() + timeout;
                    let mut timed_out = false;
                    while state.buf.len() >= capacity && !state.closed && !timed_out {
                        let remaining = deadline.saturating_duration_since(Instant::now());
                        if remaining.is_zero() {
                            break;
                        }
                        state.waiting_send += 1;
                        timed_out = self.not_full.wait_for(&mut state, remaining).timed_out()
                            && state.buf.len() >= capacity;
                        state.waiting_send -= 1;
                    }
                    if state.closed {
                        Enqueue::Disconnected
                    } else if state.buf.len() >= capacity {
                        Enqueue::Dropped
                    } else {
                        state.buf.push_back(event);
                        Enqueue::Delivered
                    }
                }
            }
        };
        let mut schedule = false;
        if outcome == Enqueue::Delivered {
            self.enqueued.fetch_add(1, Ordering::Relaxed);
            if self.consumer.is_some() && !state.scheduled {
                state.scheduled = true;
                schedule = true;
            }
        } else if outcome == Enqueue::Dropped {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        let wake_recv = outcome == Enqueue::Delivered && state.waiting_recv > 0;
        drop(state);
        if wake_recv {
            self.not_empty.notify_one();
        }
        (outcome, schedule)
    }

    /// Moves up to `max` queued events into `out` for a consumer drain
    /// job. Returns `false` — clearing the scheduled bit under the
    /// lock — when the queue is empty, which is the job's signal to
    /// exit (an enqueue racing this sees the bit cleared and schedules
    /// a fresh job).
    pub(crate) fn pop_batch(&self, out: &mut Vec<Arc<Event>>, max: usize) -> bool {
        let mut state = self.state.lock();
        if state.buf.is_empty() {
            state.scheduled = false;
            return false;
        }
        let take = max.min(state.buf.len());
        out.extend(state.buf.drain(..take));
        let wake_send = state.waiting_send > 0;
        drop(state);
        if wake_send {
            self.not_full.notify_all();
        }
        true
    }

    // lint: end-hot-path

    /// Takes the next queued event without blocking.
    pub(crate) fn try_recv(&self) -> Option<Arc<Event>> {
        let mut state = self.state.lock();
        let event = state.buf.pop_front();
        let wake_send = event.is_some() && state.waiting_send > 0;
        drop(state);
        if wake_send {
            self.not_full.notify_one();
        }
        event
    }

    /// Blocks until an event arrives or the queue closes empty.
    pub(crate) fn recv(&self) -> Option<Arc<Event>> {
        let mut state = self.state.lock();
        loop {
            if let Some(event) = state.buf.pop_front() {
                let wake_send = state.waiting_send > 0;
                drop(state);
                if wake_send {
                    self.not_full.notify_one();
                }
                return Some(event);
            }
            if state.closed {
                return None;
            }
            state.waiting_recv += 1;
            self.not_empty.wait(&mut state);
            state.waiting_recv -= 1;
        }
    }

    /// [`NotifyQueue::recv`] bounded by `timeout`.
    pub(crate) fn recv_timeout(&self, timeout: Duration) -> Option<Arc<Event>> {
        let deadline = Instant::now() + timeout;
        let mut state = self.state.lock();
        loop {
            if let Some(event) = state.buf.pop_front() {
                let wake_send = state.waiting_send > 0;
                drop(state);
                if wake_send {
                    self.not_full.notify_one();
                }
                return Some(event);
            }
            if state.closed {
                return None;
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return None;
            }
            state.waiting_recv += 1;
            let _ = self.not_empty.wait_for(&mut state, remaining);
            state.waiting_recv -= 1;
        }
    }

    /// Drains everything currently queued.
    pub(crate) fn drain(&self) -> Vec<Arc<Event>> {
        let mut state = self.state.lock();
        let drained: Vec<Arc<Event>> = state.buf.drain(..).collect();
        let wake_send = !drained.is_empty() && state.waiting_send > 0;
        drop(state);
        if wake_send {
            self.not_full.notify_all();
        }
        drained
    }

    /// Events currently queued.
    pub(crate) fn len(&self) -> usize {
        self.state.lock().buf.len()
    }

    /// The lag snapshot surfaced through [`crate::Broker`] stats.
    pub(crate) fn lag(&self) -> SubscriberLag {
        let state = self.state.lock();
        SubscriberLag {
            queued: state.buf.len(),
            enqueued: self.enqueued.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            quarantined: state.cap_override.is_some(),
        }
    }

    /// Whether the subscriber is currently quarantined.
    pub(crate) fn quarantined(&self) -> bool {
        self.state.lock().cap_override.is_some()
    }

    /// Closes the queue: no further enqueues; parked receivers and
    /// blocked publishers wake immediately. Queued events stay
    /// drainable unless `discard` (consumer panic teardown, receiver
    /// death) frees them.
    pub(crate) fn close(&self, discard: bool) {
        let mut state = self.state.lock();
        state.closed = true;
        if discard {
            state.buf = VecDeque::new();
        }
        self.wake_all(&state);
    }

    /// Registers one more pull-side handle (receiver clone/detach).
    pub(crate) fn add_receiver(&self) {
        self.state.lock().receivers += 1;
    }

    /// Drops one pull-side handle; the last one out closes the queue
    /// and discards the backlog (nobody is left to drain it).
    pub(crate) fn drop_receiver(&self) {
        let mut state = self.state.lock();
        state.receivers = state.receivers.saturating_sub(1);
        if state.receivers == 0 && !state.closed {
            state.closed = true;
            state.buf = VecDeque::new();
            self.wake_all(&state);
        }
    }

    /// One quarantine maintenance tick; see [`TickOutcome`].
    pub(crate) fn maintenance_tick(&self, config: &QuarantineConfig) -> TickOutcome {
        let mut state = self.state.lock();
        if state.closed {
            return TickOutcome::Steady;
        }
        if state.cap_override.is_none() {
            if state.buf.len() > config.lag_watermark {
                state.strikes += 1;
            } else {
                state.strikes = 0;
            }
            if state.strikes < config.strikes.max(1) {
                return TickOutcome::Steady;
            }
            state.strikes = 0;
            if config.auto_disconnect {
                state.closed = true;
                self.wake_all(&state);
                return TickOutcome::Disconnect;
            }
            state.cap_override = Some(config.quarantine_capacity);
            // Shed the backlog beyond the cap, oldest first: the
            // freshest events are the ones a recovering consumer
            // still wants.
            while state.buf.len() > config.quarantine_capacity {
                state.buf.pop_front();
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
            TickOutcome::Demoted
        } else {
            if state.buf.len() <= config.lag_watermark / 2 {
                state.strikes += 1;
            } else {
                state.strikes = 0;
            }
            if state.strikes < config.strikes.max(1) {
                return TickOutcome::Steady;
            }
            state.strikes = 0;
            state.cap_override = None;
            TickOutcome::Recovered
        }
    }

    /// Wakes everyone parked on the queue (close paths).
    fn wake_all(&self, state: &QueueState) {
        if state.waiting_recv > 0 {
            self.not_empty.notify_all();
        }
        if state.waiting_send > 0 {
            self.not_full.notify_all();
        }
    }
}

impl std::fmt::Debug for NotifyQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let lag = self.lag();
        f.debug_struct("NotifyQueue")
            .field("policy", &self.policy)
            .field("queued", &lag.queued)
            .field("dropped", &lag.dropped)
            .field("quarantined", &lag.quarantined)
            .finish()
    }
}

/// A detached pull handle for a subscription's queue, returned by
/// [`crate::Subscription::detach`]: receiving continues, but dropping
/// the last handle no longer unsubscribes (use
/// [`crate::Broker::unsubscribe`]). Clones share the queue; when the
/// last clone drops, the queue closes and later deliveries count as
/// disconnected.
#[derive(Debug)]
pub struct DeliveryReceiver {
    queue: Arc<NotifyQueue>,
}

impl DeliveryReceiver {
    pub(crate) fn new(queue: Arc<NotifyQueue>) -> Self {
        queue.add_receiver();
        DeliveryReceiver { queue }
    }

    /// Takes the next queued notification without blocking.
    pub fn try_recv(&self) -> Option<Arc<Event>> {
        self.queue.try_recv()
    }

    /// Blocks until a notification arrives or the queue closes empty.
    pub fn recv(&self) -> Option<Arc<Event>> {
        self.queue.recv()
    }

    /// Blocks up to `timeout`; `None` on timeout or close.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Arc<Event>> {
        self.queue.recv_timeout(timeout)
    }

    /// Drains everything currently queued.
    pub fn drain(&self) -> Vec<Arc<Event>> {
        self.queue.drain()
    }

    /// Notifications currently queued.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Clone for DeliveryReceiver {
    fn clone(&self) -> Self {
        DeliveryReceiver::new(Arc::clone(&self.queue))
    }
}

impl Drop for DeliveryReceiver {
    fn drop(&mut self) {
        self.queue.drop_receiver();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event() -> Arc<Event> {
        Arc::new(Event::builder().attr("a", 1_i64).build())
    }

    fn queue(policy: DeliveryPolicy) -> NotifyQueue {
        NotifyQueue::new(0, policy, None)
    }

    #[test]
    fn unbounded_never_drops() {
        let q = queue(DeliveryPolicy::Unbounded);
        for _ in 0..1000 {
            assert_eq!(q.enqueue(event()).0, Enqueue::Delivered);
        }
        assert_eq!(q.len(), 1000);
        assert_eq!(q.lag().dropped, 0);
    }

    #[test]
    fn drop_newest_drops_when_full() {
        let q = queue(DeliveryPolicy::DropNewest { capacity: 2 });
        assert_eq!(q.enqueue(event()).0, Enqueue::Delivered);
        assert_eq!(q.enqueue(event()).0, Enqueue::Delivered);
        assert_eq!(q.enqueue(event()).0, Enqueue::Dropped);
        assert!(q.try_recv().is_some());
        assert_eq!(q.enqueue(event()).0, Enqueue::Delivered);
        assert_eq!(q.lag().dropped, 1);
    }

    #[test]
    fn drop_oldest_keeps_the_freshest() {
        let q = queue(DeliveryPolicy::DropOldest { capacity: 2 });
        for v in 0..5_i64 {
            let e = Arc::new(Event::builder().attr("v", v).build());
            assert_eq!(q.enqueue(e).0, Enqueue::Delivered);
        }
        let lag = q.lag();
        assert_eq!((lag.queued, lag.dropped, lag.enqueued), (2, 3, 5));
        let kept: Vec<i64> = q
            .drain()
            .iter()
            .map(|e| e.get("v").and_then(boolmatch_types::Value::as_int).unwrap())
            .collect();
        assert_eq!(kept, vec![3, 4]);
    }

    #[test]
    fn disconnect_policy_closes_on_overflow() {
        let q = queue(DeliveryPolicy::Disconnect { capacity: 1 });
        assert_eq!(q.enqueue(event()).0, Enqueue::Delivered);
        assert_eq!(q.enqueue(event()).0, Enqueue::Disconnected);
        // Closed, but the queued backlog stays drainable.
        assert_eq!(q.len(), 1);
        assert!(q.recv().is_some());
        assert!(q.recv().is_none());
    }

    #[test]
    fn block_policy_times_out_then_drops() {
        let q = queue(DeliveryPolicy::Block {
            capacity: 1,
            timeout: Duration::from_millis(20),
        });
        assert_eq!(q.enqueue(event()).0, Enqueue::Delivered);
        let start = Instant::now();
        assert_eq!(q.enqueue(event()).0, Enqueue::Dropped);
        assert!(start.elapsed() >= Duration::from_millis(15));
        assert_eq!(q.lag().dropped, 1);
    }

    #[test]
    fn block_policy_waits_for_a_drain() {
        let q = Arc::new(queue(DeliveryPolicy::Block {
            capacity: 1,
            timeout: Duration::from_secs(5),
        }));
        assert_eq!(q.enqueue(event()).0, Enqueue::Delivered);
        let q2 = Arc::clone(&q);
        let drainer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            q2.try_recv()
        });
        let start = Instant::now();
        assert_eq!(q.enqueue(event()).0, Enqueue::Delivered);
        assert!(start.elapsed() < Duration::from_secs(5));
        assert!(drainer.join().unwrap().is_some());
    }

    #[test]
    fn closed_queue_reports_disconnected() {
        let q = queue(DeliveryPolicy::Unbounded);
        q.close(false);
        assert_eq!(q.enqueue(event()).0, Enqueue::Disconnected);
    }

    #[test]
    fn last_receiver_drop_discards_and_closes() {
        let q = Arc::new(queue(DeliveryPolicy::Unbounded));
        q.enqueue(event());
        let extra = DeliveryReceiver::new(Arc::clone(&q));
        let clone = extra.clone();
        q.drop_receiver(); // the original Subscription-side handle
        drop(extra);
        assert_eq!(
            q.enqueue(event()).0,
            Enqueue::Delivered,
            "clone keeps it open"
        );
        drop(clone);
        assert_eq!(q.enqueue(event()).0, Enqueue::Disconnected);
        assert_eq!(q.len(), 0, "backlog discarded with the last receiver");
    }

    #[test]
    fn quarantine_demotes_caps_and_recovers() {
        let config = QuarantineConfig {
            lag_watermark: 4,
            strikes: 2,
            quarantine_capacity: 2,
            auto_disconnect: false,
        };
        let q = queue(DeliveryPolicy::Unbounded);
        for _ in 0..10 {
            q.enqueue(event());
        }
        assert_eq!(q.maintenance_tick(&config), TickOutcome::Steady);
        assert_eq!(q.maintenance_tick(&config), TickOutcome::Demoted);
        assert!(q.quarantined());
        // Backlog shed to the cap; overflow now drops newest.
        assert_eq!(q.len(), 2);
        assert_eq!(q.enqueue(event()).0, Enqueue::Dropped);
        // Drain below the recovery floor and earn the release.
        q.drain();
        assert_eq!(q.maintenance_tick(&config), TickOutcome::Steady);
        assert_eq!(q.maintenance_tick(&config), TickOutcome::Recovered);
        assert!(!q.quarantined());
        assert_eq!(q.enqueue(event()).0, Enqueue::Delivered);
    }

    #[test]
    fn quarantine_auto_disconnect_closes() {
        let config = QuarantineConfig {
            lag_watermark: 1,
            strikes: 1,
            quarantine_capacity: 1,
            auto_disconnect: true,
        };
        let q = queue(DeliveryPolicy::Unbounded);
        for _ in 0..3 {
            q.enqueue(event());
        }
        assert_eq!(q.maintenance_tick(&config), TickOutcome::Disconnect);
        assert_eq!(q.enqueue(event()).0, Enqueue::Disconnected);
    }

    #[test]
    fn healthy_ticks_reset_strikes() {
        let config = QuarantineConfig {
            lag_watermark: 2,
            strikes: 2,
            quarantine_capacity: 1,
            auto_disconnect: false,
        };
        let q = queue(DeliveryPolicy::Unbounded);
        for _ in 0..5 {
            q.enqueue(event());
        }
        assert_eq!(q.maintenance_tick(&config), TickOutcome::Steady);
        q.drain(); // consumer catches up before the second strike
        assert_eq!(q.maintenance_tick(&config), TickOutcome::Steady);
        for _ in 0..5 {
            q.enqueue(event());
        }
        // The strike count restarted: still one more tick to demotion.
        assert_eq!(q.maintenance_tick(&config), TickOutcome::Steady);
        assert_eq!(q.maintenance_tick(&config), TickOutcome::Demoted);
    }
}
