//! The broker itself.

use std::cell::RefCell;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use boolmatch_core::{
    EngineKind, FilterEngine, MatchScratch, MemoryUsage, SubscribeError, SubscriptionId,
};
use boolmatch_expr::{Expr, ParseError};
use boolmatch_types::Event;
use crossbeam::channel::Sender;
use parking_lot::RwLock;

use crate::delivery::DeliveryPolicy;
use crate::subscriber::Subscription;

/// Errors surfaced by [`Broker`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BrokerError {
    /// The subscription text failed to parse.
    Parse(ParseError),
    /// The engine refused the subscription.
    Subscribe(SubscribeError),
}

impl fmt::Display for BrokerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BrokerError::Parse(e) => write!(f, "subscription parse error: {e}"),
            BrokerError::Subscribe(e) => write!(f, "subscription rejected: {e}"),
        }
    }
}

impl Error for BrokerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BrokerError::Parse(e) => Some(e),
            BrokerError::Subscribe(e) => Some(e),
        }
    }
}

impl From<ParseError> for BrokerError {
    fn from(e: ParseError) -> Self {
        BrokerError::Parse(e)
    }
}

impl From<SubscribeError> for BrokerError {
    fn from(e: SubscribeError) -> Self {
        BrokerError::Subscribe(e)
    }
}

/// Monotonic operational counters; snapshot via [`Broker::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BrokerStats {
    /// Events accepted by [`Broker::publish`].
    pub events_published: u64,
    /// Notifications placed on subscriber queues.
    pub notifications_delivered: u64,
    /// Notifications dropped by a full [`DeliveryPolicy::DropNewest`]
    /// queue.
    pub notifications_dropped: u64,
    /// Subscriptions registered over the broker's lifetime.
    pub subscriptions_created: u64,
    /// Subscriptions removed (explicitly or by handle drop).
    pub subscriptions_removed: u64,
}

#[derive(Default)]
struct AtomicStats {
    events_published: AtomicU64,
    notifications_delivered: AtomicU64,
    notifications_dropped: AtomicU64,
    subscriptions_created: AtomicU64,
    subscriptions_removed: AtomicU64,
}

thread_local! {
    // One scratch per publisher thread, shared by all brokers on that
    // thread (sound: the scratch is engine-agnostic and self-restoring
    // between matches). It grows to the largest engine the thread ever
    // matched against and stays at that high-water mark until
    // [`trim_publish_scratch`] is called.
    static PUBLISH_SCRATCH: RefCell<MatchScratch> = RefCell::new(MatchScratch::new());
}

/// Releases the calling thread's publish scratch buffers.
///
/// [`Broker::publish`] keeps one [`MatchScratch`] per thread, sized to
/// the largest engine that thread has matched against. Long-lived
/// worker threads that once published to a huge broker and now serve
/// only small ones can call this to return the high-water allocation;
/// the next publish re-grows the scratch lazily.
pub fn trim_publish_scratch() {
    PUBLISH_SCRATCH.with(|cell| cell.borrow_mut().reset());
}

pub(crate) struct BrokerInner {
    engine: RwLock<Box<dyn FilterEngine + Send + Sync>>,
    senders: RwLock<HashMap<SubscriptionId, Sender<Arc<Event>>>>,
    policy: DeliveryPolicy,
    stats: AtomicStats,
}

impl BrokerInner {
    pub(crate) fn unsubscribe(&self, id: SubscriptionId) -> bool {
        let existed = self.senders.write().remove(&id).is_some();
        if existed {
            // The sender map is the source of truth; engine state follows.
            self.engine
                .write()
                .unsubscribe(id)
                .expect("engine and sender map are kept in sync");
            self.stats
                .subscriptions_removed
                .fetch_add(1, Ordering::Relaxed);
        }
        existed
    }
}

/// A content-based publish/subscribe broker; see the [crate docs](crate).
///
/// Cheap to clone (`Arc` inside); clones share the same engine and
/// subscriber registry.
#[derive(Clone)]
pub struct Broker {
    inner: Arc<BrokerInner>,
}

impl Broker {
    /// Starts configuring a broker.
    pub fn builder() -> BrokerBuilder {
        BrokerBuilder::default()
    }

    /// Registers a subscription written in the subscription language
    /// and returns the handle notifications arrive on.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::Parse`] for malformed text and
    /// [`BrokerError::Subscribe`] when the engine refuses the
    /// expression (e.g. a canonical engine hitting its DNF limit).
    pub fn subscribe(&self, expression: &str) -> Result<Subscription, BrokerError> {
        self.subscribe_expr(&Expr::parse(expression)?)
    }

    /// Registers an already-parsed subscription.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::Subscribe`] when the engine refuses it.
    pub fn subscribe_expr(&self, expr: &Expr) -> Result<Subscription, BrokerError> {
        let id = self.inner.engine.write().subscribe(expr)?;
        let (tx, rx) = self.inner.policy.channel();
        self.inner.senders.write().insert(id, tx);
        self.inner
            .stats
            .subscriptions_created
            .fetch_add(1, Ordering::Relaxed);
        Ok(Subscription::new(id, rx, Arc::downgrade(&self.inner)))
    }

    /// Removes a subscription by id (handles also unsubscribe on drop).
    /// Returns whether it was registered.
    pub fn unsubscribe(&self, id: SubscriptionId) -> bool {
        self.inner.unsubscribe(id)
    }

    /// Publishes an event: matches it against every subscription and
    /// queues notifications to the matching subscribers. Returns the
    /// number of notifications delivered.
    ///
    /// Matching runs under the engine's **read** lock with a
    /// thread-local [`MatchScratch`], so concurrent publishers match in
    /// parallel; the lock is released before delivery. The scratch's
    /// matched buffer is reused across publishes on the same thread —
    /// the steady-state publish path allocates only the `Arc` around
    /// the event.
    ///
    /// Subscribers found disconnected (handle dropped without
    /// unsubscribe — possible when the handle's broker reference was
    /// already gone) are pruned.
    pub fn publish(&self, event: Event) -> usize {
        PUBLISH_SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            {
                let engine = self.inner.engine.read();
                engine.match_event_into(&event, scratch);
            }
            self.inner
                .stats
                .events_published
                .fetch_add(1, Ordering::Relaxed);
            self.deliver_matched(event, scratch.matched())
        })
    }

    /// Queues `event` to the subscribers in `matched`.
    fn deliver_matched(&self, event: Event, matched: &[SubscriptionId]) -> usize {
        if matched.is_empty() {
            return 0;
        }
        let event = Arc::new(event);
        let mut delivered = 0usize;
        let mut dead: Vec<SubscriptionId> = Vec::new();
        {
            let senders = self.inner.senders.read();
            for id in matched {
                let Some(sender) = senders.get(id) else {
                    continue;
                };
                match self.inner.policy.deliver(sender, Arc::clone(&event)) {
                    Ok(true) => delivered += 1,
                    Ok(false) => {
                        self.inner
                            .stats
                            .notifications_dropped
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    Err(()) => dead.push(*id),
                }
            }
        }
        for id in dead {
            self.inner.unsubscribe(id);
        }
        self.inner
            .stats
            .notifications_delivered
            .fetch_add(delivered as u64, Ordering::Relaxed);
        delivered
    }

    /// A cloneable publishing handle for producer threads.
    pub fn publisher(&self) -> Publisher {
        Publisher {
            broker: self.clone(),
        }
    }

    /// Number of live subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.inner.senders.read().len()
    }

    /// The engine's memory breakdown.
    pub fn memory_usage(&self) -> MemoryUsage {
        self.inner.engine.read().memory_usage()
    }

    /// Which engine kind the broker runs.
    pub fn engine_kind(&self) -> EngineKind {
        self.inner.engine.read().kind()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> BrokerStats {
        let s = &self.inner.stats;
        BrokerStats {
            events_published: s.events_published.load(Ordering::Relaxed),
            notifications_delivered: s.notifications_delivered.load(Ordering::Relaxed),
            notifications_dropped: s.notifications_dropped.load(Ordering::Relaxed),
            subscriptions_created: s.subscriptions_created.load(Ordering::Relaxed),
            subscriptions_removed: s.subscriptions_removed.load(Ordering::Relaxed),
        }
    }
}

impl fmt::Debug for Broker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Broker")
            .field("engine", &self.engine_kind())
            .field("subscriptions", &self.subscription_count())
            .finish()
    }
}

/// A cloneable handle for publishing from producer threads.
///
/// # Examples
///
/// ```
/// use boolmatch_broker::Broker;
/// use boolmatch_types::Event;
///
/// let broker = Broker::builder().build();
/// let publisher = broker.publisher();
/// std::thread::spawn(move || {
///     publisher.publish(Event::builder().attr("n", 1_i64).build());
/// })
/// .join()
/// .unwrap();
/// ```
#[derive(Clone, Debug)]
pub struct Publisher {
    broker: Broker,
}

impl Publisher {
    /// Publishes an event; see [`Broker::publish`].
    pub fn publish(&self, event: Event) -> usize {
        self.broker.publish(event)
    }
}

/// Configures and builds a [`Broker`].
#[derive(Default)]
pub struct BrokerBuilder {
    kind: Option<EngineKind>,
    custom: Option<Box<dyn FilterEngine + Send + Sync>>,
    policy: DeliveryPolicy,
}

impl fmt::Debug for BrokerBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BrokerBuilder")
            .field("kind", &self.kind)
            .field("custom", &self.custom.as_ref().map(|e| e.kind()))
            .field("policy", &self.policy)
            .finish()
    }
}

impl BrokerBuilder {
    /// Selects the matching engine (default:
    /// [`EngineKind::NonCanonical`]).
    #[must_use]
    pub fn engine(mut self, kind: EngineKind) -> Self {
        self.kind = Some(kind);
        self
    }

    /// Supplies a pre-built (possibly custom) engine instead of an
    /// [`EngineKind`]; takes precedence over [`BrokerBuilder::engine`].
    /// Useful for non-default engine configurations and for
    /// instrumented engines in tests.
    #[must_use]
    pub fn engine_instance(mut self, engine: Box<dyn FilterEngine + Send + Sync>) -> Self {
        self.custom = Some(engine);
        self
    }

    /// Sets the delivery policy (default:
    /// [`DeliveryPolicy::Unbounded`]).
    #[must_use]
    pub fn delivery(mut self, policy: DeliveryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Builds the broker.
    pub fn build(self) -> Broker {
        let engine = self
            .custom
            .unwrap_or_else(|| self.kind.unwrap_or(EngineKind::NonCanonical).build());
        Broker {
            inner: Arc::new(BrokerInner {
                engine: RwLock::new(engine),
                senders: RwLock::new(HashMap::new()),
                policy: self.policy,
                stats: AtomicStats::default(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(pairs: &[(&str, i64)]) -> Event {
        Event::from_pairs(pairs.iter().map(|(n, v)| (*n, *v)))
    }

    #[test]
    fn subscribe_publish_receive() {
        let broker = Broker::builder().build();
        let sub = broker.subscribe("a = 1 and b = 2").unwrap();
        assert_eq!(broker.publish(ev(&[("a", 1), ("b", 2)])), 1);
        assert_eq!(broker.publish(ev(&[("a", 1)])), 0);
        let got = sub.try_recv().unwrap();
        assert_eq!(got.get("b"), Some(&2_i64.into()));
        assert!(sub.try_recv().is_none());
    }

    #[test]
    fn every_engine_kind_works() {
        for kind in EngineKind::ALL {
            let broker = Broker::builder().engine(kind).build();
            assert_eq!(broker.engine_kind(), kind);
            let sub = broker.subscribe("(a = 1 or b = 2) and c = 3").unwrap();
            assert_eq!(broker.publish(ev(&[("b", 2), ("c", 3)])), 1);
            assert!(sub.try_recv().is_some());
        }
    }

    #[test]
    fn parse_errors_surface() {
        let broker = Broker::builder().build();
        assert!(matches!(
            broker.subscribe("a >"),
            Err(BrokerError::Parse(_))
        ));
    }

    #[test]
    fn explicit_unsubscribe_stops_delivery() {
        let broker = Broker::builder().build();
        let sub = broker.subscribe("a = 1").unwrap();
        let id = sub.id();
        assert!(broker.unsubscribe(id));
        assert!(!broker.unsubscribe(id));
        assert_eq!(broker.publish(ev(&[("a", 1)])), 0);
        assert_eq!(broker.subscription_count(), 0);
    }

    #[test]
    fn handle_drop_unsubscribes() {
        let broker = Broker::builder().build();
        {
            let _sub = broker.subscribe("a = 1").unwrap();
            assert_eq!(broker.subscription_count(), 1);
        }
        assert_eq!(broker.subscription_count(), 0);
        assert_eq!(broker.publish(ev(&[("a", 1)])), 0);
        let stats = broker.stats();
        assert_eq!(stats.subscriptions_created, 1);
        assert_eq!(stats.subscriptions_removed, 1);
    }

    #[test]
    fn drop_newest_policy_counts_drops() {
        let broker = Broker::builder()
            .delivery(DeliveryPolicy::DropNewest { capacity: 1 })
            .build();
        let sub = broker.subscribe("a = 1").unwrap();
        assert_eq!(broker.publish(ev(&[("a", 1)])), 1);
        assert_eq!(broker.publish(ev(&[("a", 1)])), 0); // queue full
        assert_eq!(broker.stats().notifications_dropped, 1);
        assert!(sub.try_recv().is_some());
        assert_eq!(broker.publish(ev(&[("a", 1)])), 1);
    }

    #[test]
    fn fanout_to_many_subscribers() {
        let broker = Broker::builder().build();
        let subs: Vec<_> = (0..20)
            .map(|_| broker.subscribe("tick = 1").unwrap())
            .collect();
        assert_eq!(broker.publish(ev(&[("tick", 1)])), 20);
        for sub in &subs {
            assert!(sub.try_recv().is_some());
        }
    }

    #[test]
    fn concurrent_publishers_and_subscribers() {
        let broker = Broker::builder().build();
        let subs: Vec<_> = (0..8)
            .map(|i| broker.subscribe(&format!("topic = {i}")).unwrap())
            .collect();
        let mut handles = Vec::new();
        for t in 0..4 {
            let publisher = broker.publisher();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    publisher.publish(Event::builder().attr("topic", ((t + i) % 8) as i64).build());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total: usize = subs.iter().map(|s| s.drain().len()).sum();
        assert_eq!(total, 400);
        assert_eq!(broker.stats().events_published, 400);
        assert_eq!(broker.stats().notifications_delivered, 400);
    }

    #[test]
    fn stats_snapshot_is_consistent() {
        let broker = Broker::builder().build();
        let _sub = broker.subscribe("a = 1").unwrap();
        broker.publish(ev(&[("a", 1)]));
        broker.publish(ev(&[("a", 2)]));
        let s = broker.stats();
        assert_eq!(s.events_published, 2);
        assert_eq!(s.notifications_delivered, 1);
        assert_eq!(s.subscriptions_created, 1);
    }

    #[test]
    fn memory_usage_is_exposed() {
        let broker = Broker::builder().build();
        let _sub = broker.subscribe("(a = 1 or b = 2) and c = 3").unwrap();
        assert!(broker.memory_usage().total() > 0);
    }

    #[test]
    fn trim_publish_scratch_keeps_publishing_correct() {
        let broker = Broker::builder().build();
        let sub = broker.subscribe("a = 1").unwrap();
        assert_eq!(broker.publish(ev(&[("a", 1)])), 1);
        // Trimming between publishes releases the thread's buffers; the
        // next publish re-grows them and still matches correctly.
        trim_publish_scratch();
        assert_eq!(broker.publish(ev(&[("a", 1)])), 1);
        assert_eq!(sub.drain().len(), 2);
    }
}
