//! The broker itself.

use std::cell::RefCell;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, OnceLock, PoisonError, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

use boolmatch_core::{
    attribute_hash, dominant_eq_attr, lock_classes, BatchScratch, BatchScratchPool, BoxedEngine,
    EngineKind, FanOut, FanOutPool, FilterEngine, MatchScratch, MatchStats, MemoryUsage,
    PlacementPolicy, ScratchLease, ScratchPool, ShardSynopsis, ShardTranslation, SubscribeError,
    SubscriptionDirectory, SubscriptionId, WorkerPool,
};
use boolmatch_expr::{Expr, ParseError};
use boolmatch_types::Event;
use parking_lot::{Mutex, RwLock};

use crate::delivery::{
    Consumer, DeliveryPolicy, Enqueue, NotifyQueue, QuarantineConfig, SubscriberLag, TickOutcome,
};
use crate::subscriber::Subscription;

/// Errors surfaced by [`Broker`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BrokerError {
    /// The subscription text failed to parse.
    Parse(ParseError),
    /// The engine refused the subscription.
    Subscribe(SubscribeError),
}

impl fmt::Display for BrokerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BrokerError::Parse(e) => write!(f, "subscription parse error: {e}"),
            BrokerError::Subscribe(e) => write!(f, "subscription rejected: {e}"),
        }
    }
}

impl Error for BrokerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BrokerError::Parse(e) => Some(e),
            BrokerError::Subscribe(e) => Some(e),
        }
    }
}

impl From<ParseError> for BrokerError {
    fn from(e: ParseError) -> Self {
        BrokerError::Parse(e)
    }
}

impl From<SubscribeError> for BrokerError {
    fn from(e: SubscribeError) -> Self {
        BrokerError::Subscribe(e)
    }
}

/// Monotonic operational counters; snapshot via [`Broker::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BrokerStats {
    /// Events accepted by [`Broker::publish`].
    pub events_published: u64,
    /// Notifications placed on subscriber queues.
    pub notifications_delivered: u64,
    /// Notifications shed at enqueue: a full
    /// [`DeliveryPolicy::DropNewest`] queue, a timed-out
    /// [`DeliveryPolicy::Block`] wait, or a quarantine-capped queue.
    /// (Per-subscriber shed totals — including the evicted-oldest
    /// notifications a [`DeliveryPolicy::DropOldest`] queue replaces —
    /// are in [`SubscriberLag::dropped`].)
    pub notifications_dropped: u64,
    /// Notifications addressed to a subscriber whose queue was already
    /// closed — handle dropped without unsubscribe, or torn down by a
    /// [`DeliveryPolicy::Disconnect`] overflow / consumer panic /
    /// quarantine auto-disconnect. Each such send also prunes the
    /// subscription; before this counter existed they vanished
    /// silently.
    pub notifications_disconnected: u64,
    /// Subscriptions registered over the broker's lifetime.
    pub subscriptions_created: u64,
    /// Subscriptions removed (explicitly or by handle drop).
    pub subscriptions_removed: u64,
    /// Subscriptions live-migrated between shards by
    /// [`Broker::migrate`] / [`Broker::rebalance`] /
    /// [`Broker::rebalance_by_match_frequency`] / [`Broker::resize`]
    /// (including the background rebalance thread). Migration never
    /// changes a subscription's id or its delivery stream — this
    /// counter only measures rebalancing work.
    pub subscriptions_migrated: u64,
    /// Parallel fan-out worker jobs that died (panicked) before
    /// contributing their shard's matches. Any nonzero value means some
    /// publishes delivered **without** that shard's subscribers — the
    /// parallel ≡ sequential contract was broken and the engine that
    /// panicked needs investigating.
    pub fanout_worker_failures: u64,
    /// Slow-consumer demotions by [`Broker::delivery_maintenance_tick`]
    /// (including auto-disconnects): a subscriber's lag stayed over the
    /// [`QuarantineConfig::lag_watermark`] for the configured strikes
    /// and its queue was capped (or closed).
    pub subscribers_quarantined: u64,
    /// Quarantined subscribers whose lag drained back under the
    /// recovery floor and whose queue cap was lifted.
    pub quarantine_recoveries: u64,
    /// Consumer callbacks ([`Broker::subscribe_consumer`]) that
    /// panicked; each panic tears down only its own subscription — the
    /// delivery worker survives and every other subscriber is
    /// unaffected.
    pub consumer_panics: u64,
}

#[derive(Default)]
struct AtomicStats {
    events_published: AtomicU64,
    notifications_delivered: AtomicU64,
    notifications_dropped: AtomicU64,
    notifications_disconnected: AtomicU64,
    subscriptions_created: AtomicU64,
    subscriptions_removed: AtomicU64,
    subscriptions_migrated: AtomicU64,
    fanout_worker_failures: AtomicU64,
    subscribers_quarantined: AtomicU64,
    quarantine_recoveries: AtomicU64,
    consumer_panics: AtomicU64,
}

/// Per-publisher-thread reusable buffers: the match scratch plus the
/// global matched-id accumulator (publish), the batch scratch, skip
/// mask, per-event matched buckets and `Arc` buffer (publish_batch),
/// and the delivery snapshot of matched subscribers' queue handles.
#[derive(Default)]
struct PublishState {
    scratch: MatchScratch,
    batch: BatchScratch,
    skip: Vec<bool>,
    matched: Vec<SubscriptionId>,
    buckets: Vec<Vec<SubscriptionId>>,
    event_arcs: Vec<Arc<Event>>,
    targets: Vec<(SubscriptionId, Arc<NotifyQueue>)>,
}

thread_local! {
    // One state per publisher thread, shared by all brokers on that
    // thread (sound: the scratch is engine-agnostic and self-restoring
    // between matches). It grows to the largest engine the thread ever
    // matched against and stays at that high-water mark until
    // [`trim_publish_scratch`] is called.
    static PUBLISH_STATE: RefCell<PublishState> = RefCell::new(PublishState::default());
}

/// Releases the calling thread's publish scratch buffers.
///
/// [`Broker::publish`] keeps one [`MatchScratch`] (plus a matched-id
/// accumulator) per thread, sized to the largest engine that thread has
/// matched against. Long-lived worker threads that once published to a
/// huge broker and now serve only small ones can call this to return
/// the high-water allocation; the next publish re-grows the buffers
/// lazily.
pub fn trim_publish_scratch() {
    PUBLISH_STATE.with(|cell| *cell.borrow_mut() = PublishState::default());
}

/// Default [`BrokerBuilder::parallel_threshold`]: a publish fans out
/// across the shards in parallel once this many subscriptions are live
/// (and the broker has at least two shards). Below it, the per-shard
/// match is too cheap to amortise the fan-out rendezvous and the
/// sequential shard walk wins.
pub const DEFAULT_PARALLEL_THRESHOLD: usize = 4_096;

/// Default [`BrokerBuilder::scratch_trim_cap`]: a fan-out scratch
/// returning to the pool with more heap than this is trimmed instead of
/// parked at its high-water capacity, so one pathological event (a
/// huge candidate spike) cannot pin its peak allocation in every pooled
/// scratch forever. Generous on purpose — steady-state workloads far
/// below it never trim and so never re-allocate.
pub const DEFAULT_SCRATCH_TRIM_CAP: usize = 8 << 20;

/// Subscriptions one background-rebalance tick moves at most — the
/// "small chunks" that keep continuous rebalancing from ever stalling a
/// shard pair for long.
pub const BACKGROUND_REBALANCE_CHUNK: usize = 32;

/// Absolute per-tick match-delta floor below which
/// [`Broker::rebalance_by_match_frequency`] treats shard hit skew as
/// noise and moves nothing.
pub const MATCH_FREQUENCY_SKEW_FLOOR: u64 = 16;

/// Default number of delivery worker threads (the pool draining
/// consumer-callback queues), overridable with
/// [`BrokerBuilder::delivery_workers`]. The pool is built lazily on the
/// first [`Broker::subscribe_consumer`]; pull-only brokers never spawn
/// it.
pub const DEFAULT_DELIVERY_WORKERS: usize = 2;

/// Events one consumer drain job moves per queue-lock acquisition:
/// large enough to amortise the lock, small enough that a deep backlog
/// releases it (and wakes `Block`-policy publishers) regularly.
const DELIVERY_DRAIN_BATCH: usize = 32;

/// What one [`Broker::delivery_maintenance_tick`] changed; all zeros
/// when quarantine is not configured or every subscriber was steady.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeliveryTickReport {
    /// Subscribers newly quarantined this tick (queue capped), not
    /// counting auto-disconnects.
    pub demoted: usize,
    /// Quarantined subscribers released this tick.
    pub recovered: usize,
    /// Subscribers disconnected this tick
    /// ([`QuarantineConfig::auto_disconnect`]).
    pub disconnected: usize,
}

/// What the background rebalance thread balances on each tick; see
/// [`BrokerBuilder::background_rebalance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebalancePolicy {
    /// Even out per-shard **live-subscription counts** (the PR-4
    /// invariant `max − min ≤ 1`) — the right policy when every
    /// subscription costs roughly the same to match.
    SubscriptionCount,
    /// Even out per-shard **observed match frequency**: each shard
    /// carries a lock-free counter of the matches it produced, and the
    /// tick migrates subscriptions from the shard with the highest
    /// per-tick match delta to the one with the lowest. This is the
    /// policy for skewed workloads where a minority of hot
    /// subscriptions absorb most matches — count-balanced shards can
    /// still hide an arbitrarily lopsided match load (see the
    /// `HotKeyScenario` workload and the `background_rebalance` bench
    /// rows).
    MatchFrequency,
}

/// How one `migrate_between` call decides to keep moving.
#[derive(Clone, Copy, PartialEq, Eq)]
enum MigrateMode {
    /// Stop when the pair's subscription counts are balanced
    /// (`load(from) ≤ load(to) + 1`).
    Balance,
    /// Stop only when the source would drop to zero subscriptions —
    /// the frequency-weighted rebalancer deliberately unbalances
    /// counts to balance match load.
    Frequency,
    /// Move everything — shard draining during a shrink.
    Drain,
}

/// One engine shard: the engine plus its local → global translation
/// map behind a single lock, and the lock-free match counter the
/// frequency-weighted rebalancer reads. Cells are shared by `Arc`
/// across resize epochs, so a surviving shard keeps its lock, its
/// translation map and its counters when the shard set around it
/// changes.
struct ShardCell {
    state: RwLock<ShardState>,
    /// Matches this shard has contributed across its lifetime
    /// (`MatchStats::matched` summed over publishes), maintained with
    /// relaxed atomics on the publish path — no lock, no shared-state
    /// contention.
    hits: AtomicU64,
    /// Publishes that skipped this shard because its attribute synopsis
    /// proved zero candidates (one count per pruned event per publish
    /// path), maintained like `hits` — relaxed atomics, no lock.
    pruned: AtomicU64,
}

struct ShardState {
    engine: BoxedEngine,
    /// Read-side local → global map, updated only by operations already
    /// holding this shard's write lock (subscribe, unsubscribe,
    /// migration) and read under the read lock publishes already hold
    /// for matching — translation never touches broker-global state.
    translation: ShardTranslation,
    /// Conservative per-attribute summary of this shard's residents,
    /// maintained under the same write lock as `translation` (subscribe,
    /// unsubscribe, migration) and consulted under the read lock
    /// publishes already hold — the content-aware prune check never
    /// touches broker-global state either.
    synopsis: ShardSynopsis,
}

impl ShardCell {
    /// `index` is the cell's position in the shard set at creation,
    /// naming its lockdep class (`shard[index]`): multiple shard locks
    /// may only ever be acquired in ascending index order. A surviving
    /// cell keeps its class across resize epochs — its index never
    /// changes while it is live (grows append, shrinks drop a suffix).
    fn new(engine: BoxedEngine, index: usize) -> Self {
        let state = RwLock::new(ShardState {
            engine,
            translation: ShardTranslation::new(),
            synopsis: ShardSynopsis::new(),
        });
        state.set_class(&lock_classes::shard(index));
        ShardCell {
            state,
            hits: AtomicU64::new(0),
            pruned: AtomicU64::new(0),
        }
    }

    fn record_hits(&self, stats: &MatchStats) {
        if stats.matched > 0 {
            self.hits.fetch_add(stats.matched as u64, Ordering::Relaxed);
        }
    }

    fn record_prunes(&self, n: u64) {
        if n > 0 {
            self.pruned.fetch_add(n, Ordering::Relaxed);
        }
    }
}

/// Per-worker flat matches + per-event end offsets, one per shard per
/// batch (event `e`'s ids are `flat[ends[e-1]..ends[e]]`).
type ShardMatches = (Vec<SubscriptionId>, Vec<usize>);

/// The parallel publish machinery, present only on multi-shard shard
/// sets: a persistent worker pool (threads park between publishes — no
/// spawn on the hot path), the pool of warm per-worker scratches, and
/// the pooled fan-out rendezvous (no per-publish rendezvous allocation
/// either). Cheap to clone — a resize that keeps the worker count
/// carries the whole pipeline into the next epoch.
#[derive(Clone)]
struct Fanout {
    pool: Arc<WorkerPool>,
    scratches: Arc<ScratchPool>,
    batch_scratches: Arc<BatchScratchPool>,
    publish_rendezvous: Arc<FanOutPool<ScratchLease>>,
    batch_rendezvous: Arc<FanOutPool<ShardMatches>>,
}

impl Fanout {
    fn new(threads: usize, scratch_trim_cap: usize) -> Self {
        Fanout {
            pool: Arc::new(WorkerPool::new(threads)),
            // One warm scratch per worker, plus headroom for a slot
            // probed while a return is in flight; same sizing for the
            // batch-scratch pool and the parked rendezvous.
            scratches: Arc::new(ScratchPool::with_trim_cap(threads + 1, scratch_trim_cap)),
            batch_scratches: Arc::new(BatchScratchPool::with_trim_cap(
                threads + 1,
                scratch_trim_cap,
            )),
            publish_rendezvous: Arc::new(FanOutPool::new(threads + 1)),
            batch_rendezvous: Arc::new(FanOutPool::new(threads + 1)),
        }
    }
}

/// One resize epoch: the shard cells and the parallel pipeline sized
/// for them. [`Broker::resize`] swaps the whole set behind the epoch
/// lock — a publish clones the `Arc` once (the only broker-global lock
/// it ever takes, held for a pointer copy) and works on an immutable
/// snapshot from there.
struct ShardSet {
    shards: Vec<Arc<ShardCell>>,
    /// `None` on single-shard sets: their publish path is exactly the
    /// pre-fan-out sequential walk.
    fanout: Option<Fanout>,
}

/// A one-shot stop signal for the background rebalance thread: `signal`
/// releases a `wait_timeout` immediately instead of letting the thread
/// sleep out its interval on shutdown.
struct StopLatch {
    stopped: StdMutex<bool>,
    cv: Condvar,
}

impl StopLatch {
    fn new() -> Self {
        StopLatch {
            stopped: StdMutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn signal(&self) {
        *self.stopped.lock().unwrap_or_else(PoisonError::into_inner) = true;
        self.cv.notify_all();
    }

    /// Sleeps up to `timeout`; returns whether stop was signalled.
    fn wait_timeout(&self, timeout: Duration) -> bool {
        let guard = self.stopped.lock().unwrap_or_else(PoisonError::into_inner);
        let (guard, _) = self
            .cv
            .wait_timeout_while(guard, timeout, |stopped| !*stopped)
            .unwrap_or_else(PoisonError::into_inner);
        *guard
    }
}

/// A background thread's handle (rebalancer or delivery maintenance),
/// joined when the broker's last reference drops.
struct BackgroundHandle {
    stop: Arc<StopLatch>,
    thread: JoinHandle<()>,
}

/// The decayed match-frequency window
/// [`Broker::rebalance_by_match_frequency`] plans from: `baseline` is
/// the raw per-shard counter snapshot the next tick diffs against,
/// `scores` the exponentially decayed per-tick deltas (each tick halves
/// the running score before adding the fresh delta). Scoring a decayed
/// window instead of the raw last-tick delta keeps one anomalous
/// interval from dominating the plan while sustained skew still
/// accumulates; after any tick that migrated, the scores are reset so
/// the next window measures the *new* placement rather than echoes of
/// the one just fixed.
#[derive(Default)]
struct FreqWindow {
    baseline: Vec<u64>,
    scores: Vec<u64>,
}

impl FreqWindow {
    /// Forgets everything — the next tick re-arms from scratch
    /// (resize must not compare counters across shard sets).
    fn clear(&mut self) {
        self.baseline.clear();
        self.scores.clear();
    }
}

pub(crate) struct BrokerInner {
    /// The current shard set (cells + parallel pipeline), swapped
    /// wholesale by [`Broker::resize`]. Steady-state readers take the
    /// lock only long enough to clone the `Arc`.
    shard_set: RwLock<Arc<ShardSet>>,
    /// The **write-side** placement directory: global id ↔ placement,
    /// loads and the stored expressions migration re-subscribes.
    /// Touched by subscribe/unsubscribe/migrate/resize only — the
    /// publish paths never acquire this lock (each shard's translation
    /// map, under that shard's own lock, serves matched-id
    /// translation). `tests/hot_path.rs` holds this lock's write side
    /// across publishes to prove it.
    ///
    /// **Lock order:** the directory lock is *innermost* — it is only
    /// ever acquired while holding at most shard locks, and nothing
    /// acquires a shard lock while holding it. Shard locks themselves
    /// are only ever multiply-acquired in ascending index order
    /// (migration), and the shard-set lock is never held across any
    /// other acquisition, so the broker's lock graph is acyclic.
    directory: RwLock<SubscriptionDirectory>,
    /// Serializes the control plane — migrate/rebalance/resize and the
    /// background thread's ticks — so a resize can never swap the shard
    /// set out from under a running migration.
    maintenance: Mutex<()>,
    /// The frequency-weighted rebalancer's decayed planning window:
    /// the last per-shard hit snapshot plus the decayed per-tick delta
    /// scores (ticks act on windowed deltas, not lifetime totals).
    freq_baseline: Mutex<FreqWindow>,
    /// Each live subscriber's notification queue, keyed by global id —
    /// the delivery tier's root. Publishes take the read side only to
    /// snapshot the matched subscribers' queue `Arc`s (never across an
    /// enqueue); the write side is subscribe/unsubscribe churn.
    ///
    /// **Lock order:** queue locks (`delivery-queue[g]`) sit *inside*
    /// this lock — the quarantine tick walks queues under the read
    /// guard — and are leaves: no path acquires anything while holding
    /// one, and no path ever holds two.
    senders: RwLock<HashMap<SubscriptionId, Arc<NotifyQueue>>>,
    policy: DeliveryPolicy,
    /// Slow-consumer quarantine thresholds; `None` leaves lag
    /// unmonitored (ticks are no-ops).
    quarantine: Option<QuarantineConfig>,
    /// The worker pool draining consumer-callback queues, spawned
    /// lazily by the first [`Broker::subscribe_consumer`] so pull-only
    /// brokers pay nothing.
    delivery_pool: OnceLock<Arc<WorkerPool>>,
    /// Thread count for `delivery_pool` when it spawns.
    delivery_workers: usize,
    /// The background quarantine-tick thread, when configured.
    delivery_maintenance: Mutex<Option<BackgroundHandle>>,
    stats: AtomicStats,
    /// Heap-byte cap above which a publish scratch is trimmed after
    /// use instead of keeping its high-water capacity — applied to the
    /// fan-out [`ScratchPool`] on return *and* to the sequential
    /// path's thread-local scratch after each publish/batch.
    scratch_trim_cap: usize,
    /// Bumped once per committed relocation (under the directory write
    /// lock). A publish snapshots it before matching and after its last
    /// translation: only when the two differ can the matched set hold
    /// a migration duplicate, so only then does it pay the dedup sort.
    migration_epoch: AtomicU64,
    /// Live-subscription count at which publishes switch from the
    /// sequential shard walk to the parallel fan-out.
    parallel_threshold: usize,
    /// The builder's worker-thread override, kept so a resize can
    /// rebuild the pipeline with the same policy.
    worker_threads: Option<usize>,
    /// Engine kind a grow appends (the first shard's kind at build
    /// time).
    grow_kind: EngineKind,
    /// Where new subscriptions land (see
    /// [`BrokerBuilder::placement`]).
    placement: PlacementPolicy,
    /// Whether the publish paths consult shard synopses to skip
    /// zero-candidate shards (see [`BrokerBuilder::shard_pruning`]).
    prune: bool,
    /// The background rebalance thread, when configured.
    rebalancer: Mutex<Option<BackgroundHandle>>,
}

impl Drop for BrokerInner {
    fn drop(&mut self) {
        let handles = [
            self.rebalancer.get_mut().take(),
            self.delivery_maintenance.get_mut().take(),
        ];
        for handle in handles.into_iter().flatten() {
            handle.stop.signal();
            // The last broker reference can die on a background
            // thread itself (its tick upgrades the Weak into a
            // temporary strong handle); joining ourselves would
            // deadlock — the thread is already past its loop and
            // exits on its own.
            if handle.thread.thread().id() != std::thread::current().id() {
                let _ = handle.thread.join();
            }
        }
        // Deterministic delivery teardown: close every queue (waking
        // blocked receivers and `Block`-policy publishers; queued
        // events stay drainable through surviving handles), then let
        // the delivery pool drop with the struct — `WorkerPool`'s Drop
        // runs every already-queued consumer drain job to completion
        // before joining, so consumer subscribers see everything that
        // was enqueued before the broker died, and nothing after.
        for queue in self.senders.get_mut().values() {
            queue.close(false);
        }
    }
}

impl BrokerInner {
    fn shard_set(&self) -> Arc<ShardSet> {
        Arc::clone(&self.shard_set.read())
    }

    pub(crate) fn unsubscribe(&self, id: SubscriptionId) -> bool {
        let queue = self.senders.write().remove(&id);
        let existed = queue.is_some();
        if existed {
            // The sender map is the source of truth; the directory and
            // shard state follow. Retiring the directory entry first
            // means a concurrent migration of this subscription aborts
            // cleanly (its `relocate` finds the entry gone and undoes
            // the target-side copy) and a concurrent match drops the id
            // at translation — whose delivery the removed sender would
            // have skipped anyway. With recycled ids the retire is
            // generation-checked, so a stale handle from an earlier
            // occupancy of the slot was already a no-op at the sender
            // map and can never reach here.
            let (shard, local, _expr) = self
                .directory
                .write()
                .retire(id)
                .expect("sender map and directory are kept in sync");
            // The shard-set snapshot is taken *after* the retire: the
            // directory lock hand-off guarantees any resize that grew
            // the set before our entry was placed is visible. A shard
            // index beyond the snapshot means the shard was drained and
            // dropped by a shrink while we raced it — its engine went
            // with it, so there is nothing left to unsubscribe.
            let set = self.shard_set();
            if let Some(cell) = set.shards.get(shard) {
                let mut state = cell.state.write();
                // `clear_if` is the stale-cell guard: only if this
                // local slot still belongs to *our* global id do we
                // touch the engine (a drain may have completed the
                // removal on our behalf, or — across a shrink+grow — a
                // fresh shard may live at this index).
                if state.translation.clear_if(local, id) {
                    state
                        .engine
                        .unsubscribe(local)
                        .expect("translation and shard engine are kept in sync");
                    state.synopsis.remove(local);
                }
            }
            self.stats
                .subscriptions_removed
                .fetch_add(1, Ordering::Relaxed);
        }
        // Close the queue last, with no broker lock held: a receiver
        // parked in `recv` wakes to drain the remainder and then gets
        // its `None`, and a publish racing this unsubscribe either
        // missed the map (no enqueue) or enqueues into the closed queue
        // and counts the send as disconnected.
        if let Some(queue) = queue {
            queue.close(false);
        }
        existed
    }
}

/// A content-based publish/subscribe broker; see the [crate docs](crate).
///
/// Cheap to clone (`Arc` inside); clones share the same engine and
/// subscriber registry.
#[derive(Clone)]
pub struct Broker {
    inner: Arc<BrokerInner>,
}

impl Broker {
    /// Starts configuring a broker.
    pub fn builder() -> BrokerBuilder {
        BrokerBuilder::default()
    }

    /// The current resize epoch's shard set.
    fn shard_set(&self) -> Arc<ShardSet> {
        self.inner.shard_set()
    }

    /// Registers a subscription written in the subscription language
    /// and returns the handle notifications arrive on.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::Parse`] for malformed text and
    /// [`BrokerError::Subscribe`] when the engine refuses the
    /// expression (e.g. a canonical engine hitting its DNF limit).
    pub fn subscribe(&self, expression: &str) -> Result<Subscription, BrokerError> {
        self.subscribe_expr(&Expr::parse(expression)?)
    }

    /// [`Broker::subscribe`] with a per-subscriber [`DeliveryPolicy`]
    /// overriding the builder-wide default — one subscriber can take
    /// bounded backpressure ([`DeliveryPolicy::Block`]) while its
    /// neighbours shed ([`DeliveryPolicy::DropOldest`]).
    ///
    /// # Errors
    ///
    /// As [`Broker::subscribe`].
    pub fn subscribe_with_policy(
        &self,
        expression: &str,
        policy: DeliveryPolicy,
    ) -> Result<Subscription, BrokerError> {
        self.subscribe_expr_with_policy(&Expr::parse(expression)?, policy)
    }

    /// Registers a **consumer-callback** subscription: instead of the
    /// subscriber pulling on its handle, the broker's delivery worker
    /// pool invokes `consumer` for each notification, in publish order,
    /// with per-subscriber panic isolation — a panicking callback tears
    /// down only its own subscription (counted in
    /// [`BrokerStats::consumer_panics`]) and never poisons the worker
    /// or other subscribers. The returned handle controls the
    /// subscription's lifetime exactly like a pull handle; its queue is
    /// drained by the pool, so pulling on it races the callback.
    ///
    /// # Errors
    ///
    /// As [`Broker::subscribe`].
    pub fn subscribe_consumer(
        &self,
        expression: &str,
        policy: DeliveryPolicy,
        consumer: impl Fn(Arc<Event>) + Send + Sync + 'static,
    ) -> Result<Subscription, BrokerError> {
        self.subscribe_with(&Expr::parse(expression)?, policy, Some(Arc::new(consumer)))
    }

    /// Registers an already-parsed subscription.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::Subscribe`] when the engine refuses it.
    pub fn subscribe_expr(&self, expr: &Expr) -> Result<Subscription, BrokerError> {
        self.subscribe_with(expr, self.inner.policy, None)
    }

    /// [`Broker::subscribe_expr`] with a per-subscriber
    /// [`DeliveryPolicy`].
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::Subscribe`] when the engine refuses it.
    pub fn subscribe_expr_with_policy(
        &self,
        expr: &Expr,
        policy: DeliveryPolicy,
    ) -> Result<Subscription, BrokerError> {
        self.subscribe_with(expr, policy, None)
    }

    /// The one subscribe body: placement → shard registration →
    /// directory commit → delivery-queue creation.
    fn subscribe_with(
        &self,
        expr: &Expr,
        policy: DeliveryPolicy,
        consumer: Option<Consumer>,
    ) -> Result<Subscription, BrokerError> {
        if consumer.is_some() {
            // First consumer subscription spawns the delivery pool;
            // pull-only brokers never pay for the threads.
            self.inner
                .delivery_pool
                .get_or_init(|| Arc::new(WorkerPool::new(self.inner.delivery_workers)));
        }
        // Load-aware placement: the directory reserves a unit of load
        // on the least-loaded shard (round-robin tie-break, so a
        // churn-free stream places like classic round-robin while a
        // drained shard is refilled first; concurrent subscribers
        // spread out because each reservation is visible to the next
        // placement). Only the chosen shard is then write-locked, so
        // registration never stalls matching on the other shards; the
        // reservation is cancelled if the engine refuses the
        // expression, and committed — issuing the global id — once the
        // engine has assigned the local id. The shard-set snapshot is
        // taken *after* the placement: the directory lock hand-off
        // guarantees a placement on a freshly grown shard only happens
        // once the grown set is visible, and a shrink restricts
        // placement before any dying cell leaves the set.
        let shard = {
            let mut directory = self.inner.directory.write();
            match self.inner.placement {
                PlacementPolicy::LeastLoaded => directory.place(),
                // Clustered: route to the shard the subscription's
                // dominant equality attribute hashes to (load-capped;
                // the directory falls back to least-loaded when the
                // cluster target is overloaded), so shard synopses
                // become selective and pruning actually bites.
                PlacementPolicy::ClusterByAttribute => match dominant_eq_attr(expr) {
                    Some(attr) => directory.place_clustered(attribute_hash(attr)),
                    None => directory.place(),
                },
            }
        };
        let set = self.shard_set();
        let cell = &set.shards[shard];
        // The expression is stored for every broker — including
        // single-shard ones, which `resize` can grow into migrating
        // multi-shard brokers at any time. (The PR-4 placeholder
        // shortcut is gone, and with it the accounting fib that those
        // entries were free.) Cloned before the shard lock: the deep
        // copy must not extend the window in which publishes on this
        // shard are stalled.
        let stored = Arc::new(expr.clone());
        let mut state = cell.state.write();
        let local = match state.engine.subscribe(expr) {
            Ok(local) => local,
            Err(e) => {
                drop(state);
                self.inner.directory.write().cancel(shard);
                return Err(e.into());
            }
        };
        let id = self.inner.directory.write().commit(shard, local, stored);
        state.translation.set(local, id);
        state.synopsis.insert(local, expr);
        drop(state);
        // The queue's lock is classed by the id's delivery-queue group
        // (same-class nesting detection proves no path holds two).
        let queue = Arc::new(NotifyQueue::new(id.index(), policy, consumer));
        self.inner.senders.write().insert(id, Arc::clone(&queue));
        self.inner
            .stats
            .subscriptions_created
            .fetch_add(1, Ordering::Relaxed);
        Ok(Subscription::new(id, queue, Arc::downgrade(&self.inner)))
    }

    /// Removes a subscription by id (handles also unsubscribe on drop).
    /// Returns whether it was registered.
    pub fn unsubscribe(&self, id: SubscriptionId) -> bool {
        self.inner.unsubscribe(id)
    }

    /// Live-migrates up to `max_moves` subscriptions from the currently
    /// most-loaded to the currently least-loaded shard, one batch of
    /// shard-lock acquisitions per skewed pair. Each move re-subscribes
    /// the stored expression on the target shard, retires the source
    /// entry and repoints the directory — the subscription's id, handle
    /// and delivery stream are untouched, and matching continues on
    /// every shard not in the migrating pair (see `tests/rebalance.rs`
    /// for the deterministic lock-level proof). Returns the number of
    /// subscriptions moved.
    ///
    /// Stops early when the loads are balanced (spread ≤ 1) or a target
    /// engine refuses an expression (possible only with heterogeneous
    /// [`BrokerBuilder::engine_instances`]; the subscription stays
    /// put).
    ///
    /// **Visibility window:** an event whose publish races a migration
    /// may observe the moving subscription as momentarily absent — the
    /// same anomaly as an event racing an unsubscribe+resubscribe —
    /// and is delivered to it at most once (never twice; publish
    /// deduplicates matched ids). Events published after `migrate`
    /// returns always see the subscription at its new placement.
    // lint: lock-order — migration/rebalance/resize hold multiple
    // shard locks (ascending index order only: the `(lo, hi)` idiom)
    // and consult the directory innermost (no shard acquisition while
    // a directory guard is live).
    pub fn migrate(&self, max_moves: usize) -> usize {
        let _maintenance = self.inner.maintenance.lock();
        self.migrate_locked(max_moves)
    }

    /// [`Broker::migrate`] body, with the maintenance lock already
    /// held (so `resize` and the background thread can compose it).
    fn migrate_locked(&self, max_moves: usize) -> usize {
        // Bound how long one lock acquisition of the shard pair is
        // held: a large drain (rebalance() on a heavily skewed broker)
        // is chunked, releasing and re-acquiring the pair's write
        // locks between chunks so publishers reaching those shards are
        // stalled for at most one chunk, not the whole drain.
        const MIGRATE_CHUNK: usize = 64;
        let set = self.shard_set();
        let mut moved = 0;
        while moved < max_moves {
            let Some((from, to)) = self.inner.directory.read().skew_pair() else {
                break;
            };
            let step = self.migrate_between(
                &set,
                from,
                to,
                (max_moves - moved).min(MIGRATE_CHUNK),
                MigrateMode::Balance,
            );
            if step == 0 {
                break;
            }
            moved += step;
        }
        self.note_migrated(moved);
        moved
    }

    /// [`Broker::migrate`] until the per-shard loads are as even as
    /// they can be: afterwards `max(load) − min(load) ≤ 1` (unless a
    /// heterogeneous target shard refused a move). Returns the number
    /// of subscriptions moved.
    pub fn rebalance(&self) -> usize {
        self.migrate(usize::MAX)
    }

    /// One frequency-weighted rebalance tick: compares each shard's
    /// match counter against the last tick's snapshot and live-migrates
    /// up to `max_moves` subscriptions from the shard with the highest
    /// match delta to the one with the lowest — evening out observed
    /// **match load**, not subscription counts. Returns the number of
    /// subscriptions moved (0 when the skew is within
    /// [`MATCH_FREQUENCY_SKEW_FLOOR`], when the hot shard has a single
    /// subscription, or on the re-arming call after a resize changed
    /// the shard set).
    ///
    /// This is the tick the
    /// [`MatchFrequency`](RebalancePolicy::MatchFrequency) background
    /// thread runs on its interval; it is public so operators and tests
    /// can drive the same policy deterministically.
    pub fn rebalance_by_match_frequency(&self, max_moves: usize) -> usize {
        let _maintenance = self.inner.maintenance.lock();
        let set = self.shard_set();
        if set.shards.len() < 2 {
            return 0;
        }
        let hits: Vec<u64> = set
            .shards
            .iter()
            .map(|cell| cell.hits.load(Ordering::Relaxed))
            .collect();
        let scores: Vec<u64> = {
            let mut window = self.inner.freq_baseline.lock();
            let FreqWindow { baseline, scores } = &mut *window;
            if baseline.len() != hits.len() {
                // The shard set changed since the last tick: re-arm and
                // measure a fresh interval instead of comparing
                // counters across unrelated cells.
                *baseline = hits;
                *scores = vec![0; baseline.len()];
                return 0;
            }
            for ((score, hit), base) in scores.iter_mut().zip(&hits).zip(baseline.iter()) {
                // Exponential decay: halve the running score, then add
                // this tick's delta. Saturating: a shrink+grow can put
                // a fresh cell (with a zeroed counter) at an index
                // that had history.
                *score = *score / 2 + hit.saturating_sub(*base);
            }
            *baseline = hits;
            scores.clone()
        };
        let mut hot = 0;
        let mut cool = 0;
        for (i, &score) in scores.iter().enumerate() {
            if score > scores[hot] {
                hot = i;
            }
            if score < scores[cool] {
                cool = i;
            }
        }
        // Act only on real skew: the hot shard's windowed score must
        // out-match the cool one's by 2× plus an absolute floor, and
        // the hot shard must keep at least one subscription.
        if hot == cool
            || scores[hot] < 2 * scores[cool] + MATCH_FREQUENCY_SKEW_FLOOR
            || self.inner.directory.read().load(hot) <= 1
        {
            return 0;
        }
        let moved = self.migrate_between(&set, hot, cool, max_moves, MigrateMode::Frequency);
        if moved > 0 {
            // The placement just changed: the decayed scores describe
            // the pre-migration world. Reset them (keeping the raw
            // baseline) so the next window measures the new placement
            // instead of re-migrating on stale echoes.
            let mut window = self.inner.freq_baseline.lock();
            window.scores.iter_mut().for_each(|s| *s = 0);
        }
        self.note_migrated(moved);
        moved
    }

    fn note_migrated(&self, moved: usize) {
        if moved > 0 {
            self.inner
                .stats
                .subscriptions_migrated
                .fetch_add(moved as u64, Ordering::Relaxed);
        }
    }

    /// One migration batch between a fixed shard pair, bounded by
    /// `cap` moves: both shard locks are taken once (in ascending index
    /// order — the broker-wide discipline that keeps concurrent
    /// migrations deadlock-free) and held while subscriptions move,
    /// with `mode` deciding when the pair is done.
    fn migrate_between(
        &self,
        set: &ShardSet,
        from: usize,
        to: usize,
        cap: usize,
        mode: MigrateMode,
    ) -> usize {
        debug_assert_ne!(from, to);
        let (lo, hi) = (from.min(to), from.max(to));
        let lo_guard = set.shards[lo].state.write();
        let hi_guard = set.shards[hi].state.write();
        let (mut from_state, mut to_state) = if from < to {
            (lo_guard, hi_guard)
        } else {
            (hi_guard, lo_guard)
        };
        let mut moved = 0;
        while moved < cap {
            {
                // Re-plan every step against the live directory:
                // concurrent unsubscribes (which never need these shard
                // locks to retire an entry) may have rebalanced the
                // pair already.
                let directory = self.inner.directory.read();
                let done = match mode {
                    MigrateMode::Balance => directory.load(from) <= directory.load(to) + 1,
                    MigrateMode::Frequency => directory.load(from) <= 1,
                    MigrateMode::Drain => false,
                };
                if done {
                    break;
                }
            }
            // The victim comes from the source shard's own translation
            // map (we hold its write lock, so the map cannot move under
            // us); the directory is then consulted for the stored
            // expression and to confirm the entry is still live.
            let Some((global, local)) = from_state.translation.last_resident() else {
                break;
            };
            let expr = {
                let directory = self.inner.directory.read();
                match directory.placement_of(global) {
                    // lint: allow(panic-policy, reason = "unreachable: the guard just confirmed the placement is live, and live placements store their expression")
                    Some((shard, at)) if shard == from && at == local => Arc::clone(
                        directory
                            .expr_of(global)
                            .expect("live placements store their expression"),
                    ),
                    _ => {
                        // A racing unsubscribe retired the entry
                        // directory-first and is now parked on this
                        // shard's write lock (which we hold). Complete
                        // the shard-side removal on its behalf; its own
                        // `clear_if` then finds the slot gone and
                        // skips. Not a migration — re-plan.
                        let cleared = from_state.translation.clear_if(local, global);
                        debug_assert!(cleared);
                        from_state
                            .engine
                            .unsubscribe(local)
                            .expect("translation and shard engine are kept in sync");
                        // Slot-keyed removal: the directory entry is
                        // already retired, so no expression is
                        // available here — the synopsis undoes exactly
                        // what it indexed for this slot.
                        from_state.synopsis.remove(local);
                        continue;
                    }
                }
            };
            let Ok(new_local) = to_state.engine.subscribe(&expr) else {
                // A heterogeneous target refused the expression. For
                // balancing that just means the subscription stays put
                // — but a drain has nowhere else to leave it, and
                // silently retrying would spin forever on the same
                // refusal: honour `resize`'s documented panic instead
                // (matching `ShardedEngine::resize`).
                assert!(
                    mode != MigrateMode::Drain,
                    "a surviving shard refused a drained subscription"
                );
                break;
            };
            let relocated = {
                let mut directory = self.inner.directory.write();
                let relocated = directory.relocate(global, from, local, to, new_local);
                if relocated {
                    // Bumped inside the directory critical section: a
                    // racing publish that translated the moved
                    // subscription on both shards is then guaranteed to
                    // observe the bumped epoch on its post-match check
                    // and dedup; a failed relocate changed no mapping,
                    // so it bumps nothing and forces no spurious sorts.
                    self.inner.migration_epoch.fetch_add(1, Ordering::Release);
                }
                relocated
            };
            if relocated {
                from_state
                    .engine
                    .unsubscribe(local)
                    .expect("directory and shard engines are kept in sync");
                let cleared = from_state.translation.clear_if(local, global);
                debug_assert!(cleared, "relocated entries were resident");
                from_state.synopsis.remove(local);
                to_state.translation.set(new_local, global);
                to_state.synopsis.insert(new_local, &expr);
                moved += 1;
            } else {
                // The victim was retired between planning and commit;
                // undo the target-side copy and re-plan (the next
                // iteration's placement check completes the
                // source-side removal).
                to_state
                    .engine
                    .unsubscribe(new_local)
                    .expect("the fresh target copy is removable");
            }
        }
        moved
    }

    /// Grows or shrinks the broker to `new_shards` engine shards,
    /// **live**: publishes, subscribes and unsubscribes keep flowing
    /// throughout, and no subscription changes its id, handle or
    /// delivery stream. Returns the number of subscriptions migrated
    /// (growing moves none — new shards start empty; follow with
    /// [`Broker::rebalance`], or let the background thread spread load
    /// onto them).
    ///
    /// The shard/lock array itself is replaced behind an **epoch
    /// swap**: surviving shards keep their cells (lock, translation
    /// map, match counters — publishes holding the old epoch finish
    /// against the same cells), a grow appends fresh engines of the
    /// build-time kind, and a shrink first restricts placement to the
    /// survivors, drains each dying shard via live migration, and only
    /// then swaps the dying cells out. The parallel fan-out pipeline is
    /// carried across when its worker count still fits, rebuilt
    /// otherwise, and dropped at one shard.
    ///
    /// # Panics
    ///
    /// Panics if `new_shards` is zero, or if a surviving shard refuses
    /// a drained subscription (possible only with heterogeneous
    /// [`BrokerBuilder::engine_instances`]).
    pub fn resize(&self, new_shards: usize) -> usize {
        assert!(new_shards > 0, "a broker needs at least one engine shard");
        let _maintenance = self.inner.maintenance.lock();
        let old_set = self.shard_set();
        let old = old_set.shards.len();
        let mut moved = 0;
        if new_shards == old {
            return 0;
        }
        if new_shards > old {
            let mut shards = old_set.shards.clone();
            for index in old..new_shards {
                shards.push(Arc::new(ShardCell::new(
                    self.inner.grow_kind.build(),
                    index,
                )));
            }
            let fanout = self.fanout_for(&old_set, new_shards);
            // Swap first, then grow the directory: a placement can only
            // choose the new shards after the directory grows, and any
            // thread that observes the grown directory also observes
            // the swapped set (both handed off through the locks in
            // that order).
            *self.inner.shard_set.write() = Arc::new(ShardSet { shards, fanout });
            let mut directory = self.inner.directory.write();
            for _ in old..new_shards {
                directory.add_shard();
            }
        } else {
            // Shrink. 1: no new subscription may land on a dying shard
            // from here on.
            self.inner.directory.write().restrict_placement(new_shards);
            // 2: drain every dying shard onto the survivors via live
            // migration, spreading chunk by chunk (least-loaded target
            // per chunk). A dying shard's load can briefly exceed its
            // residents — an in-flight subscribe placed there before
            // the restriction commits moments later — so the drain
            // loops until the directory agrees the shard is empty.
            const DRAIN_CHUNK: usize = 64;
            for dying in (new_shards..old).rev() {
                loop {
                    let drained = {
                        let directory = self.inner.directory.read();
                        directory.load(dying) == 0
                    } && old_set.shards[dying].state.read().translation.is_empty();
                    if drained {
                        break;
                    }
                    let to = {
                        let mut directory = self.inner.directory.write();
                        let to = directory.place_among(new_shards);
                        directory.cancel(to); // relocate moves the load itself
                        to
                    };
                    let step =
                        self.migrate_between(&old_set, dying, to, DRAIN_CHUNK, MigrateMode::Drain);
                    moved += step;
                    if step == 0 {
                        // Nothing movable yet (in-flight reservation):
                        // let the subscriber commit or cancel.
                        std::thread::yield_now();
                    }
                }
            }
            // 3: swap the dying cells out of the epoch; publishes still
            // holding the old set match empty engines there.
            let shards: Vec<Arc<ShardCell>> = old_set.shards[..new_shards].to_vec();
            let fanout = self.fanout_for(&old_set, new_shards);
            *self.inner.shard_set.write() = Arc::new(ShardSet { shards, fanout });
            // 4: shrink the directory to match.
            let mut directory = self.inner.directory.write();
            for _ in new_shards..old {
                directory.remove_last_shard();
            }
        }
        // Frequency ticks must not compare counters across shard sets.
        self.inner.freq_baseline.lock().clear();
        self.note_migrated(moved);
        moved
    }
    // lint: end-lock-order

    /// The parallel pipeline for a `new_count`-shard set: none below
    /// two shards, the old epoch's pipeline when its worker count still
    /// matches the sizing policy, a fresh one otherwise.
    fn fanout_for(&self, old_set: &ShardSet, new_count: usize) -> Option<Fanout> {
        if new_count < 2 {
            return None;
        }
        let threads = self.inner.worker_threads.unwrap_or_else(|| {
            (new_count - 1)
                .min(std::thread::available_parallelism().map_or(1, std::num::NonZero::get))
        });
        if let Some(fanout) = &old_set.fanout {
            if fanout.pool.threads() == threads {
                return Some(fanout.clone());
            }
        }
        Some(Fanout::new(threads, self.inner.scratch_trim_cap))
    }

    /// Live subscriptions per shard (placement reservations included) —
    /// the load vector rebalancing planning works from.
    pub fn shard_loads(&self) -> Vec<usize> {
        self.inner.directory.read().loads().to_vec()
    }

    /// Lifetime matches each shard has produced
    /// (`MatchStats::matched`, summed over publishes) — the counters
    /// the [`MatchFrequency`](RebalancePolicy::MatchFrequency)
    /// rebalancer balances on.
    pub fn shard_match_hits(&self) -> Vec<u64> {
        self.shard_set()
            .shards
            .iter()
            .map(|cell| cell.hits.load(Ordering::Relaxed))
            .collect()
    }

    /// Publish prune counts per shard: how many times each shard was
    /// skipped because its attribute synopsis proved zero candidates
    /// for the event being matched (one count per pruned event, on
    /// every publish pipeline). The observability counterpart of
    /// [`Broker::shard_match_hits`] for content-aware routing: on a
    /// well-clustered workload most shards accumulate prunes, not hits.
    pub fn shard_prune_counts(&self) -> Vec<u64> {
        self.shard_set()
            .shards
            .iter()
            .map(|cell| cell.pruned.load(Ordering::Relaxed))
            .collect()
    }

    /// Whether a background rebalance thread is attached (see
    /// [`BrokerBuilder::background_rebalance`]).
    pub fn background_rebalance_active(&self) -> bool {
        self.inner.rebalancer.lock().is_some()
    }

    /// Runs `f` while holding the placement directory's **write** lock
    /// — blocking every subscribe/unsubscribe/migrate/resize, but (by
    /// design) no publish. This is a verification hook: the hot-path
    /// contract says steady-state publishing never touches the
    /// directory lock, and `tests/hot_path.rs` proves it by publishing
    /// through this window.
    #[doc(hidden)]
    pub fn with_directory_write_held<R>(&self, f: impl FnOnce() -> R) -> R {
        // `write_untracked`: `f` publishes while this thread holds the
        // directory write lock — exactly the inversion lockdep exists to
        // reject (publish takes shard read locks; the normal order is
        // shard → directory). It cannot deadlock here because the hook
        // guarantees the inverted pair is taken by no concurrent thread
        // while this one holds the directory: publishes never block on
        // the directory at all (the property under test), and writers
        // that do take both always go shard-first and simply queue
        // behind the hook. Tracking it would poison the global order
        // graph with a cycle no production path can reach.
        let _guard = self.inner.directory.write_untracked();
        f()
    }

    // lint: hot-path — the publish/fan-out/delivery pipeline: no
    // broker-global lock may be acquired here beyond the one-pointer
    // shard-set clone (and the by-design sender-map read during
    // delivery, allowed inline below).

    /// Publishes an event: matches it against every subscription and
    /// queues notifications to the matching subscribers. Returns the
    /// number of notifications delivered.
    ///
    /// Matching visits each shard under that shard's **read** lock with
    /// a thread-local [`MatchScratch`], and translates matched local
    /// ids through the shard's own translation map **under that same
    /// lock** — the matching/translation phase acquires no
    /// broker-global lock beyond the one-pointer clone of the current
    /// shard set (and, in particular, never the placement directory's;
    /// delivery afterwards takes the sender-map read lock just long
    /// enough to snapshot the matched queues, then enqueues with no
    /// broker lock held). Concurrent
    /// publishers match in parallel and a write-locked shard (a
    /// subscription in progress) delays only its own shard's portion of
    /// the match. All locks are released before delivery; the
    /// thread-local borrow covers only matching. The matched buffer is
    /// reused across publishes on the same thread — the steady-state
    /// publish path allocates only the `Arc` around the event.
    ///
    /// On a multi-shard broker at or above the builder's
    /// [`parallel threshold`](BrokerBuilder::parallel_threshold), the
    /// shards are matched **concurrently** on the broker's persistent
    /// worker pool instead of walked one after another — intra-event
    /// parallelism for large engines — with a merge in shard order that
    /// makes the matched-id set identical to the sequential walk.
    /// Below the threshold (and always with one shard) the sequential
    /// walk runs unchanged.
    ///
    /// Subscribers found disconnected (handle dropped without
    /// unsubscribe — possible when the handle's broker reference was
    /// already gone) are pruned.
    pub fn publish(&self, event: Event) -> usize {
        let set = self.shard_set();
        if let Some(fan) = self.parallel_pipeline(&set) {
            return self.publish_parallel(&set, fan, &Arc::new(event));
        }
        let matched = self.matched_via(|scratch, out| self.match_into(&set, &event, scratch, out));
        // The Arc wrap stays lazy (inside deliver_matched) so an
        // unmatched event costs no allocation at all.
        let delivered = self.deliver_matched(event, &matched);
        self.return_matched(matched);
        delivered
    }

    /// [`Broker::publish`] for an event the caller already holds by
    /// `Arc` — the zero-copy entry: the same allocation is shared by
    /// the fan-out workers and every delivered notification, and the
    /// event is never cloned.
    pub fn publish_arc(&self, event: Arc<Event>) -> usize {
        let set = self.shard_set();
        if let Some(fan) = self.parallel_pipeline(&set) {
            return self.publish_parallel(&set, fan, &event);
        }
        let matched = self.matched_via(|scratch, out| self.match_into(&set, &event, scratch, out));
        let delivered = self.deliver_matched_arc(&event, &matched);
        self.return_matched(matched);
        delivered
    }

    /// The parallel publish pipeline: one job per remote shard on the
    /// persistent worker pool, shard 0 matched inline by the caller,
    /// results merged in shard order.
    fn publish_parallel(&self, set: &Arc<ShardSet>, fan: &Fanout, event: &Arc<Event>) -> usize {
        let matched = self
            .matched_via(|scratch, out| self.match_parallel_into(set, fan, event, scratch, out));
        let delivered = self.deliver_matched_arc(event, &matched);
        self.return_matched(matched);
        delivered
    }

    /// The single-publish matching dance shared by every publish
    /// flavour: swap the matched buffer out of the thread-local state
    /// (so the RefCell borrow ends before delivery, which takes the
    /// sender-map lock and may re-enter the broker to prune dead
    /// subscribers), run `matcher` against the thread-local scratch,
    /// and count the event. Pair with [`Broker::return_matched`] after
    /// delivery.
    fn matched_via(
        &self,
        matcher: impl FnOnce(&mut MatchScratch, &mut Vec<SubscriptionId>),
    ) -> Vec<SubscriptionId> {
        let epoch = self.migration_epoch();
        let mut matched = PUBLISH_STATE.with(|cell| {
            let state = &mut *cell.borrow_mut();
            let mut matched = std::mem::take(&mut state.matched);
            matched.clear();
            matcher(&mut state.scratch, &mut matched);
            self.trim_oversized(&mut state.scratch);
            matched
        });
        self.dedup_matched(epoch, &mut matched);
        self.inner
            .stats
            .events_published
            .fetch_add(1, Ordering::Relaxed);
        matched
    }

    /// Matches `event` against every shard (read lock each, one at a
    /// time) and appends the matched **global** ids to `out`.
    ///
    /// Translation goes through the shard's own map *under the shard's
    /// read lock*: migration commits a relocation only while holding
    /// that shard's write lock, so the mapping of a just-matched local
    /// id cannot be repointed before it is read here. A `None`
    /// translation means a racing unsubscribe retired the id — it is
    /// dropped, exactly as delivery would drop its removed sender.
    fn match_into(
        &self,
        set: &ShardSet,
        event: &Event,
        scratch: &mut MatchScratch,
        out: &mut Vec<SubscriptionId>,
    ) {
        let prune = self.inner.prune;
        for cell in &set.shards {
            let state = cell.state.read();
            // Content-aware pruning: a shard whose synopsis proves zero
            // candidates for this event is skipped before any matching
            // work — same shard read lock, no extra locking. The
            // synopsis is conservative, so the matched set is identical
            // to the unpruned walk.
            if prune && !state.synopsis.admits(event) {
                cell.record_prunes(1);
                continue;
            }
            let stats = state.engine.match_event_into(event, scratch);
            cell.record_hits(&stats);
            out.extend(
                scratch
                    .matched()
                    .iter()
                    .filter_map(|&l| state.translation.global_of(l)),
            );
        }
    }

    /// Snapshot of the migration epoch, taken before matching starts;
    /// pair with [`Broker::dedup_matched`] after the last translation.
    fn migration_epoch(&self) -> u64 {
        self.inner.migration_epoch.load(Ordering::Acquire)
    }

    /// Shards are visited one lock at a time, so a publish racing a
    /// live migration can see the migrating subscription on both its
    /// source and its target shard; deduplicating keeps delivery
    /// at-most-once per subscriber per event. (The mirror race — the
    /// event observing the subscription on *neither* shard — is the
    /// same anomaly as an event racing an unsubscribe+resubscribe and
    /// is documented on [`Broker::migrate`].)
    ///
    /// The sort only runs when a relocation actually committed during
    /// the match window (`epoch_before` no longer current): any
    /// relocation able to duplicate this publish's matched set commits
    /// under a shard write lock *between* two of its shard visits, and
    /// therefore between the two epoch reads. Migration-quiescent
    /// publishes — and single-shard brokers, which cannot migrate —
    /// pay nothing.
    fn dedup_matched(&self, epoch_before: u64, matched: &mut Vec<SubscriptionId>) {
        if self.inner.migration_epoch.load(Ordering::Acquire) != epoch_before {
            matched.sort_unstable();
            matched.dedup();
        }
    }

    /// Returns the matched buffer's capacity to the thread for the next
    /// publish — unless the publish grew it past the scratch trim cap,
    /// in which case the spike capacity is dropped rather than pinned
    /// in the thread-local state (the matched-accumulator half of the
    /// high-water fix; [`Broker::trim_oversized`] covers the scratch).
    fn return_matched(&self, mut matched: Vec<SubscriptionId>) {
        self.release_if_oversized(&mut matched);
        PUBLISH_STATE.with(|cell| cell.borrow_mut().matched = matched);
    }

    /// The one place the trim-cap rule for id buffers lives: a vector
    /// grown past [`BrokerBuilder::scratch_trim_cap`] is replaced by an
    /// empty one (capacity released) before being parked for reuse.
    fn release_if_oversized(&self, ids: &mut Vec<SubscriptionId>) {
        if ids.capacity() * std::mem::size_of::<SubscriptionId>() > self.inner.scratch_trim_cap {
            *ids = Vec::new();
        }
    }

    /// The sequential-path half of the scratch high-water fix: the
    /// thread-local publish scratch is trimmed after a publish that
    /// grew it past [`BrokerBuilder::scratch_trim_cap`], mirroring what
    /// the fan-out [`ScratchPool`] does on lease return — one
    /// pathological event cannot pin its peak capacity in every
    /// publisher thread forever. (`trim_publish_scratch` remains the
    /// manual whole-state release.)
    fn trim_oversized(&self, scratch: &mut MatchScratch) {
        if scratch.heap_bytes() > self.inner.scratch_trim_cap {
            scratch.trim();
        }
    }

    /// [`Broker::trim_oversized`] for the thread-local batch scratch:
    /// a batch that grew the lane planes or per-event buckets past
    /// [`BrokerBuilder::scratch_trim_cap`] releases the capacity
    /// instead of pinning it in every publisher thread.
    fn trim_oversized_batch(&self, batch: &mut BatchScratch) {
        if batch.heap_bytes() > self.inner.scratch_trim_cap {
            batch.trim();
        }
    }

    /// The fan-out pipeline the next publish should use, or `None` for
    /// the sequential walk: requires the worker pool (multi-shard sets
    /// only) and at least `parallel_threshold` live subscriptions.
    /// Returning the pipeline itself (not a bool) means the parallel
    /// paths receive a proven-present `Fanout` instead of re-unwrapping
    /// the option on the hot path.
    fn parallel_pipeline<'a>(&self, set: &'a ShardSet) -> Option<&'a Fanout> {
        let fan = set.fanout.as_ref()?;
        let stats = &self.inner.stats;
        let created = stats.subscriptions_created.load(Ordering::Relaxed);
        let removed = stats.subscriptions_removed.load(Ordering::Relaxed);
        (created.saturating_sub(removed) as usize >= self.inner.parallel_threshold).then_some(fan)
    }

    /// Matches `event` against every shard concurrently and appends the
    /// matched **global** ids to `out`, in shard order — the same
    /// sequence [`Broker::match_into`]'s sequential walk produces.
    ///
    /// Each worker takes its shard's read lock, matches into a warm
    /// [`MatchScratch`] leased from the scratch pool (checkout hygiene
    /// — reset + capacity — happens once per lease), translates the
    /// shard-local ids to global ids in place through the shard's own
    /// map, releases the lock, and parks the lease in its [`FanOut`]
    /// slot. The rendezvous itself is leased from a [`FanOutPool`] —
    /// the steady-state parallel publish allocates neither scratches
    /// nor the rendezvous. The caller matches shard 0 itself with the
    /// thread-local scratch, then merges the slots in shard index
    /// order. The rendezvous is panic-safe: a worker that dies
    /// completes its slot empty instead of wedging the publish.
    ///
    /// Jobs capture only their shard's cell and the scratch pool —
    /// never the broker — so a fan-out job can never be the one
    /// holding the broker's last reference.
    fn match_parallel_into(
        &self,
        set: &Arc<ShardSet>,
        fan: &Fanout,
        event: &Arc<Event>,
        scratch: &mut MatchScratch,
        out: &mut Vec<SubscriptionId>,
    ) {
        let shards = set.shards.len();
        let prune = self.inner.prune;
        let run: Arc<FanOut<ScratchLease>> = fan.publish_rendezvous.checkout(shards - 1);
        for s in 1..shards {
            let slot = run.slot(s - 1);
            let cell = Arc::clone(&set.shards[s]);
            let scratches = Arc::clone(&fan.scratches);
            let event = Arc::clone(event);
            fan.pool.submit(move || {
                let lease = {
                    let state = cell.state.read();
                    let mut lease = scratches.lease(&*state.engine);
                    // Pruned shards park their fresh (empty) lease
                    // without matching — the merge sees no ids, exactly
                    // like the sequential walk's `continue`.
                    if !prune || state.synopsis.admits(&event) {
                        let stats = state.engine.match_event_into(&event, &mut lease);
                        cell.record_hits(&stats);
                        // Shard-local translation under the shard read
                        // lock — see `match_into` for why that makes it
                        // sound against concurrent migration.
                        lease.translate_matched(|l| state.translation.global_of(l));
                    } else {
                        cell.record_prunes(1);
                    }
                    lease
                }; // shard lock released before the rendezvous
                drop(event);
                drop(cell);
                slot.fill(lease);
            });
        }
        {
            let cell = &set.shards[0];
            let state = cell.state.read();
            if !prune || state.synopsis.admits(event) {
                let stats = state.engine.match_event_into(event, scratch);
                cell.record_hits(&stats);
                out.extend(
                    scratch
                        .matched()
                        .iter()
                        .filter_map(|&l| state.translation.global_of(l)),
                );
            } else {
                cell.record_prunes(1);
            }
        }
        let mut lost = 0u64;
        run.wait_each(|slot| match slot {
            Some(lease) => out.extend_from_slice(lease.matched()),
            None => lost += 1,
        });
        fan.publish_rendezvous.park(run);
        self.note_lost_workers(lost);
    }

    /// Records fan-out slots whose worker died before filling them
    /// ([`BrokerStats::fanout_worker_failures`]): the publish delivered
    /// without those shards' matches, and operators must be able to see
    /// that the parallel ≡ sequential contract was broken.
    fn note_lost_workers(&self, lost: u64) {
        if lost > 0 {
            self.inner
                .stats
                .fanout_worker_failures
                .fetch_add(lost, Ordering::Relaxed);
        }
    }

    /// Publishes a batch of events — the amortised hot path. Returns
    /// the total number of notifications delivered, and delivers
    /// exactly the same notifications, in the same per-subscriber
    /// order, as the equivalent sequence of [`Broker::publish`] calls.
    ///
    /// The batch is taken as `Arc<Event>`s: one allocation per event,
    /// made by the caller, shared untouched across every shard's
    /// matching and every delivered notification — the batch path never
    /// clones an event. Callers holding plain events can use the
    /// [`Broker::publish_batch_events`] convenience wrapper.
    ///
    /// Compared to the one-by-one sequence, the batch acquires each
    /// shard's read lock **once** (matching all events against a shard
    /// while it is hot in cache, translating through the shard's own
    /// map under the same guard), reuses the thread-local scratch
    /// across the whole batch, and takes the sender-map read lock once
    /// for all deliveries. On a multi-shard broker past the
    /// [`parallel threshold`](BrokerBuilder::parallel_threshold) the
    /// shards additionally match the batch **concurrently** (one worker
    /// per remote shard, merged in shard order), which cuts the batch's
    /// wall-clock latency on multi-core hosts.
    pub fn publish_batch(&self, events: &[Arc<Event>]) -> usize {
        if events.is_empty() {
            return 0;
        }
        // Phase A: match every event against every shard, bucketing
        // matched global ids per event. Shard-major order amortises
        // lock acquisitions; buckets keep delivery event-major so
        // per-subscriber notification order equals the sequential one.
        let set = self.shard_set();
        let pipeline = self.parallel_pipeline(&set);
        let epoch = self.migration_epoch();
        let buckets = PUBLISH_STATE.with(|cell| {
            let state = &mut *cell.borrow_mut();
            let mut buckets = std::mem::take(&mut state.buckets);
            buckets.iter_mut().for_each(Vec::clear);
            if buckets.len() < events.len() {
                // Grow to the high-water batch length, never shrink:
                // a short batch must not free the longer tail's
                // capacity (everything zips against `events`, so
                // extra cleared buckets are simply ignored).
                buckets.resize_with(events.len(), Vec::new);
            }
            if let Some(fan) = pipeline {
                self.match_batch_parallel(
                    &set,
                    fan,
                    events,
                    &mut state.batch,
                    &mut state.skip,
                    &mut buckets,
                );
            } else {
                let prune = self.inner.prune;
                for cell in &set.shards {
                    let shard_state = cell.state.read();
                    // One synopsis walk per shard fills the whole
                    // batch's skip mask — the same per-event prune
                    // decisions as before, under the once-per-batch
                    // shard lock.
                    let pruned = if prune {
                        shard_state
                            .synopsis
                            .admits_batch(events, &[], &mut state.skip)
                            as u64
                    } else {
                        state.skip.clear();
                        state.skip.resize(events.len(), false);
                        0
                    };
                    cell.record_prunes(pruned);
                    if pruned as usize == events.len() {
                        continue;
                    }
                    state.batch.reset();
                    state.batch.ensure_capacity(&*shard_state.engine);
                    let stats =
                        shard_state
                            .engine
                            .match_batch(events, &state.skip, &mut state.batch);
                    cell.record_hits(&stats);
                    for (e, bucket) in buckets.iter_mut().enumerate().take(events.len()) {
                        bucket.extend(
                            state
                                .batch
                                .matched(e)
                                .iter()
                                .filter_map(|&l| shard_state.translation.global_of(l)),
                        );
                    }
                }
            }
            self.trim_oversized_batch(&mut state.batch);
            for bucket in buckets.iter_mut().take(events.len()) {
                // Same migration-race guard as the single-publish path.
                self.dedup_matched(epoch, bucket);
            }
            buckets
        });
        self.inner
            .stats
            .events_published
            .fetch_add(events.len() as u64, Ordering::Relaxed);

        // Phase B: delivery, outside the scratch borrow and all engine
        // locks. Each event snapshots its matched subscribers' queues
        // under a short sender-map read and enqueues outside it — the
        // same two-phase walk as the single-publish path, so a slow
        // consumer (or a `Block`-policy wait) in the middle of a batch
        // never extends the window in which an unsubscribe is stalled.
        // The caller's Arcs are delivered as-is: no event is cloned.
        let mut delivered = 0usize;
        for (event, matched) in events.iter().zip(&buckets) {
            if matched.is_empty() {
                continue;
            }
            delivered += self.deliver_matched_arc(event, matched);
        }
        // Bucket half of the high-water fix: a bucket a pathological
        // event grew past the trim cap is released, not parked.
        let mut buckets = buckets;
        for bucket in &mut buckets {
            self.release_if_oversized(bucket);
        }
        PUBLISH_STATE.with(|cell| cell.borrow_mut().buckets = buckets);
        delivered
    }

    /// [`Broker::publish_batch`] for callers holding plain events: each
    /// is cloned into an `Arc` once (the only copies made — matching
    /// and delivery then share them). The `Arc` list itself lives in a
    /// reusable thread-local buffer, so the steady-state wrapper adds
    /// no allocation beyond the per-event `Arc`s.
    pub fn publish_batch_events(&self, events: &[Event]) -> usize {
        // Take the buffer *out* of the thread-local cell: publish_batch
        // re-borrows PUBLISH_STATE, so the RefCell borrow must not be
        // live across the call.
        let mut shared =
            PUBLISH_STATE.with(|cell| std::mem::take(&mut cell.borrow_mut().event_arcs));
        shared.clear();
        shared.extend(events.iter().map(|e| Arc::new(e.clone())));
        let delivered = self.publish_batch(&shared);
        // Drop the Arcs now (deliveries hold their own clones) and park
        // the buffer's capacity for the next batch — unless a
        // pathological batch grew it past the trim cap.
        shared.clear();
        if shared.capacity() * std::mem::size_of::<Arc<Event>>() > self.inner.scratch_trim_cap {
            shared = Vec::new();
        }
        PUBLISH_STATE.with(|cell| cell.borrow_mut().event_arcs = shared);
        delivered
    }

    /// Batch counterpart of [`Broker::match_parallel_into`]: each
    /// remote shard's worker runs the engine's batch kernel over the
    /// whole batch (shard lock taken once, one leased [`BatchScratch`]
    /// reused across the batch, the shard's synopsis consulted once to
    /// build the skip mask) into per-event buckets; the caller does
    /// shard 0 inline and merges the worker buckets in shard order.
    fn match_batch_parallel(
        &self,
        set: &Arc<ShardSet>,
        fan: &Fanout,
        events: &[Arc<Event>],
        batch: &mut BatchScratch,
        skip: &mut Vec<bool>,
        buckets: &mut [Vec<SubscriptionId>],
    ) {
        let shards = set.shards.len();
        let prune = self.inner.prune;
        // The worker jobs are `'static`; the one per-batch allocation
        // for sharing the event list is this Vec of Arc clones.
        let shared: Arc<Vec<Arc<Event>>> = Arc::new(events.to_vec());
        // Each worker hands back its shard's matches as one flat id
        // vector plus per-event end offsets — two allocations per shard
        // per batch instead of one Vec per event; the rendezvous
        // carrying them is pooled.
        let run: Arc<FanOut<ShardMatches>> = fan.batch_rendezvous.checkout(shards - 1);
        for s in 1..shards {
            let slot = run.slot(s - 1);
            let cell = Arc::clone(&set.shards[s]);
            let scratches = Arc::clone(&fan.batch_scratches);
            let shared = Arc::clone(&shared);
            fan.pool.submit(move || {
                let out = {
                    let state = cell.state.read();
                    let mut skip: Vec<bool> = Vec::new();
                    let pruned = if prune {
                        state.synopsis.admits_batch(&shared, &[], &mut skip) as u64
                    } else {
                        skip.resize(shared.len(), false);
                        0
                    };
                    cell.record_prunes(pruned);
                    let mut flat: Vec<SubscriptionId> = Vec::new();
                    let mut ends: Vec<usize> = Vec::with_capacity(shared.len());
                    if pruned as usize == shared.len() {
                        // Fully-pruned shard: aligned empty per-event
                        // slices, no scratch lease, no kernel run —
                        // exactly like the sequential walk's `continue`.
                        ends.resize(shared.len(), 0);
                    } else {
                        let mut lease = scratches.lease(&*state.engine);
                        let stats = state.engine.match_batch(&shared, &skip, &mut lease);
                        cell.record_hits(&stats);
                        for e in 0..shared.len() {
                            // Pruned events contribute no ids; the end
                            // offset is still pushed so per-event
                            // slices stay aligned with the batch.
                            flat.extend(
                                lease
                                    .matched(e)
                                    .iter()
                                    .filter_map(|&l| state.translation.global_of(l)),
                            );
                            ends.push(flat.len());
                        }
                    }
                    (flat, ends)
                };
                drop(shared);
                drop(cell);
                slot.fill(out);
            });
        }
        {
            let cell = &set.shards[0];
            let state = cell.state.read();
            let pruned = if prune {
                state.synopsis.admits_batch(events, &[], skip) as u64
            } else {
                skip.clear();
                skip.resize(events.len(), false);
                0
            };
            cell.record_prunes(pruned);
            if (pruned as usize) < events.len() {
                batch.reset();
                batch.ensure_capacity(&*state.engine);
                let stats = state.engine.match_batch(events, skip, batch);
                cell.record_hits(&stats);
                for (e, bucket) in buckets.iter_mut().enumerate().take(events.len()) {
                    bucket.extend(
                        batch
                            .matched(e)
                            .iter()
                            .filter_map(|&l| state.translation.global_of(l)),
                    );
                }
            }
        }
        // Slot order is shard order, so per-event ids concatenate
        // exactly like the sequential shard-major walk.
        let mut lost = 0u64;
        run.wait_each(|slot| {
            let Some((flat, ends)) = slot else {
                lost += 1;
                return;
            };
            let mut start = 0usize;
            for (bucket, &end) in buckets.iter_mut().zip(&ends) {
                bucket.extend_from_slice(&flat[start..end]);
                start = end;
            }
        });
        fan.batch_rendezvous.park(run);
        self.note_lost_workers(lost);
    }

    /// Queues `event` to the subscribers in `matched`.
    fn deliver_matched(&self, event: Event, matched: &[SubscriptionId]) -> usize {
        if matched.is_empty() {
            return 0;
        }
        self.deliver_matched_arc(&Arc::new(event), matched)
    }

    /// [`Broker::deliver_matched`] for an already-shared event: the
    /// caller's `Arc` is what every subscriber receives (zero copies).
    ///
    /// Delivery is two-phase (the unsubscribe-stall fix): the
    /// sender-map read lock is held only long enough to snapshot the
    /// matched subscribers' queue handles into a thread-local buffer;
    /// every enqueue — including a [`DeliveryPolicy::Block`] wait —
    /// then runs with **no** broker lock held, so subscribe/unsubscribe
    /// churn never queues behind a long fan-out walk. At-most-once
    /// still holds: a subscriber unsubscribed after the snapshot has
    /// its queue closed by the unsubscribe, and the late enqueue lands
    /// as a counted disconnected send, not a delivery.
    fn deliver_matched_arc(&self, event: &Arc<Event>, matched: &[SubscriptionId]) -> usize {
        if matched.is_empty() {
            return 0;
        }
        let mut targets = PUBLISH_STATE.with(|cell| {
            let state = &mut *cell.borrow_mut();
            let mut targets = std::mem::take(&mut state.targets);
            targets.clear();
            {
                // lint: allow(hot-path-locking, reason = "delivery snapshots the sender map by design — held for the matched-id lookups only, never across an enqueue")
                let senders = self.inner.senders.read();
                targets.extend(
                    matched
                        .iter()
                        .filter_map(|id| senders.get(id).map(|q| (*id, Arc::clone(q)))),
                );
            }
            targets
        });
        let delivered = self.enqueue_targets(&targets, event);
        targets.clear();
        // Same trim-cap rule as the matched-id buffer: a pathological
        // fan-out must not pin its peak snapshot capacity per thread.
        if targets.capacity() * std::mem::size_of::<(SubscriptionId, Arc<NotifyQueue>)>()
            > self.inner.scratch_trim_cap
        {
            targets = Vec::new();
        }
        PUBLISH_STATE.with(|cell| cell.borrow_mut().targets = targets);
        delivered
    }

    /// Delivery core: enqueues `event` onto each snapshot target's
    /// queue — no broker lock held, one classed queue lock per target —
    /// scheduling consumer drain jobs and pruning subscribers whose
    /// queue turned out closed.
    fn enqueue_targets(
        &self,
        targets: &[(SubscriptionId, Arc<NotifyQueue>)],
        event: &Arc<Event>,
    ) -> usize {
        let mut delivered = 0usize;
        let mut dropped = 0u64;
        let mut disconnected = 0u64;
        let mut dead: Vec<SubscriptionId> = Vec::new();
        for (id, queue) in targets {
            let (outcome, schedule) = queue.enqueue(Arc::clone(event));
            match outcome {
                Enqueue::Delivered => delivered += 1,
                Enqueue::Dropped => dropped += 1,
                Enqueue::Disconnected => {
                    disconnected += 1;
                    dead.push(*id);
                }
            }
            if schedule {
                self.schedule_drain(*id, queue);
            }
        }
        let stats = &self.inner.stats;
        if delivered > 0 {
            stats
                .notifications_delivered
                .fetch_add(delivered as u64, Ordering::Relaxed);
        }
        if dropped > 0 {
            stats
                .notifications_dropped
                .fetch_add(dropped, Ordering::Relaxed);
        }
        if disconnected > 0 {
            stats
                .notifications_disconnected
                .fetch_add(disconnected, Ordering::Relaxed);
        }
        self.prune_dead(dead);
        delivered
    }

    /// Hands `queue`'s freshly non-empty backlog to the delivery pool.
    /// Called only on the enqueue that flipped the queue's scheduled
    /// bit, so each consumer queue has at most one drain job queued or
    /// running — the per-subscriber FIFO guarantee. The job captures
    /// only a `Weak` broker reference: it can never keep a dropped
    /// broker alive, and the pool's own Drop (which runs queued jobs to
    /// completion) cannot deadlock on the broker's teardown.
    fn schedule_drain(&self, id: SubscriptionId, queue: &Arc<NotifyQueue>) {
        let Some(pool) = self.inner.delivery_pool.get() else {
            // Unreachable in practice: the scheduled bit only flips on
            // consumer queues, and the first consumer subscribe built
            // the pool. Degrades to pull-only delivery if not.
            return;
        };
        let weak = Arc::downgrade(&self.inner);
        let queue = Arc::clone(queue);
        pool.submit(move || drain_consumer_queue(&weak, id, &queue));
    }

    /// Unsubscribes disconnected subscribers found during delivery
    /// (idempotent: batch delivery may report one subscriber several
    /// times).
    fn prune_dead(&self, dead: Vec<SubscriptionId>) {
        for id in dead {
            self.inner.unsubscribe(id);
        }
    }

    // lint: end-hot-path

    /// A cloneable publishing handle for producer threads.
    pub fn publisher(&self) -> Publisher {
        Publisher {
            broker: self.clone(),
        }
    }

    /// Number of live subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.inner.senders.read().len()
    }

    /// Number of engine shards subscriptions are partitioned across
    /// (the current resize epoch's).
    pub fn shard_count(&self) -> usize {
        self.shard_set().shards.len()
    }

    /// Number of persistent fan-out worker threads (0 on single-shard
    /// brokers, which have no parallel pipeline).
    pub fn parallel_workers(&self) -> usize {
        self.shard_set()
            .fanout
            .as_ref()
            .map_or(0, |f| f.pool.threads())
    }

    /// The fan-out scratch pool, for observability (steady-state memory
    /// probes); `None` on single-shard brokers.
    pub fn scratch_pool(&self) -> Option<Arc<ScratchPool>> {
        self.shard_set()
            .fanout
            .as_ref()
            .map(|f| Arc::clone(&f.scratches))
    }

    /// The engines' memory breakdown, summed across shards, plus the
    /// routing overhead — the write-side directory's tables and stored
    /// expressions *and* every shard's read-side translation map —
    /// reported as `unsub_support`.
    pub fn memory_usage(&self) -> MemoryUsage {
        let set = self.shard_set();
        let mut routing = self.inner.directory.read().heap_bytes();
        let mut usage = MemoryUsage::default();
        for cell in &set.shards {
            let state = cell.state.read();
            routing += state.translation.heap_bytes() + state.synopsis.heap_bytes();
            usage = usage + state.engine.memory_usage();
        }
        // Warm batch scratches parked in the fan-out pool are broker
        // memory too — charge them to the scratch bucket.
        let pooled_scratch = set
            .fanout
            .as_ref()
            .map_or(0, |fan| fan.batch_scratches.heap_bytes());
        usage
            + MemoryUsage {
                unsub_support: routing,
                scratch: pooled_scratch,
                ..MemoryUsage::default()
            }
    }

    /// Which engine kind the broker runs (of the first shard, when
    /// heterogeneous engines were supplied).
    pub fn engine_kind(&self) -> EngineKind {
        self.shard_set().shards[0].state.read().engine.kind()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> BrokerStats {
        let s = &self.inner.stats;
        BrokerStats {
            events_published: s.events_published.load(Ordering::Relaxed),
            notifications_delivered: s.notifications_delivered.load(Ordering::Relaxed),
            notifications_dropped: s.notifications_dropped.load(Ordering::Relaxed),
            notifications_disconnected: s.notifications_disconnected.load(Ordering::Relaxed),
            subscriptions_created: s.subscriptions_created.load(Ordering::Relaxed),
            subscriptions_removed: s.subscriptions_removed.load(Ordering::Relaxed),
            subscriptions_migrated: s.subscriptions_migrated.load(Ordering::Relaxed),
            fanout_worker_failures: s.fanout_worker_failures.load(Ordering::Relaxed),
            subscribers_quarantined: s.subscribers_quarantined.load(Ordering::Relaxed),
            quarantine_recoveries: s.quarantine_recoveries.load(Ordering::Relaxed),
            consumer_panics: s.consumer_panics.load(Ordering::Relaxed),
        }
    }

    /// One subscriber's lag snapshot — queue depth, lifetime
    /// enqueued/shed counts, quarantine status — or `None` for an
    /// unknown id.
    pub fn subscriber_lag(&self, id: SubscriptionId) -> Option<SubscriberLag> {
        self.inner.senders.read().get(&id).map(|queue| queue.lag())
    }

    /// Number of subscribers currently quarantined (demoted and not
    /// yet recovered).
    pub fn quarantined_count(&self) -> usize {
        self.inner
            .senders
            .read()
            .values()
            .filter(|queue| queue.quarantined())
            .count()
    }

    /// One slow-consumer quarantine tick: every subscriber's lag is
    /// checked against the configured [`QuarantineConfig`] — consumers
    /// over the watermark accumulate strikes toward demotion (queue
    /// capped, or closed under
    /// [`auto_disconnect`](QuarantineConfig::auto_disconnect));
    /// quarantined consumers that drained accumulate strikes toward
    /// release. A no-op unless [`BrokerBuilder::quarantine`] was set.
    ///
    /// This is the tick the
    /// [`BrokerBuilder::delivery_maintenance`] background thread runs
    /// on its interval; it is public so operators and tests can drive
    /// the state machine deterministically. Ticks serialize with
    /// migration/resize on the maintenance lock (sender-map *contents*
    /// must not churn mid-walk is not required — the read guard only
    /// pins the map, and each queue is judged under its own lock).
    pub fn delivery_maintenance_tick(&self) -> DeliveryTickReport {
        let Some(config) = self.inner.quarantine else {
            return DeliveryTickReport::default();
        };
        let _maintenance = self.inner.maintenance.lock();
        let mut report = DeliveryTickReport::default();
        let mut to_disconnect: Vec<SubscriptionId> = Vec::new();
        {
            // Lock order: `senders` read → per-queue leaf locks, one at
            // a time (never two queues at once).
            let senders = self.inner.senders.read();
            for (id, queue) in senders.iter() {
                match queue.maintenance_tick(&config) {
                    TickOutcome::Steady => {}
                    TickOutcome::Demoted => report.demoted += 1,
                    TickOutcome::Recovered => report.recovered += 1,
                    TickOutcome::Disconnect => {
                        report.disconnected += 1;
                        to_disconnect.push(*id);
                    }
                }
            }
        }
        // Unsubscribing takes the sender-map write lock — strictly
        // after the read guard above is gone.
        for id in to_disconnect {
            self.inner.unsubscribe(id);
        }
        let stats = &self.inner.stats;
        let demotions = (report.demoted + report.disconnected) as u64;
        if demotions > 0 {
            stats
                .subscribers_quarantined
                .fetch_add(demotions, Ordering::Relaxed);
        }
        if report.recovered > 0 {
            stats
                .quarantine_recoveries
                .fetch_add(report.recovered as u64, Ordering::Relaxed);
        }
        report
    }

    /// Whether a background delivery-maintenance thread is attached
    /// (see [`BrokerBuilder::delivery_maintenance`]).
    pub fn delivery_maintenance_active(&self) -> bool {
        self.inner.delivery_maintenance.lock().is_some()
    }

    /// One background tick of `policy`; returns the subscriptions
    /// moved.
    fn background_tick(&self, policy: RebalancePolicy) -> usize {
        match policy {
            RebalancePolicy::SubscriptionCount => self.migrate(BACKGROUND_REBALANCE_CHUNK),
            RebalancePolicy::MatchFrequency => {
                self.rebalance_by_match_frequency(BACKGROUND_REBALANCE_CHUNK)
            }
        }
    }
}

/// The background rebalance thread body: tick `policy` every
/// `interval` until the broker goes away or shutdown is signalled. The
/// thread holds only a `Weak` reference — it can never keep a dropped
/// broker alive, and a failed upgrade is its exit signal.
fn background_rebalance_loop(
    weak: Weak<BrokerInner>,
    stop: Arc<StopLatch>,
    interval: Duration,
    policy: RebalancePolicy,
) {
    while !stop.wait_timeout(interval) {
        let Some(inner) = weak.upgrade() else {
            break;
        };
        let broker = Broker { inner };
        broker.background_tick(policy);
        // `broker` drops here; if an exiting owner raced us, this may
        // be the last reference — BrokerInner's Drop skips joining the
        // thread it is running on, so the teardown stays clean.
    }
}

/// The background delivery-maintenance thread body: one quarantine
/// tick every `interval` until the broker goes away or shutdown is
/// signalled. Same `Weak`-upgrade lifecycle as the rebalancer loop.
fn delivery_maintenance_loop(weak: Weak<BrokerInner>, stop: Arc<StopLatch>, interval: Duration) {
    while !stop.wait_timeout(interval) {
        let Some(inner) = weak.upgrade() else {
            break;
        };
        let broker = Broker { inner };
        broker.delivery_maintenance_tick();
    }
}

/// One consumer drain job: moves batches off `queue` and feeds them to
/// the subscriber's callback until the queue is empty (which clears the
/// scheduled bit under the queue lock — the next enqueue schedules a
/// fresh job). Runs on the delivery pool with nothing locked across
/// the callback; a panicking callback is caught, its subscription torn
/// down, and the worker — and every other subscriber — continues.
fn drain_consumer_queue(weak: &Weak<BrokerInner>, id: SubscriptionId, queue: &Arc<NotifyQueue>) {
    let Some(consumer) = queue.consumer() else {
        return;
    };
    let mut batch: Vec<Arc<Event>> = Vec::with_capacity(DELIVERY_DRAIN_BATCH);
    loop {
        batch.clear();
        if !queue.pop_batch(&mut batch, DELIVERY_DRAIN_BATCH) {
            return;
        }
        for event in batch.drain(..) {
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                consumer(event);
            }));
            if outcome.is_err() {
                // Panic isolation: discard this subscriber's backlog
                // and remove it; the broker may already be mid-drop
                // (failed upgrade), in which case the queue close is
                // all that is left to do.
                queue.close(true);
                if let Some(inner) = weak.upgrade() {
                    inner.stats.consumer_panics.fetch_add(1, Ordering::Relaxed);
                    inner.unsubscribe(id);
                }
                return;
            }
        }
    }
}

impl fmt::Debug for Broker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Broker")
            .field("engine", &self.engine_kind())
            .field("subscriptions", &self.subscription_count())
            .finish()
    }
}

/// A cloneable handle for publishing from producer threads.
///
/// # Examples
///
/// ```
/// use boolmatch_broker::Broker;
/// use boolmatch_types::Event;
///
/// let broker = Broker::builder().build();
/// let publisher = broker.publisher();
/// std::thread::spawn(move || {
///     publisher.publish(Event::builder().attr("n", 1_i64).build());
/// })
/// .join()
/// .unwrap();
/// ```
#[derive(Clone, Debug)]
pub struct Publisher {
    broker: Broker,
}

impl Publisher {
    /// Publishes an event; see [`Broker::publish`].
    pub fn publish(&self, event: Event) -> usize {
        self.broker.publish(event)
    }

    /// Publishes an already-shared event; see [`Broker::publish_arc`].
    pub fn publish_arc(&self, event: Arc<Event>) -> usize {
        self.broker.publish_arc(event)
    }

    /// Publishes a batch of shared events; see
    /// [`Broker::publish_batch`].
    pub fn publish_batch(&self, events: &[Arc<Event>]) -> usize {
        self.broker.publish_batch(events)
    }

    /// Publishes a batch of plain events; see
    /// [`Broker::publish_batch_events`].
    pub fn publish_batch_events(&self, events: &[Event]) -> usize {
        self.broker.publish_batch_events(events)
    }
}

/// Configures and builds a [`Broker`].
#[derive(Default)]
pub struct BrokerBuilder {
    kind: Option<EngineKind>,
    custom: Option<Vec<BoxedEngine>>,
    /// 0 means "not set" and resolves to 1.
    shards: usize,
    policy: DeliveryPolicy,
    quarantine: Option<QuarantineConfig>,
    delivery_interval: Option<Duration>,
    delivery_workers: Option<usize>,
    parallel_threshold: Option<usize>,
    worker_threads: Option<usize>,
    scratch_trim_cap: Option<usize>,
    recycled_ids: bool,
    background: Option<(Duration, RebalancePolicy)>,
    placement: PlacementPolicy,
    /// `None` means "not set" and resolves to enabled.
    shard_pruning: Option<bool>,
}

impl fmt::Debug for BrokerBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BrokerBuilder")
            .field("kind", &self.kind)
            .field("custom", &self.custom.as_ref().map(Vec::len))
            .field("shards", &self.shards.max(1))
            .field("policy", &self.policy)
            .field("quarantine", &self.quarantine)
            .field("delivery_maintenance", &self.delivery_interval)
            .field("delivery_workers", &self.delivery_workers)
            .field("parallel_threshold", &self.parallel_threshold)
            .field("worker_threads", &self.worker_threads)
            .field("scratch_trim_cap", &self.scratch_trim_cap)
            .field("recycled_ids", &self.recycled_ids)
            .field("background_rebalance", &self.background)
            .field("placement", &self.placement)
            .field("shard_pruning", &self.shard_pruning.unwrap_or(true))
            .finish()
    }
}

impl BrokerBuilder {
    /// Selects the matching engine (default:
    /// [`EngineKind::NonCanonical`]).
    #[must_use]
    pub fn engine(mut self, kind: EngineKind) -> Self {
        self.kind = Some(kind);
        self
    }

    /// Partitions subscriptions across `n` engine shards, each behind
    /// its own lock (default: 1, which is behaviourally identical to an
    /// unsharded broker). More shards mean subscription churn blocks a
    /// smaller slice of concurrent matching and smaller per-shard
    /// phase-2 state; see the `shard_scaling` bench. The count can be
    /// changed live later with [`Broker::resize`].
    ///
    /// Ignored when [`BrokerBuilder::engine_instances`] supplies
    /// pre-built engines (the instance count is the shard count).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn shards(mut self, n: usize) -> Self {
        assert!(n > 0, "a broker needs at least one engine shard");
        self.shards = n;
        self
    }

    /// Supplies a single pre-built (possibly custom) engine instead of
    /// an [`EngineKind`]; takes precedence over
    /// [`BrokerBuilder::engine`] and [`BrokerBuilder::shards`]. Useful
    /// for non-default engine configurations and for instrumented
    /// engines in tests.
    #[must_use]
    pub fn engine_instance(self, engine: BoxedEngine) -> Self {
        self.engine_instances(vec![engine])
    }

    /// Supplies one pre-built engine per shard (shard `i` runs
    /// `engines[i]`); takes precedence over [`BrokerBuilder::engine`]
    /// and [`BrokerBuilder::shards`].
    ///
    /// # Panics
    ///
    /// Panics if `engines` is empty.
    #[must_use]
    pub fn engine_instances(mut self, engines: Vec<BoxedEngine>) -> Self {
        assert!(
            !engines.is_empty(),
            "a broker needs at least one engine shard"
        );
        self.custom = Some(engines);
        self
    }

    /// Sets the broker-wide default delivery policy (default:
    /// [`DeliveryPolicy::Unbounded`]); individual subscribers can
    /// override it with [`Broker::subscribe_with_policy`].
    #[must_use]
    pub fn delivery(mut self, policy: DeliveryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables slow-consumer quarantine with the given thresholds; see
    /// [`QuarantineConfig`] and [`Broker::delivery_maintenance_tick`].
    /// Without this, lag is unmonitored and ticks are no-ops.
    #[must_use]
    pub fn quarantine(mut self, config: QuarantineConfig) -> Self {
        self.quarantine = Some(config);
        self
    }

    /// Attaches a **background delivery-maintenance thread**: every
    /// `interval` it runs one
    /// [`Broker::delivery_maintenance_tick`], demoting (and possibly
    /// recovering) slow consumers autonomously. Same lifecycle as the
    /// [`background rebalance`](BrokerBuilder::background_rebalance)
    /// thread: parks between ticks, holds only a weak broker
    /// reference, wakes immediately on shutdown, joined when the last
    /// broker handle drops. Pointless without
    /// [`BrokerBuilder::quarantine`].
    #[must_use]
    pub fn delivery_maintenance(mut self, interval: Duration) -> Self {
        self.delivery_interval = Some(interval);
        self
    }

    /// Sets the number of delivery worker threads draining
    /// consumer-callback queues (default:
    /// [`DEFAULT_DELIVERY_WORKERS`]). The pool spawns lazily on the
    /// first [`Broker::subscribe_consumer`].
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn delivery_workers(mut self, n: usize) -> Self {
        assert!(n > 0, "a delivery pool needs at least one thread");
        self.delivery_workers = Some(n);
        self
    }

    /// Bounds the global id table under unbounded subscription churn:
    /// retired id slots are reissued (LIFO) instead of growing the
    /// table forever. Every reissue carries a fresh **generation tag**
    /// in the id's high bits, so a stale handle's late unsubscribe can
    /// never alias — and remove — the slot's new owner; recycling is
    /// ABA-safe even with drop-unsubscribing [`Subscription`] handles.
    /// The trade-off: ids no longer align with an unsharded engine's
    /// arrival-order ids (relevant to tests comparing against flat
    /// engines, not to applications).
    #[must_use]
    pub fn recycled_ids(mut self) -> Self {
        self.recycled_ids = true;
        self
    }

    /// Attaches a **background rebalance thread**: every `interval` it
    /// runs one tick of `policy`, live-migrating at most
    /// [`BACKGROUND_REBALANCE_CHUNK`] subscriptions — continuous,
    /// amortised rebalancing instead of operator-triggered
    /// [`Broker::rebalance`] bursts. The thread parks between ticks,
    /// holds only a weak reference to the broker (it can never keep a
    /// dropped broker alive), wakes immediately on shutdown, and is
    /// joined when the last broker handle drops. Ticks serialize with
    /// operator-driven migration and [`Broker::resize`] on the broker's
    /// maintenance lock; none of it ever blocks the publish hot path.
    #[must_use]
    pub fn background_rebalance(mut self, interval: Duration, policy: RebalancePolicy) -> Self {
        self.background = Some((interval, policy));
        self
    }

    /// Chooses where new subscriptions land (default:
    /// [`PlacementPolicy::LeastLoaded`]).
    /// [`ClusterByAttribute`](PlacementPolicy::ClusterByAttribute)
    /// routes each subscription to the shard its dominant equality
    /// attribute hashes to (load-capped, falling back to least-loaded
    /// when a cluster outgrows twice the other shards' average), which
    /// makes the per-shard attribute synopses selective — on a
    /// partitionable workload an event then candidates at one or two
    /// shards and [`shard pruning`](BrokerBuilder::shard_pruning) skips
    /// the rest. Delivery is identical under either policy; only shard
    /// assignment — and therefore pruning effectiveness — changes.
    #[must_use]
    pub fn placement(mut self, policy: PlacementPolicy) -> Self {
        self.placement = policy;
        self
    }

    /// Enables or disables content-aware shard pruning on the publish
    /// paths (default: **enabled**). When enabled, every publish
    /// consults each shard's attribute synopsis (under the shard read
    /// lock it already holds) and skips shards that provably contain
    /// zero candidate subscriptions for the event. The synopsis is
    /// conservative — it may admit a shard with no matches but never
    /// excludes one with a match — so delivery is identical either
    /// way; disabling only serves A/B measurement (see the
    /// `bench_snapshot` prune rows).
    #[must_use]
    pub fn shard_pruning(mut self, enabled: bool) -> Self {
        self.shard_pruning = Some(enabled);
        self
    }

    /// Sets the live-subscription count at which publishes switch from
    /// the sequential shard walk to the parallel fan-out (default:
    /// [`DEFAULT_PARALLEL_THRESHOLD`]). `0` forces the fan-out for
    /// every publish on a multi-shard broker; `usize::MAX` disables it.
    /// Single-shard brokers always walk sequentially — their behaviour
    /// is unchanged by this knob.
    #[must_use]
    pub fn parallel_threshold(mut self, subscriptions: usize) -> Self {
        self.parallel_threshold = Some(subscriptions);
        self
    }

    /// Sets the number of persistent fan-out worker threads (default:
    /// one per remote shard, capped at the host's available
    /// parallelism). Only multi-shard brokers spawn workers at all.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn worker_threads(mut self, n: usize) -> Self {
        assert!(n > 0, "a worker pool needs at least one thread");
        self.worker_threads = Some(n);
        self
    }

    /// Sets the heap-byte cap above which a publish scratch is trimmed
    /// — capacity released — instead of kept at its high-water size
    /// (default: [`DEFAULT_SCRATCH_TRIM_CAP`]). Applied on both
    /// publish paths: a fan-out scratch returning to the pool, and the
    /// sequential path's thread-local scratch after each
    /// publish/batch. Without a cap, one pathological event (say, a
    /// 100k-candidate spike) would pin its peak allocation in every
    /// pooled scratch and every publisher thread for the broker's
    /// lifetime. `usize::MAX` disables trimming (the pre-cap
    /// behaviour); `0` trims on every return — useful in
    /// memory-starved deployments, at the price of re-growing the
    /// buffers each publish.
    #[must_use]
    pub fn scratch_trim_cap(mut self, bytes: usize) -> Self {
        self.scratch_trim_cap = Some(bytes);
        self
    }

    /// Builds the broker.
    pub fn build(self) -> Broker {
        let engines = self.custom.unwrap_or_else(|| {
            let kind = self.kind.unwrap_or(EngineKind::NonCanonical);
            (0..self.shards.max(1)).map(|_| kind.build()).collect()
        });
        let shard_count = engines.len();
        let grow_kind = engines[0].kind();
        let scratch_trim_cap = self.scratch_trim_cap.unwrap_or(DEFAULT_SCRATCH_TRIM_CAP);
        let worker_threads = self.worker_threads;
        // The parallel pipeline exists only when there is more than one
        // shard to fan out over; a single-shard broker builds no worker
        // pool and always takes the sequential walk.
        let fanout = (shard_count >= 2).then(|| {
            let threads = worker_threads.unwrap_or_else(|| {
                (shard_count - 1)
                    .min(std::thread::available_parallelism().map_or(1, std::num::NonZero::get))
            });
            Fanout::new(threads, scratch_trim_cap)
        });
        let shards: Vec<Arc<ShardCell>> = engines
            .into_iter()
            .enumerate()
            .map(|(index, engine)| Arc::new(ShardCell::new(engine, index)))
            .collect();
        let directory = if self.recycled_ids {
            SubscriptionDirectory::with_recycled_ids(shard_count)
        } else {
            SubscriptionDirectory::new(shard_count)
        };
        let inner = Arc::new(BrokerInner {
            shard_set: RwLock::new(Arc::new(ShardSet { shards, fanout })),
            directory: RwLock::new(directory),
            maintenance: Mutex::new(()),
            freq_baseline: Mutex::new(FreqWindow::default()),
            scratch_trim_cap,
            migration_epoch: AtomicU64::new(0),
            senders: RwLock::new(HashMap::new()),
            policy: self.policy,
            quarantine: self.quarantine,
            delivery_pool: OnceLock::new(),
            delivery_workers: self.delivery_workers.unwrap_or(DEFAULT_DELIVERY_WORKERS),
            delivery_maintenance: Mutex::new(None),
            stats: AtomicStats::default(),
            parallel_threshold: self
                .parallel_threshold
                .unwrap_or(DEFAULT_PARALLEL_THRESHOLD),
            worker_threads,
            grow_kind,
            placement: self.placement,
            prune: self.shard_pruning.unwrap_or(true),
            rebalancer: Mutex::new(None),
        });
        // Register the broker-global locks with lockdep (debug builds):
        // runtime enforcement of the documented order — `maintenance`
        // outermost, shard locks ascending, `directory` innermost,
        // `senders`/`shard-set`/`freq-baseline`/`rebalancer` leaves.
        inner.directory.set_class(lock_classes::DIRECTORY);
        inner.maintenance.set_class(lock_classes::MAINTENANCE);
        inner.senders.set_class(lock_classes::SENDERS);
        inner.shard_set.set_class("shard-set");
        inner.freq_baseline.set_class("freq-baseline");
        inner.rebalancer.set_class("rebalancer");
        inner.delivery_maintenance.set_class("delivery-maintenance");
        if let Some((interval, policy)) = self.background {
            let stop = Arc::new(StopLatch::new());
            let weak = Arc::downgrade(&inner);
            let thread = {
                let stop = Arc::clone(&stop);
                std::thread::Builder::new()
                    .name("boolmatch-rebalancer".into())
                    .spawn(move || background_rebalance_loop(weak, stop, interval, policy))
                    .expect("spawning the background rebalance thread")
            };
            *inner.rebalancer.lock() = Some(BackgroundHandle { stop, thread });
        }
        if let Some(interval) = self.delivery_interval {
            let stop = Arc::new(StopLatch::new());
            let weak = Arc::downgrade(&inner);
            let thread = {
                let stop = Arc::clone(&stop);
                std::thread::Builder::new()
                    .name("boolmatch-delivery".into())
                    .spawn(move || delivery_maintenance_loop(weak, stop, interval))
                    .expect("spawning the delivery maintenance thread")
            };
            *inner.delivery_maintenance.lock() = Some(BackgroundHandle { stop, thread });
        }
        Broker { inner }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(pairs: &[(&str, i64)]) -> Event {
        Event::from_pairs(pairs.iter().map(|(n, v)| (*n, *v)))
    }

    #[test]
    fn subscribe_publish_receive() {
        let broker = Broker::builder().build();
        let sub = broker.subscribe("a = 1 and b = 2").unwrap();
        assert_eq!(broker.publish(ev(&[("a", 1), ("b", 2)])), 1);
        assert_eq!(broker.publish(ev(&[("a", 1)])), 0);
        let got = sub.try_recv().unwrap();
        assert_eq!(got.get("b"), Some(&2_i64.into()));
        assert!(sub.try_recv().is_none());
    }

    #[test]
    fn every_engine_kind_works() {
        for kind in EngineKind::ALL {
            let broker = Broker::builder().engine(kind).build();
            assert_eq!(broker.engine_kind(), kind);
            let sub = broker.subscribe("(a = 1 or b = 2) and c = 3").unwrap();
            assert_eq!(broker.publish(ev(&[("b", 2), ("c", 3)])), 1);
            assert!(sub.try_recv().is_some());
        }
    }

    #[test]
    fn parse_errors_surface() {
        let broker = Broker::builder().build();
        assert!(matches!(
            broker.subscribe("a >"),
            Err(BrokerError::Parse(_))
        ));
    }

    #[test]
    fn explicit_unsubscribe_stops_delivery() {
        let broker = Broker::builder().build();
        let sub = broker.subscribe("a = 1").unwrap();
        let id = sub.id();
        assert!(broker.unsubscribe(id));
        assert!(!broker.unsubscribe(id));
        assert_eq!(broker.publish(ev(&[("a", 1)])), 0);
        assert_eq!(broker.subscription_count(), 0);
    }

    #[test]
    fn handle_drop_unsubscribes() {
        let broker = Broker::builder().build();
        {
            let _sub = broker.subscribe("a = 1").unwrap();
            assert_eq!(broker.subscription_count(), 1);
        }
        assert_eq!(broker.subscription_count(), 0);
        assert_eq!(broker.publish(ev(&[("a", 1)])), 0);
        let stats = broker.stats();
        assert_eq!(stats.subscriptions_created, 1);
        assert_eq!(stats.subscriptions_removed, 1);
    }

    #[test]
    fn drop_newest_policy_counts_drops() {
        let broker = Broker::builder()
            .delivery(DeliveryPolicy::DropNewest { capacity: 1 })
            .build();
        let sub = broker.subscribe("a = 1").unwrap();
        assert_eq!(broker.publish(ev(&[("a", 1)])), 1);
        assert_eq!(broker.publish(ev(&[("a", 1)])), 0); // queue full
        assert_eq!(broker.stats().notifications_dropped, 1);
        assert!(sub.try_recv().is_some());
        assert_eq!(broker.publish(ev(&[("a", 1)])), 1);
    }

    #[test]
    fn fanout_to_many_subscribers() {
        let broker = Broker::builder().build();
        let subs: Vec<_> = (0..20)
            .map(|_| broker.subscribe("tick = 1").unwrap())
            .collect();
        assert_eq!(broker.publish(ev(&[("tick", 1)])), 20);
        for sub in &subs {
            assert!(sub.try_recv().is_some());
        }
    }

    #[test]
    fn concurrent_publishers_and_subscribers() {
        let broker = Broker::builder().build();
        let subs: Vec<_> = (0..8)
            .map(|i| broker.subscribe(&format!("topic = {i}")).unwrap())
            .collect();
        let mut handles = Vec::new();
        for t in 0..4 {
            let publisher = broker.publisher();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    publisher.publish(Event::builder().attr("topic", ((t + i) % 8) as i64).build());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total: usize = subs.iter().map(|s| s.drain().len()).sum();
        assert_eq!(total, 400);
        assert_eq!(broker.stats().events_published, 400);
        assert_eq!(broker.stats().notifications_delivered, 400);
    }

    #[test]
    fn stats_snapshot_is_consistent() {
        let broker = Broker::builder().build();
        let _sub = broker.subscribe("a = 1").unwrap();
        broker.publish(ev(&[("a", 1)]));
        broker.publish(ev(&[("a", 2)]));
        let s = broker.stats();
        assert_eq!(s.events_published, 2);
        assert_eq!(s.notifications_delivered, 1);
        assert_eq!(s.subscriptions_created, 1);
    }

    #[test]
    fn memory_usage_is_exposed() {
        let broker = Broker::builder().build();
        let _sub = broker.subscribe("(a = 1 or b = 2) and c = 3").unwrap();
        assert!(broker.memory_usage().total() > 0);
    }

    #[test]
    fn default_broker_has_one_shard() {
        let broker = Broker::builder().build();
        assert_eq!(broker.shard_count(), 1);
        assert_eq!(Broker::builder().shards(1).build().shard_count(), 1);
        assert_eq!(Broker::builder().shards(4).build().shard_count(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one engine shard")]
    fn zero_shards_panics() {
        let _ = Broker::builder().shards(0);
    }

    #[test]
    fn sharded_broker_delivers_like_unsharded() {
        for kind in EngineKind::ALL {
            for shards in [1usize, 3, 8] {
                let flat = Broker::builder().engine(kind).build();
                let sharded = Broker::builder().engine(kind).shards(shards).build();
                let exprs: Vec<String> = (0..20)
                    .map(|i| format!("(group = {} or boost = 1) and tick >= {}", i % 5, i))
                    .collect();
                let flat_subs: Vec<_> = exprs.iter().map(|e| flat.subscribe(e).unwrap()).collect();
                let sharded_subs: Vec<_> = exprs
                    .iter()
                    .map(|e| sharded.subscribe(e).unwrap())
                    .collect();
                // Load-aware placement preserves arrival-order ids.
                for (a, b) in flat_subs.iter().zip(&sharded_subs) {
                    assert_eq!(a.id(), b.id());
                }
                for t in 0..30 {
                    let event = ev(&[("group", t % 5), ("tick", t * 2)]);
                    assert_eq!(
                        flat.publish(event.clone()),
                        sharded.publish(event),
                        "kind={kind} shards={shards} t={t}"
                    );
                }
                for (i, (a, b)) in flat_subs.iter().zip(&sharded_subs).enumerate() {
                    assert_eq!(a.drain().len(), b.drain().len(), "sub {i} on {kind}");
                }
            }
        }
    }

    #[test]
    fn sharded_unsubscribe_routes_to_owning_shard() {
        let broker = Broker::builder().shards(3).build();
        let subs: Vec<_> = (0..9)
            .map(|i| broker.subscribe(&format!("a = {i}")).unwrap())
            .collect();
        let id = subs[4].id();
        assert!(broker.unsubscribe(id));
        assert!(!broker.unsubscribe(id));
        assert_eq!(broker.subscription_count(), 8);
        assert_eq!(broker.publish(ev(&[("a", 4)])), 0);
        assert_eq!(broker.publish(ev(&[("a", 5)])), 1);
    }

    #[test]
    fn rejected_subscription_does_not_skew_placement() {
        // 2^17 DNF conjunctions: over the counting engine's default
        // 65,536 limit, so registration is rejected.
        let huge: String = (0..17)
            .map(|i| format!("(a{i} = 1 or b{i} = 1)"))
            .collect::<Vec<_>>()
            .join(" and ");
        let flat = Broker::builder().engine(EngineKind::Counting).build();
        let sharded = Broker::builder()
            .engine(EngineKind::Counting)
            .shards(2)
            .build();
        for broker in [&flat, &sharded] {
            let a = broker.subscribe("x = 1").unwrap();
            assert!(matches!(
                broker.subscribe(&huge),
                Err(BrokerError::Subscribe(_))
            ));
            let c = broker.subscribe("x = 2").unwrap();
            // The cursor must not advance on rejection: arrival-order
            // ids stay aligned with an unsharded broker's.
            assert_eq!(a.id().index(), 0);
            assert_eq!(c.id().index(), 1);
        }
    }

    #[test]
    fn publish_batch_equals_publish_sequence() {
        for shards in [1usize, 4] {
            let seq = Broker::builder().shards(shards).build();
            let batch = Broker::builder().shards(shards).build();
            let exprs = ["a >= 3", "a = 5 or b = 1", "a < 0"];
            let seq_subs: Vec<_> = exprs.iter().map(|e| seq.subscribe(e).unwrap()).collect();
            let batch_subs: Vec<_> = exprs.iter().map(|e| batch.subscribe(e).unwrap()).collect();
            let events: Vec<Arc<Event>> = (0..10)
                .map(|i| Arc::new(ev(&[("a", i), ("b", i % 2)])))
                .collect();

            let seq_delivered: usize = events.iter().map(|e| seq.publish_arc(e.clone())).sum();
            let batch_delivered = batch.publish_batch(&events);
            assert_eq!(seq_delivered, batch_delivered, "shards={shards}");
            assert_eq!(seq.stats().events_published, batch.stats().events_published);

            // Same notifications, in the same per-subscriber order.
            for (s, b) in seq_subs.iter().zip(&batch_subs) {
                let sn: Vec<_> = s.drain().iter().map(|e| e.get("a").cloned()).collect();
                let bn: Vec<_> = b.drain().iter().map(|e| e.get("a").cloned()).collect();
                assert_eq!(sn, bn, "shards={shards}");
            }
        }
    }

    #[test]
    fn publish_batch_empty_and_repeated() {
        let broker = Broker::builder().shards(2).build();
        assert_eq!(broker.publish_batch(&[]), 0);
        let sub = broker.subscribe("a = 1").unwrap();
        // Repeated batches reuse the thread-local buckets (shrinking
        // and growing the batch length between calls); the plain-event
        // wrapper and the Arc form interleave freely.
        assert_eq!(
            broker.publish_batch_events(&[ev(&[("a", 1)]), ev(&[("a", 2)])]),
            1
        );
        assert_eq!(broker.publish_batch(&[Arc::new(ev(&[("a", 1)]))]), 1);
        assert_eq!(
            broker.publish_batch_events(&[ev(&[("a", 1)]), ev(&[("a", 1)]), ev(&[("a", 3)])]),
            2
        );
        assert_eq!(sub.drain().len(), 4);
        assert_eq!(broker.stats().events_published, 6);
    }

    #[test]
    fn parallel_pipeline_exists_only_on_multi_shard_brokers() {
        let single = Broker::builder().build();
        assert_eq!(single.parallel_workers(), 0);
        assert!(single.scratch_pool().is_none());

        let sharded = Broker::builder().shards(4).worker_threads(2).build();
        assert_eq!(sharded.parallel_workers(), 2);
        assert!(sharded.scratch_pool().is_some());
    }

    #[test]
    fn parallel_publish_delivers_like_sequential() {
        for shards in [2usize, 4] {
            // Threshold 0 forces the fan-out; usize::MAX forbids it.
            let par = Broker::builder()
                .shards(shards)
                .parallel_threshold(0)
                .build();
            let seq = Broker::builder()
                .shards(shards)
                .parallel_threshold(usize::MAX)
                .build();
            let exprs: Vec<String> = (0..40)
                .map(|i| format!("(group = {} or boost = 1) and tick >= {}", i % 5, i))
                .collect();
            let par_subs: Vec<_> = exprs.iter().map(|e| par.subscribe(e).unwrap()).collect();
            let seq_subs: Vec<_> = exprs.iter().map(|e| seq.subscribe(e).unwrap()).collect();
            for t in 0..30 {
                let event = ev(&[("group", t % 5), ("tick", t * 2)]);
                assert_eq!(
                    par.publish(event.clone()),
                    seq.publish(event),
                    "shards={shards} t={t}"
                );
            }
            for (i, (a, b)) in par_subs.iter().zip(&seq_subs).enumerate() {
                assert_eq!(a.drain().len(), b.drain().len(), "sub {i} shards={shards}");
            }
            assert_eq!(
                par.stats().notifications_delivered,
                seq.stats().notifications_delivered
            );
        }
    }

    #[test]
    fn publish_arc_shares_the_allocation_with_delivery() {
        for threshold in [0usize, usize::MAX] {
            let broker = Broker::builder()
                .shards(2)
                .parallel_threshold(threshold)
                .build();
            let sub = broker.subscribe("a = 1").unwrap();
            let event = Arc::new(ev(&[("a", 1)]));
            assert_eq!(broker.publish_arc(Arc::clone(&event)), 1);
            let got = sub.try_recv().unwrap();
            // Delivery queued the caller's Arc itself, not a copy.
            assert!(Arc::ptr_eq(&got, &event), "threshold={threshold}");
        }
    }

    #[test]
    fn heterogeneous_engine_instances() {
        let broker = Broker::builder()
            .engine_instances(vec![
                EngineKind::NonCanonical.build(),
                EngineKind::Counting.build(),
            ])
            .build();
        assert_eq!(broker.shard_count(), 2);
        assert_eq!(broker.engine_kind(), EngineKind::NonCanonical);
        let a = broker.subscribe("a = 1").unwrap(); // shard 0
        let b = broker.subscribe("a = 2").unwrap(); // shard 1
        assert_eq!(broker.publish(ev(&[("a", 1)])), 1);
        assert_eq!(broker.publish(ev(&[("a", 2)])), 1);
        assert_eq!(a.drain().len(), 1);
        assert_eq!(b.drain().len(), 1);
        assert!(broker.memory_usage().total() > 0);
    }

    #[test]
    fn drained_shard_is_refilled_first() {
        // The churn-skew regression at the broker layer: unsubscribes
        // empty one shard; the old blind round-robin cursor kept
        // striding past it, least-loaded placement refills it.
        let broker = Broker::builder().shards(4).build();
        let mut subs: Vec<_> = (0..12)
            .map(|i| broker.subscribe(&format!("a = {i}")).unwrap())
            .collect();
        assert_eq!(broker.shard_loads(), vec![3, 3, 3, 3]);
        // Arrivals 2, 6, 10 are shard 2's; drop them.
        for &i in &[10usize, 6, 2] {
            drop(subs.remove(i));
        }
        assert_eq!(broker.shard_loads(), vec![3, 3, 0, 3]);
        for i in 12..15 {
            subs.push(broker.subscribe(&format!("a = {i}")).unwrap());
        }
        assert_eq!(broker.shard_loads(), vec![3, 3, 3, 3]);
        // And the refilled shard actually matches.
        assert_eq!(broker.publish(ev(&[("a", 13)])), 1);
    }

    #[test]
    fn rebalance_moves_load_without_touching_subscribers() {
        let broker = Broker::builder().shards(3).build();
        let mut subs: Vec<_> = (0..12)
            .map(|i| broker.subscribe(&format!("a = {i} or all = 1")).unwrap())
            .collect();
        // Drain shard 1 (arrivals 1, 4, 7, 10) to skew the loads.
        for &i in &[10usize, 7, 4, 1] {
            drop(subs.remove(i));
        }
        assert_eq!(broker.shard_loads(), vec![4, 0, 4]);

        // Bounded step first, then the rest.
        assert_eq!(broker.migrate(1), 1);
        let moved = broker.rebalance();
        assert!(moved >= 1);
        let loads = broker.shard_loads();
        let spread = loads.iter().max().unwrap() - loads.iter().min().unwrap();
        assert!(spread <= 1, "balanced after rebalance: {loads:?}");
        assert_eq!(loads.iter().sum::<usize>(), 8, "no subscription lost");
        assert_eq!(broker.stats().subscriptions_migrated, (1 + moved) as u64);
        assert_eq!(broker.rebalance(), 0, "already balanced");

        // Ids, handles and delivery survived every move.
        assert_eq!(broker.publish(ev(&[("all", 1)])), 8);
        for sub in &subs {
            assert_eq!(sub.drain().len(), 1);
            assert!(broker.unsubscribe(sub.id()));
        }
        assert_eq!(broker.subscription_count(), 0);
    }

    #[test]
    fn migrated_subscriptions_can_still_unsubscribe_by_handle_drop() {
        let broker = Broker::builder().shards(2).build();
        let mut subs: Vec<_> = (0..8)
            .map(|i| broker.subscribe(&format!("a = {i}")).unwrap())
            .collect();
        // Drop three of shard 0's (arrivals 0, 2, 4) to skew.
        for &i in &[4usize, 2, 0] {
            drop(subs.remove(i));
        }
        assert_eq!(broker.shard_loads(), vec![1, 4]);
        assert!(broker.rebalance() >= 1);
        // Handle drop must route through the directory to wherever the
        // subscription lives now.
        drop(subs);
        assert_eq!(broker.subscription_count(), 0);
        assert_eq!(broker.shard_loads(), vec![0, 0]);
    }

    #[test]
    fn memory_usage_charges_routing_on_every_shape() {
        // Satellite fix: a single-shard broker no longer hides its
        // stored expressions behind an uncharged placeholder, and the
        // per-shard translation maps are charged on every broker.
        let flat = Broker::builder().build();
        let sharded = Broker::builder().shards(2).build();
        let _flat_subs: Vec<_> = (0..50)
            .map(|i| flat.subscribe(&format!("a = {i} or b = {i}")).unwrap())
            .collect();
        let _sharded_subs: Vec<_> = (0..50)
            .map(|i| sharded.subscribe(&format!("a = {i} or b = {i}")).unwrap())
            .collect();
        let flat_routing = flat.memory_usage().unsub_support;
        let sharded_routing = sharded.memory_usage().unsub_support;
        // Both store real expressions now (a flat broker can be resized
        // into a migrating one at any time), so the routing overhead is
        // comparable — and decidedly not zero — on both.
        assert!(flat_routing > 50 * std::mem::size_of::<usize>());
        assert!(sharded_routing > 50 * std::mem::size_of::<usize>());
        // An empty broker charges (almost) nothing by comparison.
        assert!(Broker::builder().build().memory_usage().unsub_support < flat_routing);
    }

    #[test]
    fn single_shard_broker_has_nothing_to_migrate() {
        let broker = Broker::builder().build();
        let _sub = broker.subscribe("a = 1").unwrap();
        assert_eq!(broker.rebalance(), 0);
        assert_eq!(broker.rebalance_by_match_frequency(8), 0);
        assert_eq!(broker.shard_loads(), vec![1]);
        assert_eq!(broker.stats().subscriptions_migrated, 0);
    }

    #[test]
    fn scratch_trim_cap_bounds_the_fanout_pool() {
        // Default: the generous cap is wired through to the pool.
        let broker = Broker::builder().shards(2).build();
        assert_eq!(
            broker.scratch_pool().unwrap().trim_cap(),
            DEFAULT_SCRATCH_TRIM_CAP
        );

        // A zero cap trims on every return: after a forced-parallel
        // publish against a real engine, the parked scratches hold no
        // high-water memory — the spike-pinning bug is gone.
        let tight = Broker::builder()
            .shards(2)
            .parallel_threshold(0)
            .scratch_trim_cap(0)
            .build();
        let _subs: Vec<_> = (0..50)
            .map(|i| tight.subscribe(&format!("a = {i} or b = 1")).unwrap())
            .collect();
        assert_eq!(tight.publish(ev(&[("b", 1)])), 50);
        let pool = tight.scratch_pool().unwrap();
        assert_eq!(pool.trim_cap(), 0);
        assert!(pool.pooled() >= 1, "scratches still return to the pool");
        assert_eq!(pool.heap_bytes(), 0, "trimmed on return, not pinned");

        // The sequential path trims its thread-local scratch by the
        // same cap: repeated publishes stay correct through the
        // trim-and-regrow cycle.
        let sequential = Broker::builder().scratch_trim_cap(0).build();
        let sub = sequential.subscribe("a = 1 or b = 1").unwrap();
        for _ in 0..3 {
            assert_eq!(sequential.publish(ev(&[("a", 1)])), 1);
        }
        assert_eq!(sub.drain().len(), 3);
    }

    #[test]
    fn trim_publish_scratch_keeps_publishing_correct() {
        let broker = Broker::builder().build();
        let sub = broker.subscribe("a = 1").unwrap();
        assert_eq!(broker.publish(ev(&[("a", 1)])), 1);
        // Trimming between publishes releases the thread's buffers; the
        // next publish re-grows them and still matches correctly.
        trim_publish_scratch();
        assert_eq!(broker.publish(ev(&[("a", 1)])), 1);
        assert_eq!(sub.drain().len(), 2);
    }

    #[test]
    fn resize_grows_live_and_rebalance_spreads() {
        let broker = Broker::builder().shards(2).build();
        let subs: Vec<_> = (0..8)
            .map(|i| broker.subscribe(&format!("a = {i} or all = 1")).unwrap())
            .collect();
        assert_eq!(broker.resize(4), 0, "growing migrates nothing");
        assert_eq!(broker.shard_count(), 4);
        assert_eq!(broker.shard_loads(), vec![4, 4, 0, 0]);
        // Delivery is unchanged through the grow.
        assert_eq!(broker.publish(ev(&[("all", 1)])), 8);
        // New subscriptions fill the new shards first; rebalance then
        // evens everything out.
        let extra = broker.subscribe("a = 100").unwrap();
        assert_eq!(
            broker
                .inner
                .directory
                .read()
                .placement_of(extra.id())
                .unwrap()
                .0,
            2
        );
        broker.rebalance();
        let loads = broker.shard_loads();
        assert!(loads.iter().max().unwrap() - loads.iter().min().unwrap() <= 1);
        assert_eq!(broker.publish(ev(&[("all", 1)])), 8);
        for sub in &subs {
            assert_eq!(sub.drain().len(), 2);
        }
        // The pipeline appeared with the second shard.
        assert!(broker.parallel_workers() >= 1);
    }

    #[test]
    fn resize_shrinks_live_and_keeps_every_subscription() {
        let broker = Broker::builder().shards(4).build();
        let subs: Vec<_> = (0..12)
            .map(|i| broker.subscribe(&format!("a = {i} or all = 1")).unwrap())
            .collect();
        let moved = broker.resize(2);
        assert!(moved >= 1, "shrinking drains the dying shards");
        assert_eq!(broker.shard_count(), 2);
        assert_eq!(broker.shard_loads().len(), 2);
        assert_eq!(broker.shard_loads().iter().sum::<usize>(), 12);
        assert_eq!(broker.stats().subscriptions_migrated, moved as u64);
        assert_eq!(broker.publish(ev(&[("all", 1)])), 12);
        // All the way down to a flat broker: the pipeline is gone.
        broker.resize(1);
        assert_eq!(broker.shard_count(), 1);
        assert_eq!(broker.parallel_workers(), 0);
        assert!(broker.scratch_pool().is_none());
        assert_eq!(broker.publish(ev(&[("all", 1)])), 12);
        for sub in &subs {
            assert_eq!(sub.drain().len(), 2);
            assert!(broker.unsubscribe(sub.id()));
        }
        assert_eq!(broker.subscription_count(), 0);
        assert_eq!(broker.resize(1), 0, "no-op resize");
    }

    #[test]
    #[should_panic(expected = "a surviving shard refused a drained subscription")]
    fn shrink_panics_when_a_survivor_refuses_a_drained_subscription() {
        // Heterogeneous shards: the surviving counting shard cannot
        // accept the huge non-canonical expression living on the dying
        // shard. The drain must panic (like ShardedEngine::resize), not
        // spin forever on the refusal.
        let broker = Broker::builder()
            .engine_instances(vec![
                EngineKind::Counting.build(),
                EngineKind::NonCanonical.build(),
            ])
            .build();
        let _anchor = broker.subscribe("x = 1").unwrap(); // shard 0
        let huge: String = (0..17)
            .map(|i| format!("(a{i} = 1 or b{i} = 1)"))
            .collect::<Vec<_>>()
            .join(" and ");
        let _wide = broker.subscribe(&huge).unwrap(); // shard 1 accepts it
        broker.resize(1);
    }

    #[test]
    fn resize_then_unsubscribe_routes_correctly() {
        // Ids survive a shrink that migrated their subscriptions, and
        // handle drops still land on the right shard afterwards.
        let broker = Broker::builder().shards(3).build();
        let subs: Vec<_> = (0..9)
            .map(|i| broker.subscribe(&format!("a = {i}")).unwrap())
            .collect();
        broker.resize(1);
        broker.resize(4);
        drop(subs);
        assert_eq!(broker.subscription_count(), 0);
        assert_eq!(broker.shard_loads(), vec![0, 0, 0, 0]);
    }

    #[test]
    fn recycled_ids_bound_the_table_and_stay_aba_safe() {
        let broker = Broker::builder().shards(2).recycled_ids().build();
        let keeper = broker.subscribe("a = 1").unwrap();
        // Churn one slot: subscribe/unsubscribe repeatedly.
        for i in 0..20 {
            let sub = broker.subscribe(&format!("b = {i}")).unwrap();
            drop(sub);
        }
        // The table stayed bounded: only two slots were ever needed.
        assert_eq!(broker.inner.directory.read().id_bound(), 2);
        // The survivor still matches and can still be removed by its
        // (generation-tagged) id.
        assert_eq!(broker.publish(ev(&[("a", 1)])), 1);
        assert_eq!(keeper.drain().len(), 1);
        drop(keeper);
        assert_eq!(broker.subscription_count(), 0);
    }

    #[test]
    fn shard_match_hits_follow_delivered_matches() {
        let broker = Broker::builder().shards(2).build();
        let _a = broker.subscribe("a = 1").unwrap(); // shard 0
        let _b = broker.subscribe("b = 1").unwrap(); // shard 1
        assert_eq!(broker.shard_match_hits(), vec![0, 0]);
        broker.publish(ev(&[("a", 1)]));
        broker.publish(ev(&[("a", 1)]));
        broker.publish(ev(&[("b", 1)]));
        assert_eq!(broker.shard_match_hits(), vec![2, 1]);
        // The batch path feeds the same counters.
        broker.publish_batch_events(&[ev(&[("a", 1)]), ev(&[("b", 1)])]);
        assert_eq!(broker.shard_match_hits(), vec![3, 2]);
    }

    #[test]
    fn content_aware_pruning_skips_shards_on_every_pipeline() {
        // Sequential walk, forced parallel fan-out, and both batch
        // paths: a clustered partitionable workload keeps each group on
        // one shard, so a one-group event prunes the other three.
        for threshold in [usize::MAX, 0] {
            let broker = Broker::builder()
                .shards(4)
                .placement(PlacementPolicy::ClusterByAttribute)
                .parallel_threshold(threshold)
                .build();
            let _subs: Vec<_> = (0..16)
                .map(|i| broker.subscribe(&format!("g{} = 1", i % 4)).unwrap())
                .collect();
            assert_eq!(broker.publish(ev(&[("g0", 1)])), 4);
            let after_publish: u64 = broker.shard_prune_counts().iter().sum();
            assert_eq!(
                after_publish, 3,
                "a one-group event candidates exactly one shard (threshold={threshold})"
            );
            assert_eq!(
                broker.publish_batch_events(&[ev(&[("g1", 1)]), ev(&[("g2", 1)])]),
                8
            );
            let after_batch: u64 = broker.shard_prune_counts().iter().sum();
            assert_eq!(after_batch, 3 + 2 * 3, "three prunes per batched event");
        }
    }

    #[test]
    fn pruning_can_be_disabled_for_measurement() {
        let broker = Broker::builder()
            .shards(4)
            .placement(PlacementPolicy::ClusterByAttribute)
            .shard_pruning(false)
            .build();
        let _subs: Vec<_> = (0..16)
            .map(|i| broker.subscribe(&format!("g{} = 1", i % 4)).unwrap())
            .collect();
        // Same deliveries, no prunes: the knob only changes the walk.
        assert_eq!(broker.publish(ev(&[("g0", 1)])), 4);
        assert_eq!(broker.publish_batch_events(&[ev(&[("g1", 1)])]), 4);
        assert_eq!(broker.shard_prune_counts(), vec![0, 0, 0, 0]);
    }

    #[test]
    fn synopsis_survives_migration_resize_and_churn() {
        // Drive every synopsis maintenance path — subscribe,
        // unsubscribe, count- and frequency-based migration, grow,
        // shrink — then verify no subscription was over-pruned: each
        // survivor still receives an event tailored to it, with
        // pruning active.
        let broker = Broker::builder()
            .shards(3)
            .placement(PlacementPolicy::ClusterByAttribute)
            .build();
        let mut subs: Vec<(usize, Subscription)> = (0..24)
            .map(|i| {
                let sub = broker
                    .subscribe(&format!("topic = {} and n >= {}", i % 6, i / 6))
                    .unwrap();
                (i, sub)
            })
            .collect();
        for &i in &[21usize, 13, 8, 2] {
            let pos = subs.iter().position(|(n, _)| *n == i).unwrap();
            drop(subs.remove(pos).1);
        }
        broker.rebalance();
        broker.resize(5);
        broker.resize(2);
        broker.rebalance_by_match_frequency(usize::MAX);
        broker.resize(3);
        broker.rebalance();

        for (i, sub) in &subs {
            let event = ev(&[("topic", (i % 6) as i64), ("n", (i / 6) as i64)]);
            assert!(
                broker.publish(event) >= 1,
                "survivor {i} lost to over-pruning"
            );
            assert!(!sub.drain().is_empty(), "survivor {i} missed its delivery");
        }
    }

    #[test]
    fn match_frequency_rebalance_moves_load_off_the_hot_shard() {
        let broker = Broker::builder().shards(2).build();
        // Shard 0 gets the hot subscriptions (arrivals 0, 2, 4, ...),
        // shard 1 the cold ones — every publish of the hot event then
        // hits only shard 0.
        let _subs: Vec<_> = (0..8)
            .map(|i| {
                broker
                    .subscribe(if i % 2 == 0 { "hot = 1" } else { "cold = 1" })
                    .unwrap()
            })
            .collect();
        assert_eq!(broker.shard_loads(), vec![4, 4]);
        // First tick only arms the baseline.
        assert_eq!(broker.rebalance_by_match_frequency(8), 0);
        for _ in 0..50 {
            broker.publish(ev(&[("hot", 1)]));
        }
        let hits = broker.shard_match_hits();
        assert!(hits[0] >= 200 && hits[1] == 0, "skewed: {hits:?}");
        // The tick sees the skew and moves subscriptions from the hot
        // shard to the cool one — deliberately unbalancing counts.
        let moved = broker.rebalance_by_match_frequency(2);
        assert_eq!(moved, 2);
        assert_eq!(broker.shard_loads(), vec![2, 6]);
        // Delivery is untouched throughout.
        assert_eq!(broker.publish(ev(&[("hot", 1)])), 4);
        // A quiet interval moves nothing.
        assert_eq!(broker.rebalance_by_match_frequency(2), 0);
    }

    #[test]
    fn background_rebalance_thread_balances_and_shuts_down() {
        let broker = Broker::builder()
            .shards(3)
            .background_rebalance(Duration::from_millis(1), RebalancePolicy::SubscriptionCount)
            .build();
        assert!(broker.background_rebalance_active());
        let mut subs: Vec<_> = (0..12)
            .map(|i| broker.subscribe(&format!("a = {i}")).unwrap())
            .collect();
        // Skew the loads by draining shard 1 (arrivals 1, 4, 7, 10).
        for &i in &[10usize, 7, 4, 1] {
            drop(subs.remove(i));
        }
        // The background thread must even this out on its own.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let loads = broker.shard_loads();
            let spread = loads.iter().max().unwrap() - loads.iter().min().unwrap();
            if spread <= 1 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "background rebalance never balanced: {loads:?}"
            );
            std::thread::yield_now();
        }
        assert!(broker.stats().subscriptions_migrated >= 1);
        // Dropping the last handle joins the thread (deadlock here
        // would hang the test).
        drop(subs);
        drop(broker);
    }

    #[test]
    fn directory_write_hook_blocks_subscribes_but_not_publishes() {
        let broker = Broker::builder().shards(2).build();
        let _sub = broker.subscribe("a = 1").unwrap();
        let delivered = broker.with_directory_write_held(|| {
            // A publish completes while the directory is write-held;
            // the full latch-gated proof lives in tests/hot_path.rs.
            broker.publish(ev(&[("a", 1)]))
        });
        assert_eq!(delivered, 1);
    }
}
