//! The broker itself.

use std::cell::RefCell;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use boolmatch_core::{
    BoxedEngine, EngineKind, FanOut, FilterEngine, MatchScratch, MemoryUsage, ScratchLease,
    ScratchPool, SubscribeError, SubscriptionDirectory, SubscriptionId, WorkerPool,
};
use boolmatch_expr::{Expr, ParseError};
use boolmatch_types::Event;
use crossbeam::channel::Sender;
use parking_lot::RwLock;

use crate::delivery::DeliveryPolicy;
use crate::subscriber::Subscription;

/// Errors surfaced by [`Broker`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BrokerError {
    /// The subscription text failed to parse.
    Parse(ParseError),
    /// The engine refused the subscription.
    Subscribe(SubscribeError),
}

impl fmt::Display for BrokerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BrokerError::Parse(e) => write!(f, "subscription parse error: {e}"),
            BrokerError::Subscribe(e) => write!(f, "subscription rejected: {e}"),
        }
    }
}

impl Error for BrokerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BrokerError::Parse(e) => Some(e),
            BrokerError::Subscribe(e) => Some(e),
        }
    }
}

impl From<ParseError> for BrokerError {
    fn from(e: ParseError) -> Self {
        BrokerError::Parse(e)
    }
}

impl From<SubscribeError> for BrokerError {
    fn from(e: SubscribeError) -> Self {
        BrokerError::Subscribe(e)
    }
}

/// Monotonic operational counters; snapshot via [`Broker::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BrokerStats {
    /// Events accepted by [`Broker::publish`].
    pub events_published: u64,
    /// Notifications placed on subscriber queues.
    pub notifications_delivered: u64,
    /// Notifications dropped by a full [`DeliveryPolicy::DropNewest`]
    /// queue.
    pub notifications_dropped: u64,
    /// Subscriptions registered over the broker's lifetime.
    pub subscriptions_created: u64,
    /// Subscriptions removed (explicitly or by handle drop).
    pub subscriptions_removed: u64,
    /// Subscriptions live-migrated between shards by
    /// [`Broker::migrate`] / [`Broker::rebalance`]. Migration never
    /// changes a subscription's id or its delivery stream — this
    /// counter only measures rebalancing work.
    pub subscriptions_migrated: u64,
    /// Parallel fan-out worker jobs that died (panicked) before
    /// contributing their shard's matches. Any nonzero value means some
    /// publishes delivered **without** that shard's subscribers — the
    /// parallel ≡ sequential contract was broken and the engine that
    /// panicked needs investigating.
    pub fanout_worker_failures: u64,
}

#[derive(Default)]
struct AtomicStats {
    events_published: AtomicU64,
    notifications_delivered: AtomicU64,
    notifications_dropped: AtomicU64,
    subscriptions_created: AtomicU64,
    subscriptions_removed: AtomicU64,
    subscriptions_migrated: AtomicU64,
    fanout_worker_failures: AtomicU64,
}

/// Per-publisher-thread reusable buffers: the match scratch plus the
/// global matched-id accumulator (publish) and the per-event matched
/// buckets (publish_batch).
#[derive(Default)]
struct PublishState {
    scratch: MatchScratch,
    matched: Vec<SubscriptionId>,
    buckets: Vec<Vec<SubscriptionId>>,
}

thread_local! {
    // One state per publisher thread, shared by all brokers on that
    // thread (sound: the scratch is engine-agnostic and self-restoring
    // between matches). It grows to the largest engine the thread ever
    // matched against and stays at that high-water mark until
    // [`trim_publish_scratch`] is called.
    static PUBLISH_STATE: RefCell<PublishState> = RefCell::new(PublishState::default());
}

/// Releases the calling thread's publish scratch buffers.
///
/// [`Broker::publish`] keeps one [`MatchScratch`] (plus a matched-id
/// accumulator) per thread, sized to the largest engine that thread has
/// matched against. Long-lived worker threads that once published to a
/// huge broker and now serve only small ones can call this to return
/// the high-water allocation; the next publish re-grows the buffers
/// lazily.
pub fn trim_publish_scratch() {
    PUBLISH_STATE.with(|cell| *cell.borrow_mut() = PublishState::default());
}

/// Default [`BrokerBuilder::parallel_threshold`]: a publish fans out
/// across the shards in parallel once this many subscriptions are live
/// (and the broker has at least two shards). Below it, the per-shard
/// match is too cheap to amortise the fan-out rendezvous and the
/// sequential shard walk wins.
pub const DEFAULT_PARALLEL_THRESHOLD: usize = 4_096;

/// Default [`BrokerBuilder::scratch_trim_cap`]: a fan-out scratch
/// returning to the pool with more heap than this is trimmed instead of
/// parked at its high-water capacity, so one pathological event (a
/// huge candidate spike) cannot pin its peak allocation in every pooled
/// scratch forever. Generous on purpose — steady-state workloads far
/// below it never trim and so never re-allocate.
pub const DEFAULT_SCRATCH_TRIM_CAP: usize = 8 << 20;

/// The parallel publish machinery, present only on multi-shard brokers:
/// a persistent worker pool (threads park between publishes — no spawn
/// on the hot path) plus the pool of warm per-worker scratches.
struct Fanout {
    pool: WorkerPool,
    scratches: Arc<ScratchPool>,
}

pub(crate) struct BrokerInner {
    /// One engine per shard, each behind its own lock: subscription
    /// churn write-locks exactly one shard (and live migration exactly
    /// two), so publishers keep matching on every other shard.
    shards: Vec<RwLock<BoxedEngine>>,
    /// Global ↔ (shard, local) id translation, placement loads and the
    /// stored expressions migration re-subscribes — the same directory
    /// [`boolmatch_core::ShardedEngine`] uses, shared here behind its
    /// own lock.
    ///
    /// **Lock order:** the directory lock is *innermost* — it is only
    /// ever acquired while holding at most shard locks, and nothing
    /// acquires a shard lock while holding it. Shard locks themselves
    /// are only ever multiply-acquired in ascending index order
    /// (migration), so the broker's lock graph is acyclic.
    directory: RwLock<SubscriptionDirectory>,
    senders: RwLock<HashMap<SubscriptionId, Sender<Arc<Event>>>>,
    policy: DeliveryPolicy,
    stats: AtomicStats,
    /// `None` on single-shard brokers: their publish path is exactly
    /// the pre-fan-out sequential walk.
    fanout: Option<Fanout>,
    /// Heap-byte cap above which a publish scratch is trimmed after
    /// use instead of keeping its high-water capacity — applied to the
    /// fan-out [`ScratchPool`] on return *and* to the sequential
    /// path's thread-local scratch after each publish/batch.
    scratch_trim_cap: usize,
    /// Stored in the directory instead of a per-subscription `Expr`
    /// clone on single-shard brokers, where migration is unreachable
    /// and the expression would never be read.
    placeholder_expr: Arc<Expr>,
    /// Bumped once per committed relocation (under the directory write
    /// lock). A publish snapshots it before matching and after its last
    /// translation: only when the two differ can the matched set hold
    /// a migration duplicate, so only then does it pay the dedup sort.
    migration_epoch: AtomicU64,
    /// Live-subscription count at which publishes switch from the
    /// sequential shard walk to the parallel fan-out.
    parallel_threshold: usize,
}

impl BrokerInner {
    pub(crate) fn unsubscribe(&self, id: SubscriptionId) -> bool {
        let existed = self.senders.write().remove(&id).is_some();
        if existed {
            // The sender map is the source of truth; the directory and
            // engine state follow. Retiring the directory entry first
            // means a concurrent migration of this subscription aborts
            // cleanly (its `relocate` finds the entry gone and undoes
            // the target-side copy) and a concurrent match drops the id
            // at translation — whose delivery the removed sender would
            // have skipped anyway.
            let (shard, local, _expr) = self
                .directory
                .write()
                .retire(id)
                .expect("sender map and directory are kept in sync");
            self.shards[shard]
                .write()
                .unsubscribe(local)
                .expect("directory and shard engines are kept in sync");
            self.stats
                .subscriptions_removed
                .fetch_add(1, Ordering::Relaxed);
        }
        existed
    }

    /// Matches `event` against every shard (read lock each, one at a
    /// time) and appends the matched **global** ids to `out`.
    ///
    /// Translation happens *under the shard's read lock*: migration
    /// commits a relocation only while holding that shard's write lock,
    /// so the reverse mapping of a just-matched local id cannot be
    /// repointed before it is read here. A `None` translation means a
    /// racing unsubscribe retired the id — it is dropped, exactly as
    /// delivery would drop its removed sender. A shard that matched
    /// nothing skips the directory lock entirely.
    fn match_into(&self, event: &Event, scratch: &mut MatchScratch, out: &mut Vec<SubscriptionId>) {
        for (s, lock) in self.shards.iter().enumerate() {
            let engine = lock.read();
            engine.match_event_into(event, scratch);
            if scratch.matched().is_empty() {
                continue;
            }
            let directory = self.directory.read();
            out.extend(
                scratch
                    .matched()
                    .iter()
                    .filter_map(|&l| directory.global_of(s, l)),
            );
        }
    }
}

/// A content-based publish/subscribe broker; see the [crate docs](crate).
///
/// Cheap to clone (`Arc` inside); clones share the same engine and
/// subscriber registry.
#[derive(Clone)]
pub struct Broker {
    inner: Arc<BrokerInner>,
}

impl Broker {
    /// Starts configuring a broker.
    pub fn builder() -> BrokerBuilder {
        BrokerBuilder::default()
    }

    /// Registers a subscription written in the subscription language
    /// and returns the handle notifications arrive on.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::Parse`] for malformed text and
    /// [`BrokerError::Subscribe`] when the engine refuses the
    /// expression (e.g. a canonical engine hitting its DNF limit).
    pub fn subscribe(&self, expression: &str) -> Result<Subscription, BrokerError> {
        self.subscribe_expr(&Expr::parse(expression)?)
    }

    /// Registers an already-parsed subscription.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::Subscribe`] when the engine refuses it.
    pub fn subscribe_expr(&self, expr: &Expr) -> Result<Subscription, BrokerError> {
        // Load-aware placement: the directory reserves a unit of load
        // on the least-loaded shard (round-robin tie-break, so a
        // churn-free stream places like classic round-robin while a
        // drained shard is refilled first; concurrent subscribers
        // spread out because each reservation is visible to the next
        // placement). Only the chosen shard is then write-locked, so
        // registration never stalls matching on the other shards; the
        // reservation is cancelled if the engine refuses the
        // expression, and committed — issuing the arrival-order global
        // id — once the engine has assigned the local id.
        let shard = self.inner.directory.write().place();
        let local = match self.inner.shards[shard].write().subscribe(expr) {
            Ok(local) => local,
            Err(e) => {
                self.inner.directory.write().cancel(shard);
                return Err(e.into());
            }
        };
        // Single-shard brokers can never migrate (and have no resize),
        // so the directory's stored expression would be dead weight on
        // the most common configuration: share one placeholder instead
        // of deep-cloning every subscription, via the uncharged
        // `commit_shared` so memory accounting stays truthful.
        let id = if self.shard_count() == 1 {
            let stored = Arc::clone(&self.inner.placeholder_expr);
            self.inner
                .directory
                .write()
                .commit_shared(shard, local, stored)
        } else {
            let stored = Arc::new(expr.clone());
            self.inner.directory.write().commit(shard, local, stored)
        };
        let (tx, rx) = self.inner.policy.channel();
        self.inner.senders.write().insert(id, tx);
        self.inner
            .stats
            .subscriptions_created
            .fetch_add(1, Ordering::Relaxed);
        Ok(Subscription::new(id, rx, Arc::downgrade(&self.inner)))
    }

    /// Removes a subscription by id (handles also unsubscribe on drop).
    /// Returns whether it was registered.
    pub fn unsubscribe(&self, id: SubscriptionId) -> bool {
        self.inner.unsubscribe(id)
    }

    /// Live-migrates up to `max_moves` subscriptions from the currently
    /// most-loaded to the currently least-loaded shard, one batch of
    /// shard-lock acquisitions per skewed pair. Each move re-subscribes
    /// the stored expression on the target shard, retires the source
    /// entry and repoints the directory — the subscription's id, handle
    /// and delivery stream are untouched, and matching continues on
    /// every shard not in the migrating pair (see `tests/rebalance.rs`
    /// for the deterministic lock-level proof). Returns the number of
    /// subscriptions moved.
    ///
    /// Stops early when the loads are balanced (spread ≤ 1) or a target
    /// engine refuses an expression (possible only with heterogeneous
    /// [`BrokerBuilder::engine_instances`]; the subscription stays
    /// put).
    ///
    /// **Visibility window:** an event whose publish races a migration
    /// may observe the moving subscription as momentarily absent — the
    /// same anomaly as an event racing an unsubscribe+resubscribe —
    /// and is delivered to it at most once (never twice; publish
    /// deduplicates matched ids). Events published after `migrate`
    /// returns always see the subscription at its new placement.
    pub fn migrate(&self, max_moves: usize) -> usize {
        // Bound how long one lock acquisition of the shard pair is
        // held: a large drain (rebalance() on a heavily skewed broker)
        // is chunked, releasing and re-acquiring the pair's write
        // locks between chunks so publishers reaching those shards are
        // stalled for at most one chunk, not the whole drain.
        const MIGRATE_CHUNK: usize = 64;
        let mut moved = 0;
        while moved < max_moves {
            let Some((from, to)) = self.inner.directory.read().skew_pair() else {
                break;
            };
            let step = self.migrate_between(from, to, (max_moves - moved).min(MIGRATE_CHUNK));
            if step == 0 {
                break;
            }
            moved += step;
        }
        if moved > 0 {
            self.inner
                .stats
                .subscriptions_migrated
                .fetch_add(moved as u64, Ordering::Relaxed);
        }
        moved
    }

    /// [`Broker::migrate`] until the per-shard loads are as even as
    /// they can be: afterwards `max(load) − min(load) ≤ 1` (unless a
    /// heterogeneous target shard refused a move). Returns the number
    /// of subscriptions moved.
    pub fn rebalance(&self) -> usize {
        self.migrate(usize::MAX)
    }

    /// One migration batch between a fixed shard pair, bounded by
    /// `cap` moves: both shard locks are taken once (in ascending index
    /// order — the broker-wide discipline that keeps concurrent
    /// migrations deadlock-free) and held while subscriptions move
    /// until the pair is balanced.
    fn migrate_between(&self, from: usize, to: usize, cap: usize) -> usize {
        debug_assert_ne!(from, to);
        let (lo, hi) = (from.min(to), from.max(to));
        let lo_guard = self.inner.shards[lo].write();
        let hi_guard = self.inner.shards[hi].write();
        let (mut from_engine, mut to_engine) = if from < to {
            (lo_guard, hi_guard)
        } else {
            (hi_guard, lo_guard)
        };
        let mut moved = 0;
        while moved < cap {
            // Re-plan every step against the live directory: concurrent
            // unsubscribes (which never need these shard locks to
            // retire an entry) may have rebalanced the pair or removed
            // the intended victim already.
            let (global, local, expr) = {
                let directory = self.inner.directory.read();
                if directory.load(from) <= directory.load(to) + 1 {
                    break;
                }
                let Some((global, local)) = directory.last_resident(from) else {
                    break;
                };
                let expr = Arc::clone(
                    directory
                        .expr_of(global)
                        .expect("residents hold live directory entries"),
                );
                (global, local, expr)
            };
            let Ok(new_local) = to_engine.subscribe(&expr) else {
                break; // heterogeneous target refused; nothing moved
            };
            let relocated = {
                let mut directory = self.inner.directory.write();
                let relocated = directory.relocate(global, from, local, to, new_local);
                if relocated {
                    // Bumped inside the directory critical section: a
                    // publisher that observes the new mapping (it takes
                    // the directory read lock to translate) is then
                    // guaranteed to also observe the bumped epoch on
                    // its post-match check and dedup. Bumping after
                    // the lock is released would leave a window where
                    // a racing publish translates the moved
                    // subscription twice yet still sees the old epoch;
                    // a failed relocate changed no mapping, so it
                    // bumps nothing and forces no spurious sorts.
                    self.inner.migration_epoch.fetch_add(1, Ordering::Release);
                }
                relocated
            };
            if relocated {
                from_engine
                    .unsubscribe(local)
                    .expect("directory and shard engines are kept in sync");
                moved += 1;
            } else {
                // The victim was retired between planning and commit;
                // undo the target-side copy and re-plan.
                to_engine
                    .unsubscribe(new_local)
                    .expect("the fresh target copy is removable");
            }
        }
        moved
    }

    /// Live subscriptions per shard (placement reservations included) —
    /// the load vector rebalancing planning works from.
    pub fn shard_loads(&self) -> Vec<usize> {
        self.inner.directory.read().loads().to_vec()
    }

    /// Publishes an event: matches it against every subscription and
    /// queues notifications to the matching subscribers. Returns the
    /// number of notifications delivered.
    ///
    /// Matching visits each shard under that shard's **read** lock with
    /// a thread-local [`MatchScratch`], so concurrent publishers match
    /// in parallel and a write-locked shard (a subscription in
    /// progress) delays only its own shard's portion of the match. All
    /// locks are released before delivery; the thread-local borrow
    /// covers only matching. The matched buffer is reused across
    /// publishes on the same thread — the steady-state publish path
    /// allocates only the `Arc` around the event.
    ///
    /// On a multi-shard broker at or above the builder's
    /// [`parallel threshold`](BrokerBuilder::parallel_threshold), the
    /// shards are matched **concurrently** on the broker's persistent
    /// worker pool instead of walked one after another — intra-event
    /// parallelism for large engines — with a merge in shard order that
    /// makes the matched-id set identical to the sequential walk.
    /// Below the threshold (and always with one shard) the sequential
    /// walk runs unchanged.
    ///
    /// Subscribers found disconnected (handle dropped without
    /// unsubscribe — possible when the handle's broker reference was
    /// already gone) are pruned.
    pub fn publish(&self, event: Event) -> usize {
        if self.parallel_eligible() {
            return self.publish_parallel(&Arc::new(event));
        }
        let matched = self.matched_via(|scratch, out| self.inner.match_into(&event, scratch, out));
        // The Arc wrap stays lazy (inside deliver_matched) so an
        // unmatched event costs no allocation at all.
        let delivered = self.deliver_matched(event, &matched);
        self.return_matched(matched);
        delivered
    }

    /// [`Broker::publish`] for an event the caller already holds by
    /// `Arc` — the zero-copy entry: the same allocation is shared by
    /// the fan-out workers and every delivered notification, and the
    /// event is never cloned.
    pub fn publish_arc(&self, event: Arc<Event>) -> usize {
        if self.parallel_eligible() {
            return self.publish_parallel(&event);
        }
        let matched = self.matched_via(|scratch, out| self.inner.match_into(&event, scratch, out));
        let delivered = self.deliver_matched_arc(&event, &matched);
        self.return_matched(matched);
        delivered
    }

    /// The parallel publish pipeline: one job per remote shard on the
    /// persistent worker pool, shard 0 matched inline by the caller,
    /// results merged in shard order.
    fn publish_parallel(&self, event: &Arc<Event>) -> usize {
        let matched =
            self.matched_via(|scratch, out| self.match_parallel_into(event, scratch, out));
        let delivered = self.deliver_matched_arc(event, &matched);
        self.return_matched(matched);
        delivered
    }

    /// The single-publish matching dance shared by every publish
    /// flavour: swap the matched buffer out of the thread-local state
    /// (so the RefCell borrow ends before delivery, which takes the
    /// sender-map lock and may re-enter the broker to prune dead
    /// subscribers), run `matcher` against the thread-local scratch,
    /// and count the event. Pair with [`Broker::return_matched`] after
    /// delivery.
    fn matched_via(
        &self,
        matcher: impl FnOnce(&mut MatchScratch, &mut Vec<SubscriptionId>),
    ) -> Vec<SubscriptionId> {
        let epoch = self.migration_epoch();
        let mut matched = PUBLISH_STATE.with(|cell| {
            let state = &mut *cell.borrow_mut();
            let mut matched = std::mem::take(&mut state.matched);
            matched.clear();
            matcher(&mut state.scratch, &mut matched);
            self.trim_oversized(&mut state.scratch);
            matched
        });
        self.dedup_matched(epoch, &mut matched);
        self.inner
            .stats
            .events_published
            .fetch_add(1, Ordering::Relaxed);
        matched
    }

    /// Snapshot of the migration epoch, taken before matching starts;
    /// pair with [`Broker::dedup_matched`] after the last translation.
    fn migration_epoch(&self) -> u64 {
        self.inner.migration_epoch.load(Ordering::Acquire)
    }

    /// Shards are visited one lock at a time, so a publish racing a
    /// live migration can see the migrating subscription on both its
    /// source and its target shard; deduplicating keeps delivery
    /// at-most-once per subscriber per event. (The mirror race — the
    /// event observing the subscription on *neither* shard — is the
    /// same anomaly as an event racing an unsubscribe+resubscribe and
    /// is documented on [`Broker::migrate`].)
    ///
    /// The sort only runs when a relocation actually committed during
    /// the match window (`epoch_before` no longer current): any
    /// relocation able to duplicate this publish's matched set commits
    /// under a shard write lock *between* two of its shard visits, and
    /// therefore between the two epoch reads. Migration-quiescent
    /// publishes — and single-shard brokers, which cannot migrate —
    /// pay nothing.
    fn dedup_matched(&self, epoch_before: u64, matched: &mut Vec<SubscriptionId>) {
        if self.inner.migration_epoch.load(Ordering::Acquire) != epoch_before {
            matched.sort_unstable();
            matched.dedup();
        }
    }

    /// Returns the matched buffer's capacity to the thread for the next
    /// publish — unless the publish grew it past the scratch trim cap,
    /// in which case the spike capacity is dropped rather than pinned
    /// in the thread-local state (the matched-accumulator half of the
    /// high-water fix; [`Broker::trim_oversized`] covers the scratch).
    fn return_matched(&self, mut matched: Vec<SubscriptionId>) {
        self.release_if_oversized(&mut matched);
        PUBLISH_STATE.with(|cell| cell.borrow_mut().matched = matched);
    }

    /// The one place the trim-cap rule for id buffers lives: a vector
    /// grown past [`BrokerBuilder::scratch_trim_cap`] is replaced by an
    /// empty one (capacity released) before being parked for reuse.
    fn release_if_oversized(&self, ids: &mut Vec<SubscriptionId>) {
        if ids.capacity() * std::mem::size_of::<SubscriptionId>() > self.inner.scratch_trim_cap {
            *ids = Vec::new();
        }
    }

    /// The sequential-path half of the scratch high-water fix: the
    /// thread-local publish scratch is trimmed after a publish that
    /// grew it past [`BrokerBuilder::scratch_trim_cap`], mirroring what
    /// the fan-out [`ScratchPool`] does on lease return — one
    /// pathological event cannot pin its peak capacity in every
    /// publisher thread forever. (`trim_publish_scratch` remains the
    /// manual whole-state release.)
    fn trim_oversized(&self, scratch: &mut MatchScratch) {
        if scratch.heap_bytes() > self.inner.scratch_trim_cap {
            scratch.trim();
        }
    }

    /// Whether the next publish should fan out across shards: requires
    /// the worker pool (multi-shard brokers only) and at least
    /// `parallel_threshold` live subscriptions.
    fn parallel_eligible(&self) -> bool {
        if self.inner.fanout.is_none() {
            return false;
        }
        let stats = &self.inner.stats;
        let created = stats.subscriptions_created.load(Ordering::Relaxed);
        let removed = stats.subscriptions_removed.load(Ordering::Relaxed);
        created.saturating_sub(removed) as usize >= self.inner.parallel_threshold
    }

    /// Matches `event` against every shard concurrently and appends the
    /// matched **global** ids to `out`, in shard order — the same
    /// sequence [`BrokerInner::match_into`]'s sequential walk produces.
    ///
    /// Each worker takes its shard's read lock, matches into a warm
    /// [`MatchScratch`] leased from the scratch pool (checkout hygiene
    /// — reset + capacity — happens once per lease), translates the
    /// shard-local ids to global ids in place, releases the lock, and
    /// parks the lease in its [`FanOut`] slot. The caller matches
    /// shard 0 itself with the thread-local scratch, then merges the
    /// slots in shard index order. The rendezvous is panic-safe: a
    /// worker that dies completes its slot empty instead of wedging the
    /// publish.
    fn match_parallel_into(
        &self,
        event: &Arc<Event>,
        scratch: &mut MatchScratch,
        out: &mut Vec<SubscriptionId>,
    ) {
        let shards = self.inner.shards.len();
        let fan = self.inner.fanout.as_ref().expect("parallel needs a pool");
        let run: Arc<FanOut<ScratchLease>> = FanOut::new(shards - 1);
        for s in 1..shards {
            let slot = run.slot(s - 1);
            let inner = Arc::clone(&self.inner);
            let event = Arc::clone(event);
            fan.pool.submit(move || {
                let lease = {
                    let fan = inner.fanout.as_ref().expect("fanout lives with the broker");
                    let engine = inner.shards[s].read();
                    let mut lease = fan.scratches.lease(&**engine);
                    engine.match_event_into(&event, &mut lease);
                    // Directory translation under the shard read lock —
                    // see `match_into` for why that makes it sound
                    // against concurrent migration (and why an empty
                    // match skips the lock).
                    if !lease.matched().is_empty() {
                        let directory = inner.directory.read();
                        lease.translate_matched(|l| directory.global_of(s, l));
                    }
                    lease
                }; // shard lock released before the rendezvous
                   // The broker references go first: once the slot
                   // completes, the publisher may return and drop the last
                   // external broker handle — this job must not be the one
                   // holding the final `Arc<BrokerInner>` (its drop would
                   // tear the worker pool down from inside a worker).
                drop(event);
                drop(inner);
                slot.fill(lease);
            });
        }
        {
            let engine = self.inner.shards[0].read();
            engine.match_event_into(event, scratch);
            if !scratch.matched().is_empty() {
                let directory = self.inner.directory.read();
                out.extend(
                    scratch
                        .matched()
                        .iter()
                        .filter_map(|&l| directory.global_of(0, l)),
                );
            }
        }
        let mut lost = 0u64;
        for slot in run.wait() {
            match slot {
                Some(lease) => out.extend_from_slice(lease.matched()),
                None => lost += 1,
            }
        }
        self.note_lost_workers(lost);
    }

    /// Records fan-out slots whose worker died before filling them
    /// ([`BrokerStats::fanout_worker_failures`]): the publish delivered
    /// without those shards' matches, and operators must be able to see
    /// that the parallel ≡ sequential contract was broken.
    fn note_lost_workers(&self, lost: u64) {
        if lost > 0 {
            self.inner
                .stats
                .fanout_worker_failures
                .fetch_add(lost, Ordering::Relaxed);
        }
    }

    /// Publishes a batch of events — the amortised hot path. Returns
    /// the total number of notifications delivered, and delivers
    /// exactly the same notifications, in the same per-subscriber
    /// order, as the equivalent sequence of [`Broker::publish`] calls.
    ///
    /// The batch is taken as `Arc<Event>`s: one allocation per event,
    /// made by the caller, shared untouched across every shard's
    /// matching and every delivered notification — the batch path never
    /// clones an event. Callers holding plain events can use the
    /// [`Broker::publish_batch_events`] convenience wrapper.
    ///
    /// Compared to the one-by-one sequence, the batch acquires each
    /// shard's read lock **once** (matching all events against a shard
    /// while it is hot in cache), reuses the thread-local scratch
    /// across the whole batch, and takes the sender-map read lock once
    /// for all deliveries. On a multi-shard broker past the
    /// [`parallel threshold`](BrokerBuilder::parallel_threshold) the
    /// shards additionally match the batch **concurrently** (one worker
    /// per remote shard, merged in shard order), which cuts the batch's
    /// wall-clock latency on multi-core hosts.
    pub fn publish_batch(&self, events: &[Arc<Event>]) -> usize {
        if events.is_empty() {
            return 0;
        }
        // Phase A: match every event against every shard, bucketing
        // matched global ids per event. Shard-major order amortises
        // lock acquisitions; buckets keep delivery event-major so
        // per-subscriber notification order equals the sequential one.
        let parallel = self.parallel_eligible();
        let epoch = self.migration_epoch();
        let buckets = PUBLISH_STATE.with(|cell| {
            let state = &mut *cell.borrow_mut();
            let mut buckets = std::mem::take(&mut state.buckets);
            buckets.iter_mut().for_each(Vec::clear);
            if buckets.len() < events.len() {
                // Grow to the high-water batch length, never shrink:
                // a short batch must not free the longer tail's
                // capacity (everything zips against `events`, so
                // extra cleared buckets are simply ignored).
                buckets.resize_with(events.len(), Vec::new);
            }
            if parallel {
                self.match_batch_parallel(events, &mut state.scratch, &mut buckets);
            } else {
                for (s, lock) in self.inner.shards.iter().enumerate() {
                    let engine = lock.read();
                    for (event, bucket) in events.iter().zip(&mut buckets) {
                        engine.match_event_into(event, &mut state.scratch);
                        if state.scratch.matched().is_empty() {
                            continue;
                        }
                        // Per-event directory guard: soundness needs it
                        // only around the translation (under the shard
                        // read lock); holding it across the whole batch
                        // would stall every subscribe/unsubscribe/
                        // migration for the batch's matching phase.
                        let directory = self.inner.directory.read();
                        bucket.extend(
                            state
                                .scratch
                                .matched()
                                .iter()
                                .filter_map(|&l| directory.global_of(s, l)),
                        );
                    }
                }
            }
            self.trim_oversized(&mut state.scratch);
            for bucket in buckets.iter_mut().take(events.len()) {
                // Same migration-race guard as the single-publish path.
                self.dedup_matched(epoch, bucket);
            }
            buckets
        });
        self.inner
            .stats
            .events_published
            .fetch_add(events.len() as u64, Ordering::Relaxed);

        // Phase B: delivery, outside the scratch borrow and all engine
        // locks, under one sender-map read lock for the whole batch.
        // The caller's Arcs are delivered as-is: no event is cloned.
        let mut delivered = 0usize;
        let mut dead: Vec<SubscriptionId> = Vec::new();
        {
            let senders = self.inner.senders.read();
            for (event, matched) in events.iter().zip(&buckets) {
                if matched.is_empty() {
                    continue;
                }
                delivered += self.deliver_locked(&senders, event, matched, &mut dead);
            }
        }
        self.prune_dead(dead);
        self.inner
            .stats
            .notifications_delivered
            .fetch_add(delivered as u64, Ordering::Relaxed);
        // Bucket half of the high-water fix: a bucket a pathological
        // event grew past the trim cap is released, not parked.
        let mut buckets = buckets;
        for bucket in &mut buckets {
            self.release_if_oversized(bucket);
        }
        PUBLISH_STATE.with(|cell| cell.borrow_mut().buckets = buckets);
        delivered
    }

    /// [`Broker::publish_batch`] for callers holding plain events: each
    /// is cloned into an `Arc` once (the only copies made — matching
    /// and delivery then share them).
    pub fn publish_batch_events(&self, events: &[Event]) -> usize {
        let shared: Vec<Arc<Event>> = events.iter().map(|e| Arc::new(e.clone())).collect();
        self.publish_batch(&shared)
    }

    /// Batch counterpart of [`Broker::match_parallel_into`]: each
    /// remote shard's worker matches the whole batch against its shard
    /// (shard lock taken once, one leased scratch reused across the
    /// batch) into per-event buckets; the caller does shard 0 inline
    /// and merges the worker buckets in shard order.
    fn match_batch_parallel(
        &self,
        events: &[Arc<Event>],
        scratch: &mut MatchScratch,
        buckets: &mut [Vec<SubscriptionId>],
    ) {
        let shards = self.inner.shards.len();
        let fan = self.inner.fanout.as_ref().expect("parallel needs a pool");
        // The worker jobs are `'static`; the one per-batch allocation
        // for sharing the event list is this Vec of Arc clones.
        let shared: Arc<Vec<Arc<Event>>> = Arc::new(events.to_vec());
        // Each worker hands back its shard's matches as one flat id
        // vector plus per-event end offsets (event `e`'s ids are
        // `flat[ends[e-1]..ends[e]]`) — two allocations per shard per
        // batch instead of one Vec per event.
        type ShardMatches = (Vec<SubscriptionId>, Vec<usize>);
        let run: Arc<FanOut<ShardMatches>> = FanOut::new(shards - 1);
        for s in 1..shards {
            let slot = run.slot(s - 1);
            let inner = Arc::clone(&self.inner);
            let shared = Arc::clone(&shared);
            fan.pool.submit(move || {
                let out = {
                    let fan = inner.fanout.as_ref().expect("fanout lives with the broker");
                    let engine = inner.shards[s].read();
                    let mut lease = fan.scratches.lease(&**engine);
                    let mut flat: Vec<SubscriptionId> = Vec::new();
                    let mut ends: Vec<usize> = Vec::with_capacity(shared.len());
                    for event in shared.iter() {
                        engine.match_event_into(event, &mut lease);
                        if !lease.matched().is_empty() {
                            // Per-event directory guard — see the
                            // sequential batch path.
                            let directory = inner.directory.read();
                            flat.extend(
                                lease
                                    .matched()
                                    .iter()
                                    .filter_map(|&l| directory.global_of(s, l)),
                            );
                        }
                        ends.push(flat.len());
                    }
                    (flat, ends)
                };
                // Broker references released before the slot completes
                // (see `match_parallel_into`): this job must never hold
                // the final `Arc<BrokerInner>`.
                drop(shared);
                drop(inner);
                slot.fill(out);
            });
        }
        {
            let engine = self.inner.shards[0].read();
            for (event, bucket) in events.iter().zip(buckets.iter_mut()) {
                engine.match_event_into(event, scratch);
                if scratch.matched().is_empty() {
                    continue;
                }
                let directory = self.inner.directory.read();
                bucket.extend(
                    scratch
                        .matched()
                        .iter()
                        .filter_map(|&l| directory.global_of(0, l)),
                );
            }
        }
        // Slot order is shard order, so per-event ids concatenate
        // exactly like the sequential shard-major walk.
        let mut lost = 0u64;
        for slot in run.wait() {
            let Some((flat, ends)) = slot else {
                lost += 1;
                continue;
            };
            let mut start = 0usize;
            for (bucket, &end) in buckets.iter_mut().zip(&ends) {
                bucket.extend_from_slice(&flat[start..end]);
                start = end;
            }
        }
        self.note_lost_workers(lost);
    }

    /// Queues `event` to the subscribers in `matched`.
    fn deliver_matched(&self, event: Event, matched: &[SubscriptionId]) -> usize {
        if matched.is_empty() {
            return 0;
        }
        self.deliver_matched_arc(&Arc::new(event), matched)
    }

    /// [`Broker::deliver_matched`] for an already-shared event: the
    /// caller's `Arc` is what every subscriber receives (zero copies).
    fn deliver_matched_arc(&self, event: &Arc<Event>, matched: &[SubscriptionId]) -> usize {
        if matched.is_empty() {
            return 0;
        }
        let mut dead: Vec<SubscriptionId> = Vec::new();
        let delivered = {
            let senders = self.inner.senders.read();
            self.deliver_locked(&senders, event, matched, &mut dead)
        };
        self.prune_dead(dead);
        self.inner
            .stats
            .notifications_delivered
            .fetch_add(delivered as u64, Ordering::Relaxed);
        delivered
    }

    /// Delivery core: queues `event` to `matched` under an
    /// already-held sender-map lock, collecting disconnected
    /// subscribers into `dead` for pruning after the lock is released.
    fn deliver_locked(
        &self,
        senders: &HashMap<SubscriptionId, Sender<Arc<Event>>>,
        event: &Arc<Event>,
        matched: &[SubscriptionId],
        dead: &mut Vec<SubscriptionId>,
    ) -> usize {
        let mut delivered = 0usize;
        for id in matched {
            let Some(sender) = senders.get(id) else {
                continue;
            };
            match self.inner.policy.deliver(sender, Arc::clone(event)) {
                Ok(true) => delivered += 1,
                Ok(false) => {
                    self.inner
                        .stats
                        .notifications_dropped
                        .fetch_add(1, Ordering::Relaxed);
                }
                Err(()) => dead.push(*id),
            }
        }
        delivered
    }

    /// Unsubscribes disconnected subscribers found during delivery
    /// (idempotent: batch delivery may report one subscriber several
    /// times).
    fn prune_dead(&self, dead: Vec<SubscriptionId>) {
        for id in dead {
            self.inner.unsubscribe(id);
        }
    }

    /// A cloneable publishing handle for producer threads.
    pub fn publisher(&self) -> Publisher {
        Publisher {
            broker: self.clone(),
        }
    }

    /// Number of live subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.inner.senders.read().len()
    }

    /// Number of engine shards subscriptions are partitioned across.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// Number of persistent fan-out worker threads (0 on single-shard
    /// brokers, which have no parallel pipeline).
    pub fn parallel_workers(&self) -> usize {
        self.inner.fanout.as_ref().map_or(0, |f| f.pool.threads())
    }

    /// The fan-out scratch pool, for observability (steady-state memory
    /// probes); `None` on single-shard brokers.
    pub fn scratch_pool(&self) -> Option<&ScratchPool> {
        self.inner.fanout.as_ref().map(|f| &*f.scratches)
    }

    /// The engines' memory breakdown, summed across shards, plus the
    /// subscription directory's tables and stored expressions
    /// (reported as `unsub_support`).
    pub fn memory_usage(&self) -> MemoryUsage {
        let directory = MemoryUsage {
            unsub_support: self.inner.directory.read().heap_bytes(),
            ..MemoryUsage::default()
        };
        self.inner
            .shards
            .iter()
            .map(|lock| lock.read().memory_usage())
            .fold(directory, |a, b| a + b)
    }

    /// Which engine kind the broker runs (of the first shard, when
    /// heterogeneous engines were supplied).
    pub fn engine_kind(&self) -> EngineKind {
        self.inner.shards[0].read().kind()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> BrokerStats {
        let s = &self.inner.stats;
        BrokerStats {
            events_published: s.events_published.load(Ordering::Relaxed),
            notifications_delivered: s.notifications_delivered.load(Ordering::Relaxed),
            notifications_dropped: s.notifications_dropped.load(Ordering::Relaxed),
            subscriptions_created: s.subscriptions_created.load(Ordering::Relaxed),
            subscriptions_removed: s.subscriptions_removed.load(Ordering::Relaxed),
            subscriptions_migrated: s.subscriptions_migrated.load(Ordering::Relaxed),
            fanout_worker_failures: s.fanout_worker_failures.load(Ordering::Relaxed),
        }
    }
}

impl fmt::Debug for Broker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Broker")
            .field("engine", &self.engine_kind())
            .field("subscriptions", &self.subscription_count())
            .finish()
    }
}

/// A cloneable handle for publishing from producer threads.
///
/// # Examples
///
/// ```
/// use boolmatch_broker::Broker;
/// use boolmatch_types::Event;
///
/// let broker = Broker::builder().build();
/// let publisher = broker.publisher();
/// std::thread::spawn(move || {
///     publisher.publish(Event::builder().attr("n", 1_i64).build());
/// })
/// .join()
/// .unwrap();
/// ```
#[derive(Clone, Debug)]
pub struct Publisher {
    broker: Broker,
}

impl Publisher {
    /// Publishes an event; see [`Broker::publish`].
    pub fn publish(&self, event: Event) -> usize {
        self.broker.publish(event)
    }

    /// Publishes an already-shared event; see [`Broker::publish_arc`].
    pub fn publish_arc(&self, event: Arc<Event>) -> usize {
        self.broker.publish_arc(event)
    }

    /// Publishes a batch of shared events; see
    /// [`Broker::publish_batch`].
    pub fn publish_batch(&self, events: &[Arc<Event>]) -> usize {
        self.broker.publish_batch(events)
    }

    /// Publishes a batch of plain events; see
    /// [`Broker::publish_batch_events`].
    pub fn publish_batch_events(&self, events: &[Event]) -> usize {
        self.broker.publish_batch_events(events)
    }
}

/// Configures and builds a [`Broker`].
#[derive(Default)]
pub struct BrokerBuilder {
    kind: Option<EngineKind>,
    custom: Option<Vec<BoxedEngine>>,
    /// 0 means "not set" and resolves to 1.
    shards: usize,
    policy: DeliveryPolicy,
    parallel_threshold: Option<usize>,
    worker_threads: Option<usize>,
    scratch_trim_cap: Option<usize>,
}

impl fmt::Debug for BrokerBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BrokerBuilder")
            .field("kind", &self.kind)
            .field("custom", &self.custom.as_ref().map(|e| e.len()))
            .field("shards", &self.shards.max(1))
            .field("policy", &self.policy)
            .field("parallel_threshold", &self.parallel_threshold)
            .field("worker_threads", &self.worker_threads)
            .field("scratch_trim_cap", &self.scratch_trim_cap)
            .finish()
    }
}

impl BrokerBuilder {
    /// Selects the matching engine (default:
    /// [`EngineKind::NonCanonical`]).
    #[must_use]
    pub fn engine(mut self, kind: EngineKind) -> Self {
        self.kind = Some(kind);
        self
    }

    /// Partitions subscriptions across `n` engine shards, each behind
    /// its own lock (default: 1, which is behaviourally identical to an
    /// unsharded broker). More shards mean subscription churn blocks a
    /// smaller slice of concurrent matching and smaller per-shard
    /// phase-2 state; see the `shard_scaling` bench.
    ///
    /// Ignored when [`BrokerBuilder::engine_instances`] supplies
    /// pre-built engines (the instance count is the shard count).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn shards(mut self, n: usize) -> Self {
        assert!(n > 0, "a broker needs at least one engine shard");
        self.shards = n;
        self
    }

    /// Supplies a single pre-built (possibly custom) engine instead of
    /// an [`EngineKind`]; takes precedence over
    /// [`BrokerBuilder::engine`] and [`BrokerBuilder::shards`]. Useful
    /// for non-default engine configurations and for instrumented
    /// engines in tests.
    #[must_use]
    pub fn engine_instance(self, engine: BoxedEngine) -> Self {
        self.engine_instances(vec![engine])
    }

    /// Supplies one pre-built engine per shard (shard `i` runs
    /// `engines[i]`); takes precedence over [`BrokerBuilder::engine`]
    /// and [`BrokerBuilder::shards`].
    ///
    /// # Panics
    ///
    /// Panics if `engines` is empty.
    #[must_use]
    pub fn engine_instances(mut self, engines: Vec<BoxedEngine>) -> Self {
        assert!(
            !engines.is_empty(),
            "a broker needs at least one engine shard"
        );
        self.custom = Some(engines);
        self
    }

    /// Sets the delivery policy (default:
    /// [`DeliveryPolicy::Unbounded`]).
    #[must_use]
    pub fn delivery(mut self, policy: DeliveryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the live-subscription count at which publishes switch from
    /// the sequential shard walk to the parallel fan-out (default:
    /// [`DEFAULT_PARALLEL_THRESHOLD`]). `0` forces the fan-out for
    /// every publish on a multi-shard broker; `usize::MAX` disables it.
    /// Single-shard brokers always walk sequentially — their behaviour
    /// is unchanged by this knob.
    #[must_use]
    pub fn parallel_threshold(mut self, subscriptions: usize) -> Self {
        self.parallel_threshold = Some(subscriptions);
        self
    }

    /// Sets the number of persistent fan-out worker threads (default:
    /// one per remote shard, capped at the host's available
    /// parallelism). Only multi-shard brokers spawn workers at all.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn worker_threads(mut self, n: usize) -> Self {
        assert!(n > 0, "a worker pool needs at least one thread");
        self.worker_threads = Some(n);
        self
    }

    /// Sets the heap-byte cap above which a publish scratch is trimmed
    /// — capacity released — instead of kept at its high-water size
    /// (default: [`DEFAULT_SCRATCH_TRIM_CAP`]). Applied on both
    /// publish paths: a fan-out scratch returning to the pool, and the
    /// sequential path's thread-local scratch after each
    /// publish/batch. Without a cap, one pathological event (say, a
    /// 100k-candidate spike) would pin its peak allocation in every
    /// pooled scratch and every publisher thread for the broker's
    /// lifetime. `usize::MAX` disables trimming (the pre-cap
    /// behaviour); `0` trims on every return — useful in
    /// memory-starved deployments, at the price of re-growing the
    /// buffers each publish.
    #[must_use]
    pub fn scratch_trim_cap(mut self, bytes: usize) -> Self {
        self.scratch_trim_cap = Some(bytes);
        self
    }

    /// Builds the broker.
    pub fn build(self) -> Broker {
        let engines = self.custom.unwrap_or_else(|| {
            let kind = self.kind.unwrap_or(EngineKind::NonCanonical);
            (0..self.shards.max(1)).map(|_| kind.build()).collect()
        });
        let shard_count = engines.len();
        // The parallel pipeline exists only when there is more than one
        // shard to fan out over; a single-shard broker builds no worker
        // pool and always takes the sequential walk.
        let fanout = (shard_count >= 2).then(|| {
            let threads = self.worker_threads.unwrap_or_else(|| {
                (shard_count - 1).min(std::thread::available_parallelism().map_or(1, |n| n.get()))
            });
            Fanout {
                pool: WorkerPool::new(threads),
                // One warm scratch per worker, plus headroom for a slot
                // probed while a return is in flight.
                scratches: Arc::new(ScratchPool::with_trim_cap(
                    threads + 1,
                    self.scratch_trim_cap.unwrap_or(DEFAULT_SCRATCH_TRIM_CAP),
                )),
            }
        });
        Broker {
            inner: Arc::new(BrokerInner {
                shards: engines.into_iter().map(RwLock::new).collect(),
                directory: RwLock::new(SubscriptionDirectory::new(shard_count)),
                scratch_trim_cap: self.scratch_trim_cap.unwrap_or(DEFAULT_SCRATCH_TRIM_CAP),
                placeholder_expr: Arc::new(
                    Expr::parse("__unmigratable = 0").expect("placeholder parses"),
                ),
                migration_epoch: AtomicU64::new(0),
                senders: RwLock::new(HashMap::new()),
                policy: self.policy,
                stats: AtomicStats::default(),
                fanout,
                parallel_threshold: self
                    .parallel_threshold
                    .unwrap_or(DEFAULT_PARALLEL_THRESHOLD),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(pairs: &[(&str, i64)]) -> Event {
        Event::from_pairs(pairs.iter().map(|(n, v)| (*n, *v)))
    }

    #[test]
    fn subscribe_publish_receive() {
        let broker = Broker::builder().build();
        let sub = broker.subscribe("a = 1 and b = 2").unwrap();
        assert_eq!(broker.publish(ev(&[("a", 1), ("b", 2)])), 1);
        assert_eq!(broker.publish(ev(&[("a", 1)])), 0);
        let got = sub.try_recv().unwrap();
        assert_eq!(got.get("b"), Some(&2_i64.into()));
        assert!(sub.try_recv().is_none());
    }

    #[test]
    fn every_engine_kind_works() {
        for kind in EngineKind::ALL {
            let broker = Broker::builder().engine(kind).build();
            assert_eq!(broker.engine_kind(), kind);
            let sub = broker.subscribe("(a = 1 or b = 2) and c = 3").unwrap();
            assert_eq!(broker.publish(ev(&[("b", 2), ("c", 3)])), 1);
            assert!(sub.try_recv().is_some());
        }
    }

    #[test]
    fn parse_errors_surface() {
        let broker = Broker::builder().build();
        assert!(matches!(
            broker.subscribe("a >"),
            Err(BrokerError::Parse(_))
        ));
    }

    #[test]
    fn explicit_unsubscribe_stops_delivery() {
        let broker = Broker::builder().build();
        let sub = broker.subscribe("a = 1").unwrap();
        let id = sub.id();
        assert!(broker.unsubscribe(id));
        assert!(!broker.unsubscribe(id));
        assert_eq!(broker.publish(ev(&[("a", 1)])), 0);
        assert_eq!(broker.subscription_count(), 0);
    }

    #[test]
    fn handle_drop_unsubscribes() {
        let broker = Broker::builder().build();
        {
            let _sub = broker.subscribe("a = 1").unwrap();
            assert_eq!(broker.subscription_count(), 1);
        }
        assert_eq!(broker.subscription_count(), 0);
        assert_eq!(broker.publish(ev(&[("a", 1)])), 0);
        let stats = broker.stats();
        assert_eq!(stats.subscriptions_created, 1);
        assert_eq!(stats.subscriptions_removed, 1);
    }

    #[test]
    fn drop_newest_policy_counts_drops() {
        let broker = Broker::builder()
            .delivery(DeliveryPolicy::DropNewest { capacity: 1 })
            .build();
        let sub = broker.subscribe("a = 1").unwrap();
        assert_eq!(broker.publish(ev(&[("a", 1)])), 1);
        assert_eq!(broker.publish(ev(&[("a", 1)])), 0); // queue full
        assert_eq!(broker.stats().notifications_dropped, 1);
        assert!(sub.try_recv().is_some());
        assert_eq!(broker.publish(ev(&[("a", 1)])), 1);
    }

    #[test]
    fn fanout_to_many_subscribers() {
        let broker = Broker::builder().build();
        let subs: Vec<_> = (0..20)
            .map(|_| broker.subscribe("tick = 1").unwrap())
            .collect();
        assert_eq!(broker.publish(ev(&[("tick", 1)])), 20);
        for sub in &subs {
            assert!(sub.try_recv().is_some());
        }
    }

    #[test]
    fn concurrent_publishers_and_subscribers() {
        let broker = Broker::builder().build();
        let subs: Vec<_> = (0..8)
            .map(|i| broker.subscribe(&format!("topic = {i}")).unwrap())
            .collect();
        let mut handles = Vec::new();
        for t in 0..4 {
            let publisher = broker.publisher();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    publisher.publish(Event::builder().attr("topic", ((t + i) % 8) as i64).build());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total: usize = subs.iter().map(|s| s.drain().len()).sum();
        assert_eq!(total, 400);
        assert_eq!(broker.stats().events_published, 400);
        assert_eq!(broker.stats().notifications_delivered, 400);
    }

    #[test]
    fn stats_snapshot_is_consistent() {
        let broker = Broker::builder().build();
        let _sub = broker.subscribe("a = 1").unwrap();
        broker.publish(ev(&[("a", 1)]));
        broker.publish(ev(&[("a", 2)]));
        let s = broker.stats();
        assert_eq!(s.events_published, 2);
        assert_eq!(s.notifications_delivered, 1);
        assert_eq!(s.subscriptions_created, 1);
    }

    #[test]
    fn memory_usage_is_exposed() {
        let broker = Broker::builder().build();
        let _sub = broker.subscribe("(a = 1 or b = 2) and c = 3").unwrap();
        assert!(broker.memory_usage().total() > 0);
    }

    #[test]
    fn default_broker_has_one_shard() {
        let broker = Broker::builder().build();
        assert_eq!(broker.shard_count(), 1);
        assert_eq!(Broker::builder().shards(1).build().shard_count(), 1);
        assert_eq!(Broker::builder().shards(4).build().shard_count(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one engine shard")]
    fn zero_shards_panics() {
        let _ = Broker::builder().shards(0);
    }

    #[test]
    fn sharded_broker_delivers_like_unsharded() {
        for kind in EngineKind::ALL {
            for shards in [1usize, 3, 8] {
                let flat = Broker::builder().engine(kind).build();
                let sharded = Broker::builder().engine(kind).shards(shards).build();
                let exprs: Vec<String> = (0..20)
                    .map(|i| format!("(group = {} or boost = 1) and tick >= {}", i % 5, i))
                    .collect();
                let flat_subs: Vec<_> = exprs.iter().map(|e| flat.subscribe(e).unwrap()).collect();
                let sharded_subs: Vec<_> = exprs
                    .iter()
                    .map(|e| sharded.subscribe(e).unwrap())
                    .collect();
                // Round-robin + stride routing preserves arrival-order ids.
                for (a, b) in flat_subs.iter().zip(&sharded_subs) {
                    assert_eq!(a.id(), b.id());
                }
                for t in 0..30 {
                    let event = ev(&[("group", t % 5), ("tick", t * 2)]);
                    assert_eq!(
                        flat.publish(event.clone()),
                        sharded.publish(event),
                        "kind={kind} shards={shards} t={t}"
                    );
                }
                for (i, (a, b)) in flat_subs.iter().zip(&sharded_subs).enumerate() {
                    assert_eq!(a.drain().len(), b.drain().len(), "sub {i} on {kind}");
                }
            }
        }
    }

    #[test]
    fn sharded_unsubscribe_routes_to_owning_shard() {
        let broker = Broker::builder().shards(3).build();
        let subs: Vec<_> = (0..9)
            .map(|i| broker.subscribe(&format!("a = {i}")).unwrap())
            .collect();
        let id = subs[4].id();
        assert!(broker.unsubscribe(id));
        assert!(!broker.unsubscribe(id));
        assert_eq!(broker.subscription_count(), 8);
        assert_eq!(broker.publish(ev(&[("a", 4)])), 0);
        assert_eq!(broker.publish(ev(&[("a", 5)])), 1);
    }

    #[test]
    fn rejected_subscription_does_not_skew_placement() {
        // 2^17 DNF conjunctions: over the counting engine's default
        // 65,536 limit, so registration is rejected.
        let huge: String = (0..17)
            .map(|i| format!("(a{i} = 1 or b{i} = 1)"))
            .collect::<Vec<_>>()
            .join(" and ");
        let flat = Broker::builder().engine(EngineKind::Counting).build();
        let sharded = Broker::builder()
            .engine(EngineKind::Counting)
            .shards(2)
            .build();
        for broker in [&flat, &sharded] {
            let a = broker.subscribe("x = 1").unwrap();
            assert!(matches!(
                broker.subscribe(&huge),
                Err(BrokerError::Subscribe(_))
            ));
            let c = broker.subscribe("x = 2").unwrap();
            // The cursor must not advance on rejection: arrival-order
            // ids stay aligned with an unsharded broker's.
            assert_eq!(a.id().index(), 0);
            assert_eq!(c.id().index(), 1);
        }
    }

    #[test]
    fn publish_batch_equals_publish_sequence() {
        for shards in [1usize, 4] {
            let seq = Broker::builder().shards(shards).build();
            let batch = Broker::builder().shards(shards).build();
            let exprs = ["a >= 3", "a = 5 or b = 1", "a < 0"];
            let seq_subs: Vec<_> = exprs.iter().map(|e| seq.subscribe(e).unwrap()).collect();
            let batch_subs: Vec<_> = exprs.iter().map(|e| batch.subscribe(e).unwrap()).collect();
            let events: Vec<Arc<Event>> = (0..10)
                .map(|i| Arc::new(ev(&[("a", i), ("b", i % 2)])))
                .collect();

            let seq_delivered: usize = events.iter().map(|e| seq.publish_arc(e.clone())).sum();
            let batch_delivered = batch.publish_batch(&events);
            assert_eq!(seq_delivered, batch_delivered, "shards={shards}");
            assert_eq!(seq.stats().events_published, batch.stats().events_published);

            // Same notifications, in the same per-subscriber order.
            for (s, b) in seq_subs.iter().zip(&batch_subs) {
                let sn: Vec<_> = s.drain().iter().map(|e| e.get("a").cloned()).collect();
                let bn: Vec<_> = b.drain().iter().map(|e| e.get("a").cloned()).collect();
                assert_eq!(sn, bn, "shards={shards}");
            }
        }
    }

    #[test]
    fn publish_batch_empty_and_repeated() {
        let broker = Broker::builder().shards(2).build();
        assert_eq!(broker.publish_batch(&[]), 0);
        let sub = broker.subscribe("a = 1").unwrap();
        // Repeated batches reuse the thread-local buckets (shrinking
        // and growing the batch length between calls); the plain-event
        // wrapper and the Arc form interleave freely.
        assert_eq!(
            broker.publish_batch_events(&[ev(&[("a", 1)]), ev(&[("a", 2)])]),
            1
        );
        assert_eq!(broker.publish_batch(&[Arc::new(ev(&[("a", 1)]))]), 1);
        assert_eq!(
            broker.publish_batch_events(&[ev(&[("a", 1)]), ev(&[("a", 1)]), ev(&[("a", 3)])]),
            2
        );
        assert_eq!(sub.drain().len(), 4);
        assert_eq!(broker.stats().events_published, 6);
    }

    #[test]
    fn parallel_pipeline_exists_only_on_multi_shard_brokers() {
        let single = Broker::builder().build();
        assert_eq!(single.parallel_workers(), 0);
        assert!(single.scratch_pool().is_none());

        let sharded = Broker::builder().shards(4).worker_threads(2).build();
        assert_eq!(sharded.parallel_workers(), 2);
        assert!(sharded.scratch_pool().is_some());
    }

    #[test]
    fn parallel_publish_delivers_like_sequential() {
        for shards in [2usize, 4] {
            // Threshold 0 forces the fan-out; usize::MAX forbids it.
            let par = Broker::builder()
                .shards(shards)
                .parallel_threshold(0)
                .build();
            let seq = Broker::builder()
                .shards(shards)
                .parallel_threshold(usize::MAX)
                .build();
            let exprs: Vec<String> = (0..40)
                .map(|i| format!("(group = {} or boost = 1) and tick >= {}", i % 5, i))
                .collect();
            let par_subs: Vec<_> = exprs.iter().map(|e| par.subscribe(e).unwrap()).collect();
            let seq_subs: Vec<_> = exprs.iter().map(|e| seq.subscribe(e).unwrap()).collect();
            for t in 0..30 {
                let event = ev(&[("group", t % 5), ("tick", t * 2)]);
                assert_eq!(
                    par.publish(event.clone()),
                    seq.publish(event),
                    "shards={shards} t={t}"
                );
            }
            for (i, (a, b)) in par_subs.iter().zip(&seq_subs).enumerate() {
                assert_eq!(a.drain().len(), b.drain().len(), "sub {i} shards={shards}");
            }
            assert_eq!(
                par.stats().notifications_delivered,
                seq.stats().notifications_delivered
            );
        }
    }

    #[test]
    fn publish_arc_shares_the_allocation_with_delivery() {
        for threshold in [0usize, usize::MAX] {
            let broker = Broker::builder()
                .shards(2)
                .parallel_threshold(threshold)
                .build();
            let sub = broker.subscribe("a = 1").unwrap();
            let event = Arc::new(ev(&[("a", 1)]));
            assert_eq!(broker.publish_arc(Arc::clone(&event)), 1);
            let got = sub.try_recv().unwrap();
            // Delivery queued the caller's Arc itself, not a copy.
            assert!(Arc::ptr_eq(&got, &event), "threshold={threshold}");
        }
    }

    #[test]
    fn heterogeneous_engine_instances() {
        let broker = Broker::builder()
            .engine_instances(vec![
                EngineKind::NonCanonical.build(),
                EngineKind::Counting.build(),
            ])
            .build();
        assert_eq!(broker.shard_count(), 2);
        assert_eq!(broker.engine_kind(), EngineKind::NonCanonical);
        let a = broker.subscribe("a = 1").unwrap(); // shard 0
        let b = broker.subscribe("a = 2").unwrap(); // shard 1
        assert_eq!(broker.publish(ev(&[("a", 1)])), 1);
        assert_eq!(broker.publish(ev(&[("a", 2)])), 1);
        assert_eq!(a.drain().len(), 1);
        assert_eq!(b.drain().len(), 1);
        assert!(broker.memory_usage().total() > 0);
    }

    #[test]
    fn drained_shard_is_refilled_first() {
        // The churn-skew regression at the broker layer: unsubscribes
        // empty one shard; the old blind round-robin cursor kept
        // striding past it, least-loaded placement refills it.
        let broker = Broker::builder().shards(4).build();
        let mut subs: Vec<_> = (0..12)
            .map(|i| broker.subscribe(&format!("a = {i}")).unwrap())
            .collect();
        assert_eq!(broker.shard_loads(), vec![3, 3, 3, 3]);
        // Arrivals 2, 6, 10 are shard 2's; drop them.
        for &i in &[10usize, 6, 2] {
            drop(subs.remove(i));
        }
        assert_eq!(broker.shard_loads(), vec![3, 3, 0, 3]);
        for i in 12..15 {
            subs.push(broker.subscribe(&format!("a = {i}")).unwrap());
        }
        assert_eq!(broker.shard_loads(), vec![3, 3, 3, 3]);
        // And the refilled shard actually matches.
        assert_eq!(broker.publish(ev(&[("a", 13)])), 1);
    }

    #[test]
    fn rebalance_moves_load_without_touching_subscribers() {
        let broker = Broker::builder().shards(3).build();
        let mut subs: Vec<_> = (0..12)
            .map(|i| broker.subscribe(&format!("a = {i} or all = 1")).unwrap())
            .collect();
        // Drain shard 1 (arrivals 1, 4, 7, 10) to skew the loads.
        for &i in &[10usize, 7, 4, 1] {
            drop(subs.remove(i));
        }
        assert_eq!(broker.shard_loads(), vec![4, 0, 4]);

        // Bounded step first, then the rest.
        assert_eq!(broker.migrate(1), 1);
        let moved = broker.rebalance();
        assert!(moved >= 1);
        let loads = broker.shard_loads();
        let spread = loads.iter().max().unwrap() - loads.iter().min().unwrap();
        assert!(spread <= 1, "balanced after rebalance: {loads:?}");
        assert_eq!(loads.iter().sum::<usize>(), 8, "no subscription lost");
        assert_eq!(broker.stats().subscriptions_migrated, (1 + moved) as u64);
        assert_eq!(broker.rebalance(), 0, "already balanced");

        // Ids, handles and delivery survived every move.
        assert_eq!(broker.publish(ev(&[("all", 1)])), 8);
        for sub in &subs {
            assert_eq!(sub.drain().len(), 1);
            assert!(broker.unsubscribe(sub.id()));
        }
        assert_eq!(broker.subscription_count(), 0);
    }

    #[test]
    fn migrated_subscriptions_can_still_unsubscribe_by_handle_drop() {
        let broker = Broker::builder().shards(2).build();
        let mut subs: Vec<_> = (0..8)
            .map(|i| broker.subscribe(&format!("a = {i}")).unwrap())
            .collect();
        // Drop three of shard 0's (arrivals 0, 2, 4) to skew.
        for &i in &[4usize, 2, 0] {
            drop(subs.remove(i));
        }
        assert_eq!(broker.shard_loads(), vec![1, 4]);
        assert!(broker.rebalance() >= 1);
        // Handle drop must route through the directory to wherever the
        // subscription lives now.
        drop(subs);
        assert_eq!(broker.subscription_count(), 0);
        assert_eq!(broker.shard_loads(), vec![0, 0]);
    }

    #[test]
    fn single_shard_directory_charges_no_expression_heap() {
        // The shared placeholder must not be charged per subscription:
        // a flat broker's directory overhead stays table-sized, while
        // a sharded broker (which stores real expressions for
        // migration) reports more.
        let flat = Broker::builder().build();
        let sharded = Broker::builder().shards(2).build();
        let _flat_subs: Vec<_> = (0..50)
            .map(|i| flat.subscribe(&format!("a = {i} or b = {i}")).unwrap())
            .collect();
        let _sharded_subs: Vec<_> = (0..50)
            .map(|i| sharded.subscribe(&format!("a = {i} or b = {i}")).unwrap())
            .collect();
        let flat_dir = flat.memory_usage().unsub_support;
        let sharded_dir = sharded.memory_usage().unsub_support;
        assert!(
            flat_dir < sharded_dir,
            "flat {flat_dir} should be table-only, sharded {sharded_dir} stores expressions"
        );
    }

    #[test]
    fn single_shard_broker_has_nothing_to_migrate() {
        let broker = Broker::builder().build();
        let _sub = broker.subscribe("a = 1").unwrap();
        assert_eq!(broker.rebalance(), 0);
        assert_eq!(broker.shard_loads(), vec![1]);
        assert_eq!(broker.stats().subscriptions_migrated, 0);
    }

    #[test]
    fn scratch_trim_cap_bounds_the_fanout_pool() {
        // Default: the generous cap is wired through to the pool.
        let broker = Broker::builder().shards(2).build();
        assert_eq!(
            broker.scratch_pool().unwrap().trim_cap(),
            DEFAULT_SCRATCH_TRIM_CAP
        );

        // A zero cap trims on every return: after a forced-parallel
        // publish against a real engine, the parked scratches hold no
        // high-water memory — the spike-pinning bug is gone.
        let tight = Broker::builder()
            .shards(2)
            .parallel_threshold(0)
            .scratch_trim_cap(0)
            .build();
        let _subs: Vec<_> = (0..50)
            .map(|i| tight.subscribe(&format!("a = {i} or b = 1")).unwrap())
            .collect();
        assert_eq!(tight.publish(ev(&[("b", 1)])), 50);
        let pool = tight.scratch_pool().unwrap();
        assert_eq!(pool.trim_cap(), 0);
        assert!(pool.pooled() >= 1, "scratches still return to the pool");
        assert_eq!(pool.heap_bytes(), 0, "trimmed on return, not pinned");

        // The sequential path trims its thread-local scratch by the
        // same cap: repeated publishes stay correct through the
        // trim-and-regrow cycle.
        let sequential = Broker::builder().scratch_trim_cap(0).build();
        let sub = sequential.subscribe("a = 1 or b = 1").unwrap();
        for _ in 0..3 {
            assert_eq!(sequential.publish(ev(&[("a", 1)])), 1);
        }
        assert_eq!(sub.drain().len(), 3);
    }

    #[test]
    fn trim_publish_scratch_keeps_publishing_correct() {
        let broker = Broker::builder().build();
        let sub = broker.subscribe("a = 1").unwrap();
        assert_eq!(broker.publish(ev(&[("a", 1)])), 1);
        // Trimming between publishes releases the thread's buffers; the
        // next publish re-grows them and still matches correctly.
        trim_publish_scratch();
        assert_eq!(broker.publish(ev(&[("a", 1)])), 1);
        assert_eq!(sub.drain().len(), 2);
    }
}
