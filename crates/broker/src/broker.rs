//! The broker itself.

use std::cell::RefCell;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use boolmatch_core::{
    BoxedEngine, EngineKind, FilterEngine, MatchScratch, MemoryUsage, ShardRouter, SubscribeError,
    SubscriptionId,
};
use boolmatch_expr::{Expr, ParseError};
use boolmatch_types::Event;
use crossbeam::channel::Sender;
use parking_lot::RwLock;

use crate::delivery::DeliveryPolicy;
use crate::subscriber::Subscription;

/// Errors surfaced by [`Broker`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BrokerError {
    /// The subscription text failed to parse.
    Parse(ParseError),
    /// The engine refused the subscription.
    Subscribe(SubscribeError),
}

impl fmt::Display for BrokerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BrokerError::Parse(e) => write!(f, "subscription parse error: {e}"),
            BrokerError::Subscribe(e) => write!(f, "subscription rejected: {e}"),
        }
    }
}

impl Error for BrokerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BrokerError::Parse(e) => Some(e),
            BrokerError::Subscribe(e) => Some(e),
        }
    }
}

impl From<ParseError> for BrokerError {
    fn from(e: ParseError) -> Self {
        BrokerError::Parse(e)
    }
}

impl From<SubscribeError> for BrokerError {
    fn from(e: SubscribeError) -> Self {
        BrokerError::Subscribe(e)
    }
}

/// Monotonic operational counters; snapshot via [`Broker::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BrokerStats {
    /// Events accepted by [`Broker::publish`].
    pub events_published: u64,
    /// Notifications placed on subscriber queues.
    pub notifications_delivered: u64,
    /// Notifications dropped by a full [`DeliveryPolicy::DropNewest`]
    /// queue.
    pub notifications_dropped: u64,
    /// Subscriptions registered over the broker's lifetime.
    pub subscriptions_created: u64,
    /// Subscriptions removed (explicitly or by handle drop).
    pub subscriptions_removed: u64,
}

#[derive(Default)]
struct AtomicStats {
    events_published: AtomicU64,
    notifications_delivered: AtomicU64,
    notifications_dropped: AtomicU64,
    subscriptions_created: AtomicU64,
    subscriptions_removed: AtomicU64,
}

/// Per-publisher-thread reusable buffers: the match scratch plus the
/// global matched-id accumulator (publish) and the per-event matched
/// buckets (publish_batch).
#[derive(Default)]
struct PublishState {
    scratch: MatchScratch,
    matched: Vec<SubscriptionId>,
    buckets: Vec<Vec<SubscriptionId>>,
}

thread_local! {
    // One state per publisher thread, shared by all brokers on that
    // thread (sound: the scratch is engine-agnostic and self-restoring
    // between matches). It grows to the largest engine the thread ever
    // matched against and stays at that high-water mark until
    // [`trim_publish_scratch`] is called.
    static PUBLISH_STATE: RefCell<PublishState> = RefCell::new(PublishState::default());
}

/// Releases the calling thread's publish scratch buffers.
///
/// [`Broker::publish`] keeps one [`MatchScratch`] (plus a matched-id
/// accumulator) per thread, sized to the largest engine that thread has
/// matched against. Long-lived worker threads that once published to a
/// huge broker and now serve only small ones can call this to return
/// the high-water allocation; the next publish re-grows the buffers
/// lazily.
pub fn trim_publish_scratch() {
    PUBLISH_STATE.with(|cell| *cell.borrow_mut() = PublishState::default());
}

pub(crate) struct BrokerInner {
    /// One engine per shard, each behind its own lock: subscription
    /// churn write-locks exactly one shard, so publishers keep matching
    /// on every other shard. Global ↔ (shard, local) id translation is
    /// the same stride arithmetic [`boolmatch_core::ShardedEngine`]
    /// uses (`router`).
    shards: Vec<RwLock<BoxedEngine>>,
    router: ShardRouter,
    /// Round-robin placement cursor for [`Broker::subscribe_expr`].
    next_shard: AtomicUsize,
    senders: RwLock<HashMap<SubscriptionId, Sender<Arc<Event>>>>,
    policy: DeliveryPolicy,
    stats: AtomicStats,
}

impl BrokerInner {
    pub(crate) fn unsubscribe(&self, id: SubscriptionId) -> bool {
        let existed = self.senders.write().remove(&id).is_some();
        if existed {
            // The sender map is the source of truth; engine state follows.
            let (shard, local) = self.router.split(id);
            self.shards[shard]
                .write()
                .unsubscribe(local)
                .expect("engine and sender map are kept in sync");
            self.stats
                .subscriptions_removed
                .fetch_add(1, Ordering::Relaxed);
        }
        existed
    }

    /// Matches `event` against every shard (read lock each, one at a
    /// time) and appends the matched **global** ids to `out`.
    fn match_into(&self, event: &Event, scratch: &mut MatchScratch, out: &mut Vec<SubscriptionId>) {
        for (s, lock) in self.shards.iter().enumerate() {
            let engine = lock.read();
            engine.match_event_into(event, scratch);
            out.extend(scratch.matched().iter().map(|&l| self.router.global(s, l)));
        }
    }
}

/// A content-based publish/subscribe broker; see the [crate docs](crate).
///
/// Cheap to clone (`Arc` inside); clones share the same engine and
/// subscriber registry.
#[derive(Clone)]
pub struct Broker {
    inner: Arc<BrokerInner>,
}

impl Broker {
    /// Starts configuring a broker.
    pub fn builder() -> BrokerBuilder {
        BrokerBuilder::default()
    }

    /// Registers a subscription written in the subscription language
    /// and returns the handle notifications arrive on.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::Parse`] for malformed text and
    /// [`BrokerError::Subscribe`] when the engine refuses the
    /// expression (e.g. a canonical engine hitting its DNF limit).
    pub fn subscribe(&self, expression: &str) -> Result<Subscription, BrokerError> {
        self.subscribe_expr(&Expr::parse(expression)?)
    }

    /// Registers an already-parsed subscription.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::Subscribe`] when the engine refuses it.
    pub fn subscribe_expr(&self, expr: &Expr) -> Result<Subscription, BrokerError> {
        // Round-robin placement; only the chosen shard is write-locked,
        // so registration never stalls matching on the other shards.
        // The cursor advances only on success — like
        // `ShardedEngine::subscribe` — so rejected expressions neither
        // skew placement nor break the arrival-order ↔ global-id
        // alignment (concurrent racing subscribers may target the same
        // shard; ids stay unique because locals are engine-assigned).
        let shard = self.inner.next_shard.load(Ordering::Relaxed) % self.shard_count();
        let local = self.inner.shards[shard].write().subscribe(expr)?;
        self.inner.next_shard.fetch_add(1, Ordering::Relaxed);
        let id = self.inner.router.global(shard, local);
        let (tx, rx) = self.inner.policy.channel();
        self.inner.senders.write().insert(id, tx);
        self.inner
            .stats
            .subscriptions_created
            .fetch_add(1, Ordering::Relaxed);
        Ok(Subscription::new(id, rx, Arc::downgrade(&self.inner)))
    }

    /// Removes a subscription by id (handles also unsubscribe on drop).
    /// Returns whether it was registered.
    pub fn unsubscribe(&self, id: SubscriptionId) -> bool {
        self.inner.unsubscribe(id)
    }

    /// Publishes an event: matches it against every subscription and
    /// queues notifications to the matching subscribers. Returns the
    /// number of notifications delivered.
    ///
    /// Matching visits each shard under that shard's **read** lock with
    /// a thread-local [`MatchScratch`], so concurrent publishers match
    /// in parallel and a write-locked shard (a subscription in
    /// progress) delays only its own shard's portion of the match. All
    /// locks are released before delivery; the thread-local borrow
    /// covers only matching. The matched buffer is reused across
    /// publishes on the same thread — the steady-state publish path
    /// allocates only the `Arc` around the event.
    ///
    /// Subscribers found disconnected (handle dropped without
    /// unsubscribe — possible when the handle's broker reference was
    /// already gone) are pruned.
    pub fn publish(&self, event: Event) -> usize {
        // The matched ids are swapped out of the thread-local state so
        // the RefCell borrow ends before delivery (which takes the
        // sender-map lock and may re-enter the broker to prune dead
        // subscribers).
        let matched = PUBLISH_STATE.with(|cell| {
            let state = &mut *cell.borrow_mut();
            let mut matched = std::mem::take(&mut state.matched);
            matched.clear();
            self.inner
                .match_into(&event, &mut state.scratch, &mut matched);
            matched
        });
        self.inner
            .stats
            .events_published
            .fetch_add(1, Ordering::Relaxed);
        let delivered = self.deliver_matched(event, &matched);
        // Return the buffer's capacity to the thread for the next publish.
        PUBLISH_STATE.with(|cell| cell.borrow_mut().matched = matched);
        delivered
    }

    /// Publishes a batch of events — the amortised hot path. Returns
    /// the total number of notifications delivered, and delivers
    /// exactly the same notifications, in the same per-subscriber
    /// order, as the equivalent sequence of [`Broker::publish`] calls.
    ///
    /// Compared to that sequence, the batch acquires each shard's read
    /// lock **once** (matching all events against a shard while it is
    /// hot in cache), reuses the thread-local scratch across the whole
    /// batch, and takes the sender-map read lock once for all
    /// deliveries.
    pub fn publish_batch(&self, events: &[Event]) -> usize {
        if events.is_empty() {
            return 0;
        }
        // Phase A: match every event against every shard, bucketing
        // matched global ids per event. Shard-major order amortises
        // lock acquisitions; buckets keep delivery event-major so
        // per-subscriber notification order equals the sequential one.
        let buckets = PUBLISH_STATE.with(|cell| {
            let state = &mut *cell.borrow_mut();
            let mut buckets = std::mem::take(&mut state.buckets);
            buckets.iter_mut().for_each(Vec::clear);
            if buckets.len() < events.len() {
                // Grow to the high-water batch length, never shrink:
                // a short batch must not free the longer tail's
                // capacity (everything zips against `events`, so
                // extra cleared buckets are simply ignored).
                buckets.resize_with(events.len(), Vec::new);
            }
            for (s, lock) in self.inner.shards.iter().enumerate() {
                let engine = lock.read();
                for (event, bucket) in events.iter().zip(&mut buckets) {
                    engine.match_event_into(event, &mut state.scratch);
                    bucket.extend(
                        state
                            .scratch
                            .matched()
                            .iter()
                            .map(|&l| self.inner.router.global(s, l)),
                    );
                }
            }
            buckets
        });
        self.inner
            .stats
            .events_published
            .fetch_add(events.len() as u64, Ordering::Relaxed);

        // Phase B: delivery, outside the scratch borrow and all engine
        // locks, under one sender-map read lock for the whole batch.
        let mut delivered = 0usize;
        let mut dead: Vec<SubscriptionId> = Vec::new();
        {
            let senders = self.inner.senders.read();
            for (event, matched) in events.iter().zip(&buckets) {
                if matched.is_empty() {
                    continue;
                }
                let event = Arc::new(event.clone());
                delivered += self.deliver_locked(&senders, &event, matched, &mut dead);
            }
        }
        self.prune_dead(dead);
        self.inner
            .stats
            .notifications_delivered
            .fetch_add(delivered as u64, Ordering::Relaxed);
        PUBLISH_STATE.with(|cell| cell.borrow_mut().buckets = buckets);
        delivered
    }

    /// Queues `event` to the subscribers in `matched`.
    fn deliver_matched(&self, event: Event, matched: &[SubscriptionId]) -> usize {
        if matched.is_empty() {
            return 0;
        }
        let event = Arc::new(event);
        let mut dead: Vec<SubscriptionId> = Vec::new();
        let delivered = {
            let senders = self.inner.senders.read();
            self.deliver_locked(&senders, &event, matched, &mut dead)
        };
        self.prune_dead(dead);
        self.inner
            .stats
            .notifications_delivered
            .fetch_add(delivered as u64, Ordering::Relaxed);
        delivered
    }

    /// Delivery core: queues `event` to `matched` under an
    /// already-held sender-map lock, collecting disconnected
    /// subscribers into `dead` for pruning after the lock is released.
    fn deliver_locked(
        &self,
        senders: &HashMap<SubscriptionId, Sender<Arc<Event>>>,
        event: &Arc<Event>,
        matched: &[SubscriptionId],
        dead: &mut Vec<SubscriptionId>,
    ) -> usize {
        let mut delivered = 0usize;
        for id in matched {
            let Some(sender) = senders.get(id) else {
                continue;
            };
            match self.inner.policy.deliver(sender, Arc::clone(event)) {
                Ok(true) => delivered += 1,
                Ok(false) => {
                    self.inner
                        .stats
                        .notifications_dropped
                        .fetch_add(1, Ordering::Relaxed);
                }
                Err(()) => dead.push(*id),
            }
        }
        delivered
    }

    /// Unsubscribes disconnected subscribers found during delivery
    /// (idempotent: batch delivery may report one subscriber several
    /// times).
    fn prune_dead(&self, dead: Vec<SubscriptionId>) {
        for id in dead {
            self.inner.unsubscribe(id);
        }
    }

    /// A cloneable publishing handle for producer threads.
    pub fn publisher(&self) -> Publisher {
        Publisher {
            broker: self.clone(),
        }
    }

    /// Number of live subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.inner.senders.read().len()
    }

    /// Number of engine shards subscriptions are partitioned across.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// The engines' memory breakdown, summed across shards.
    pub fn memory_usage(&self) -> MemoryUsage {
        self.inner
            .shards
            .iter()
            .map(|lock| lock.read().memory_usage())
            .fold(MemoryUsage::default(), |a, b| a + b)
    }

    /// Which engine kind the broker runs (of the first shard, when
    /// heterogeneous engines were supplied).
    pub fn engine_kind(&self) -> EngineKind {
        self.inner.shards[0].read().kind()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> BrokerStats {
        let s = &self.inner.stats;
        BrokerStats {
            events_published: s.events_published.load(Ordering::Relaxed),
            notifications_delivered: s.notifications_delivered.load(Ordering::Relaxed),
            notifications_dropped: s.notifications_dropped.load(Ordering::Relaxed),
            subscriptions_created: s.subscriptions_created.load(Ordering::Relaxed),
            subscriptions_removed: s.subscriptions_removed.load(Ordering::Relaxed),
        }
    }
}

impl fmt::Debug for Broker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Broker")
            .field("engine", &self.engine_kind())
            .field("subscriptions", &self.subscription_count())
            .finish()
    }
}

/// A cloneable handle for publishing from producer threads.
///
/// # Examples
///
/// ```
/// use boolmatch_broker::Broker;
/// use boolmatch_types::Event;
///
/// let broker = Broker::builder().build();
/// let publisher = broker.publisher();
/// std::thread::spawn(move || {
///     publisher.publish(Event::builder().attr("n", 1_i64).build());
/// })
/// .join()
/// .unwrap();
/// ```
#[derive(Clone, Debug)]
pub struct Publisher {
    broker: Broker,
}

impl Publisher {
    /// Publishes an event; see [`Broker::publish`].
    pub fn publish(&self, event: Event) -> usize {
        self.broker.publish(event)
    }

    /// Publishes a batch; see [`Broker::publish_batch`].
    pub fn publish_batch(&self, events: &[Event]) -> usize {
        self.broker.publish_batch(events)
    }
}

/// Configures and builds a [`Broker`].
#[derive(Default)]
pub struct BrokerBuilder {
    kind: Option<EngineKind>,
    custom: Option<Vec<BoxedEngine>>,
    /// 0 means "not set" and resolves to 1.
    shards: usize,
    policy: DeliveryPolicy,
}

impl fmt::Debug for BrokerBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BrokerBuilder")
            .field("kind", &self.kind)
            .field("custom", &self.custom.as_ref().map(|e| e.len()))
            .field("shards", &self.shards.max(1))
            .field("policy", &self.policy)
            .finish()
    }
}

impl BrokerBuilder {
    /// Selects the matching engine (default:
    /// [`EngineKind::NonCanonical`]).
    #[must_use]
    pub fn engine(mut self, kind: EngineKind) -> Self {
        self.kind = Some(kind);
        self
    }

    /// Partitions subscriptions across `n` engine shards, each behind
    /// its own lock (default: 1, which is behaviourally identical to an
    /// unsharded broker). More shards mean subscription churn blocks a
    /// smaller slice of concurrent matching and smaller per-shard
    /// phase-2 state; see the `shard_scaling` bench.
    ///
    /// Ignored when [`BrokerBuilder::engine_instances`] supplies
    /// pre-built engines (the instance count is the shard count).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn shards(mut self, n: usize) -> Self {
        assert!(n > 0, "a broker needs at least one engine shard");
        self.shards = n;
        self
    }

    /// Supplies a single pre-built (possibly custom) engine instead of
    /// an [`EngineKind`]; takes precedence over
    /// [`BrokerBuilder::engine`] and [`BrokerBuilder::shards`]. Useful
    /// for non-default engine configurations and for instrumented
    /// engines in tests.
    #[must_use]
    pub fn engine_instance(self, engine: BoxedEngine) -> Self {
        self.engine_instances(vec![engine])
    }

    /// Supplies one pre-built engine per shard (shard `i` runs
    /// `engines[i]`); takes precedence over [`BrokerBuilder::engine`]
    /// and [`BrokerBuilder::shards`].
    ///
    /// # Panics
    ///
    /// Panics if `engines` is empty.
    #[must_use]
    pub fn engine_instances(mut self, engines: Vec<BoxedEngine>) -> Self {
        assert!(
            !engines.is_empty(),
            "a broker needs at least one engine shard"
        );
        self.custom = Some(engines);
        self
    }

    /// Sets the delivery policy (default:
    /// [`DeliveryPolicy::Unbounded`]).
    #[must_use]
    pub fn delivery(mut self, policy: DeliveryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Builds the broker.
    pub fn build(self) -> Broker {
        let engines = self.custom.unwrap_or_else(|| {
            let kind = self.kind.unwrap_or(EngineKind::NonCanonical);
            (0..self.shards.max(1)).map(|_| kind.build()).collect()
        });
        let router = ShardRouter::new(engines.len());
        Broker {
            inner: Arc::new(BrokerInner {
                shards: engines.into_iter().map(RwLock::new).collect(),
                router,
                next_shard: AtomicUsize::new(0),
                senders: RwLock::new(HashMap::new()),
                policy: self.policy,
                stats: AtomicStats::default(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(pairs: &[(&str, i64)]) -> Event {
        Event::from_pairs(pairs.iter().map(|(n, v)| (*n, *v)))
    }

    #[test]
    fn subscribe_publish_receive() {
        let broker = Broker::builder().build();
        let sub = broker.subscribe("a = 1 and b = 2").unwrap();
        assert_eq!(broker.publish(ev(&[("a", 1), ("b", 2)])), 1);
        assert_eq!(broker.publish(ev(&[("a", 1)])), 0);
        let got = sub.try_recv().unwrap();
        assert_eq!(got.get("b"), Some(&2_i64.into()));
        assert!(sub.try_recv().is_none());
    }

    #[test]
    fn every_engine_kind_works() {
        for kind in EngineKind::ALL {
            let broker = Broker::builder().engine(kind).build();
            assert_eq!(broker.engine_kind(), kind);
            let sub = broker.subscribe("(a = 1 or b = 2) and c = 3").unwrap();
            assert_eq!(broker.publish(ev(&[("b", 2), ("c", 3)])), 1);
            assert!(sub.try_recv().is_some());
        }
    }

    #[test]
    fn parse_errors_surface() {
        let broker = Broker::builder().build();
        assert!(matches!(
            broker.subscribe("a >"),
            Err(BrokerError::Parse(_))
        ));
    }

    #[test]
    fn explicit_unsubscribe_stops_delivery() {
        let broker = Broker::builder().build();
        let sub = broker.subscribe("a = 1").unwrap();
        let id = sub.id();
        assert!(broker.unsubscribe(id));
        assert!(!broker.unsubscribe(id));
        assert_eq!(broker.publish(ev(&[("a", 1)])), 0);
        assert_eq!(broker.subscription_count(), 0);
    }

    #[test]
    fn handle_drop_unsubscribes() {
        let broker = Broker::builder().build();
        {
            let _sub = broker.subscribe("a = 1").unwrap();
            assert_eq!(broker.subscription_count(), 1);
        }
        assert_eq!(broker.subscription_count(), 0);
        assert_eq!(broker.publish(ev(&[("a", 1)])), 0);
        let stats = broker.stats();
        assert_eq!(stats.subscriptions_created, 1);
        assert_eq!(stats.subscriptions_removed, 1);
    }

    #[test]
    fn drop_newest_policy_counts_drops() {
        let broker = Broker::builder()
            .delivery(DeliveryPolicy::DropNewest { capacity: 1 })
            .build();
        let sub = broker.subscribe("a = 1").unwrap();
        assert_eq!(broker.publish(ev(&[("a", 1)])), 1);
        assert_eq!(broker.publish(ev(&[("a", 1)])), 0); // queue full
        assert_eq!(broker.stats().notifications_dropped, 1);
        assert!(sub.try_recv().is_some());
        assert_eq!(broker.publish(ev(&[("a", 1)])), 1);
    }

    #[test]
    fn fanout_to_many_subscribers() {
        let broker = Broker::builder().build();
        let subs: Vec<_> = (0..20)
            .map(|_| broker.subscribe("tick = 1").unwrap())
            .collect();
        assert_eq!(broker.publish(ev(&[("tick", 1)])), 20);
        for sub in &subs {
            assert!(sub.try_recv().is_some());
        }
    }

    #[test]
    fn concurrent_publishers_and_subscribers() {
        let broker = Broker::builder().build();
        let subs: Vec<_> = (0..8)
            .map(|i| broker.subscribe(&format!("topic = {i}")).unwrap())
            .collect();
        let mut handles = Vec::new();
        for t in 0..4 {
            let publisher = broker.publisher();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    publisher.publish(Event::builder().attr("topic", ((t + i) % 8) as i64).build());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total: usize = subs.iter().map(|s| s.drain().len()).sum();
        assert_eq!(total, 400);
        assert_eq!(broker.stats().events_published, 400);
        assert_eq!(broker.stats().notifications_delivered, 400);
    }

    #[test]
    fn stats_snapshot_is_consistent() {
        let broker = Broker::builder().build();
        let _sub = broker.subscribe("a = 1").unwrap();
        broker.publish(ev(&[("a", 1)]));
        broker.publish(ev(&[("a", 2)]));
        let s = broker.stats();
        assert_eq!(s.events_published, 2);
        assert_eq!(s.notifications_delivered, 1);
        assert_eq!(s.subscriptions_created, 1);
    }

    #[test]
    fn memory_usage_is_exposed() {
        let broker = Broker::builder().build();
        let _sub = broker.subscribe("(a = 1 or b = 2) and c = 3").unwrap();
        assert!(broker.memory_usage().total() > 0);
    }

    #[test]
    fn default_broker_has_one_shard() {
        let broker = Broker::builder().build();
        assert_eq!(broker.shard_count(), 1);
        assert_eq!(Broker::builder().shards(1).build().shard_count(), 1);
        assert_eq!(Broker::builder().shards(4).build().shard_count(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one engine shard")]
    fn zero_shards_panics() {
        let _ = Broker::builder().shards(0);
    }

    #[test]
    fn sharded_broker_delivers_like_unsharded() {
        for kind in EngineKind::ALL {
            for shards in [1usize, 3, 8] {
                let flat = Broker::builder().engine(kind).build();
                let sharded = Broker::builder().engine(kind).shards(shards).build();
                let exprs: Vec<String> = (0..20)
                    .map(|i| format!("(group = {} or boost = 1) and tick >= {}", i % 5, i))
                    .collect();
                let flat_subs: Vec<_> = exprs.iter().map(|e| flat.subscribe(e).unwrap()).collect();
                let sharded_subs: Vec<_> = exprs
                    .iter()
                    .map(|e| sharded.subscribe(e).unwrap())
                    .collect();
                // Round-robin + stride routing preserves arrival-order ids.
                for (a, b) in flat_subs.iter().zip(&sharded_subs) {
                    assert_eq!(a.id(), b.id());
                }
                for t in 0..30 {
                    let event = ev(&[("group", t % 5), ("tick", t * 2)]);
                    assert_eq!(
                        flat.publish(event.clone()),
                        sharded.publish(event),
                        "kind={kind} shards={shards} t={t}"
                    );
                }
                for (i, (a, b)) in flat_subs.iter().zip(&sharded_subs).enumerate() {
                    assert_eq!(a.drain().len(), b.drain().len(), "sub {i} on {kind}");
                }
            }
        }
    }

    #[test]
    fn sharded_unsubscribe_routes_to_owning_shard() {
        let broker = Broker::builder().shards(3).build();
        let subs: Vec<_> = (0..9)
            .map(|i| broker.subscribe(&format!("a = {i}")).unwrap())
            .collect();
        let id = subs[4].id();
        assert!(broker.unsubscribe(id));
        assert!(!broker.unsubscribe(id));
        assert_eq!(broker.subscription_count(), 8);
        assert_eq!(broker.publish(ev(&[("a", 4)])), 0);
        assert_eq!(broker.publish(ev(&[("a", 5)])), 1);
    }

    #[test]
    fn rejected_subscription_does_not_skew_placement() {
        // 2^17 DNF conjunctions: over the counting engine's default
        // 65,536 limit, so registration is rejected.
        let huge: String = (0..17)
            .map(|i| format!("(a{i} = 1 or b{i} = 1)"))
            .collect::<Vec<_>>()
            .join(" and ");
        let flat = Broker::builder().engine(EngineKind::Counting).build();
        let sharded = Broker::builder()
            .engine(EngineKind::Counting)
            .shards(2)
            .build();
        for broker in [&flat, &sharded] {
            let a = broker.subscribe("x = 1").unwrap();
            assert!(matches!(
                broker.subscribe(&huge),
                Err(BrokerError::Subscribe(_))
            ));
            let c = broker.subscribe("x = 2").unwrap();
            // The cursor must not advance on rejection: arrival-order
            // ids stay aligned with an unsharded broker's.
            assert_eq!(a.id().index(), 0);
            assert_eq!(c.id().index(), 1);
        }
    }

    #[test]
    fn publish_batch_equals_publish_sequence() {
        for shards in [1usize, 4] {
            let seq = Broker::builder().shards(shards).build();
            let batch = Broker::builder().shards(shards).build();
            let exprs = ["a >= 3", "a = 5 or b = 1", "a < 0"];
            let seq_subs: Vec<_> = exprs.iter().map(|e| seq.subscribe(e).unwrap()).collect();
            let batch_subs: Vec<_> = exprs.iter().map(|e| batch.subscribe(e).unwrap()).collect();
            let events: Vec<Event> = (0..10).map(|i| ev(&[("a", i), ("b", i % 2)])).collect();

            let seq_delivered: usize = events.iter().map(|e| seq.publish(e.clone())).sum();
            let batch_delivered = batch.publish_batch(&events);
            assert_eq!(seq_delivered, batch_delivered, "shards={shards}");
            assert_eq!(seq.stats().events_published, batch.stats().events_published);

            // Same notifications, in the same per-subscriber order.
            for (s, b) in seq_subs.iter().zip(&batch_subs) {
                let sn: Vec<_> = s.drain().iter().map(|e| e.get("a").cloned()).collect();
                let bn: Vec<_> = b.drain().iter().map(|e| e.get("a").cloned()).collect();
                assert_eq!(sn, bn, "shards={shards}");
            }
        }
    }

    #[test]
    fn publish_batch_empty_and_repeated() {
        let broker = Broker::builder().shards(2).build();
        assert_eq!(broker.publish_batch(&[]), 0);
        let sub = broker.subscribe("a = 1").unwrap();
        // Repeated batches reuse the thread-local buckets (shrinking
        // and growing the batch length between calls).
        assert_eq!(broker.publish_batch(&[ev(&[("a", 1)]), ev(&[("a", 2)])]), 1);
        assert_eq!(broker.publish_batch(&[ev(&[("a", 1)])]), 1);
        assert_eq!(
            broker.publish_batch(&[ev(&[("a", 1)]), ev(&[("a", 1)]), ev(&[("a", 3)])]),
            2
        );
        assert_eq!(sub.drain().len(), 4);
        assert_eq!(broker.stats().events_published, 6);
    }

    #[test]
    fn heterogeneous_engine_instances() {
        let broker = Broker::builder()
            .engine_instances(vec![
                EngineKind::NonCanonical.build(),
                EngineKind::Counting.build(),
            ])
            .build();
        assert_eq!(broker.shard_count(), 2);
        assert_eq!(broker.engine_kind(), EngineKind::NonCanonical);
        let a = broker.subscribe("a = 1").unwrap(); // shard 0
        let b = broker.subscribe("a = 2").unwrap(); // shard 1
        assert_eq!(broker.publish(ev(&[("a", 1)])), 1);
        assert_eq!(broker.publish(ev(&[("a", 2)])), 1);
        assert_eq!(a.drain().len(), 1);
        assert_eq!(b.drain().len(), 1);
        assert!(broker.memory_usage().total() > 0);
    }

    #[test]
    fn trim_publish_scratch_keeps_publishing_correct() {
        let broker = Broker::builder().build();
        let sub = broker.subscribe("a = 1").unwrap();
        assert_eq!(broker.publish(ev(&[("a", 1)])), 1);
        // Trimming between publishes releases the thread's buffers; the
        // next publish re-grows them and still matches correctly.
        trim_publish_scratch();
        assert_eq!(broker.publish(ev(&[("a", 1)])), 1);
        assert_eq!(sub.drain().len(), 2);
    }
}
