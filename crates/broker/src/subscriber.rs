//! Subscriber-side notification handle.

use std::fmt;
use std::sync::{Arc, Weak};
use std::time::Duration;

use boolmatch_core::SubscriptionId;
use boolmatch_types::Event;

use crate::broker::BrokerInner;
use crate::delivery::{DeliveryReceiver, NotifyQueue, SubscriberLag};

/// A live subscription: the receiving end of the notification queue.
///
/// Dropping the handle unsubscribes from the broker, so a subscription
/// lives exactly as long as someone can receive its notifications.
///
/// # Examples
///
/// ```
/// use boolmatch_broker::Broker;
/// use boolmatch_types::Event;
///
/// let broker = Broker::builder().build();
/// let sub = broker.subscribe("kind = \"alert\"")?;
/// broker.publish(Event::builder().attr("kind", "alert").build());
/// let notification = sub.try_recv().expect("one notification queued");
/// assert!(notification.contains("kind"));
/// # Ok::<(), boolmatch_broker::BrokerError>(())
/// ```
pub struct Subscription {
    id: SubscriptionId,
    queue: Arc<NotifyQueue>,
    broker: Weak<BrokerInner>,
    /// Cleared by [`Subscription::detach`] so Drop neither
    /// unsubscribes nor releases the queue's receiver count (the
    /// returned [`DeliveryReceiver`] took it over).
    owns_receiver: bool,
}

impl Subscription {
    pub(crate) fn new(
        id: SubscriptionId,
        queue: Arc<NotifyQueue>,
        broker: Weak<BrokerInner>,
    ) -> Self {
        Subscription {
            id,
            queue,
            broker,
            owns_receiver: true,
        }
    }

    /// The engine-assigned subscription id.
    pub fn id(&self) -> SubscriptionId {
        self.id
    }

    /// Takes the next queued notification without blocking.
    pub fn try_recv(&self) -> Option<Arc<Event>> {
        self.queue.try_recv()
    }

    /// Blocks until a notification arrives or the broker goes away.
    pub fn recv(&self) -> Option<Arc<Event>> {
        self.queue.recv()
    }

    /// Blocks up to `timeout`; `None` on timeout or disconnect.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Arc<Event>> {
        self.queue.recv_timeout(timeout)
    }

    /// Drains everything currently queued.
    pub fn drain(&self) -> Vec<Arc<Event>> {
        self.queue.drain()
    }

    /// Number of notifications currently queued.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// This subscriber's lag snapshot: queue depth, lifetime
    /// enqueued/dropped counts, and quarantine status.
    pub fn lag(&self) -> SubscriberLag {
        self.queue.lag()
    }

    /// Detaches the handle from the broker *without* unsubscribing:
    /// matching continues, notifications accumulate in the queue, and
    /// the subscription must later be removed via
    /// [`crate::Broker::unsubscribe`]. Returns the receiving handle.
    pub fn detach(mut self) -> DeliveryReceiver {
        self.broker = Weak::new();
        let receiver = DeliveryReceiver::new(Arc::clone(&self.queue));
        // Hand the subscription's receiver slot to the new handle:
        // Drop runs but neither unsubscribes nor closes the queue.
        self.owns_receiver = false;
        self.queue.drop_receiver();
        receiver
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        if self.owns_receiver {
            self.queue.drop_receiver();
        }
        if let Some(broker) = self.broker.upgrade() {
            broker.unsubscribe(self.id);
        }
    }
}

impl fmt::Debug for Subscription {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Subscription")
            .field("id", &self.id)
            .field("queued", &self.queued())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Broker;

    fn ev(v: i64) -> Event {
        Event::builder().attr("a", v).build()
    }

    #[test]
    fn try_recv_and_drain() {
        let broker = Broker::builder().build();
        let sub = broker.subscribe("a >= 0").unwrap();
        for i in 0..5 {
            broker.publish(ev(i));
        }
        assert_eq!(sub.queued(), 5);
        assert!(sub.try_recv().is_some());
        assert_eq!(sub.drain().len(), 4);
        assert_eq!(sub.queued(), 0);
    }

    #[test]
    fn recv_timeout_times_out() {
        let broker = Broker::builder().build();
        let sub = broker.subscribe("a = 1").unwrap();
        assert!(sub.recv_timeout(Duration::from_millis(10)).is_none());
    }

    #[test]
    fn recv_blocks_until_publish() {
        let broker = Broker::builder().build();
        let sub = broker.subscribe("a = 1").unwrap();
        let publisher = broker.publisher();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            publisher.publish(ev(1));
        });
        let got = sub.recv().expect("notification arrives");
        assert_eq!(got.get("a"), Some(&1_i64.into()));
        handle.join().unwrap();
    }

    #[test]
    fn detach_keeps_subscription_alive() {
        let broker = Broker::builder().build();
        let sub = broker.subscribe("a = 1").unwrap();
        let id = sub.id();
        let rx = sub.detach();
        assert_eq!(broker.subscription_count(), 1);
        broker.publish(ev(1));
        assert_eq!(rx.len(), 1);
        assert!(broker.unsubscribe(id));
    }

    #[test]
    fn lag_reports_queue_depth_and_drops() {
        let broker = Broker::builder().build();
        let sub = broker
            .subscribe_with_policy("a = 1", crate::DeliveryPolicy::DropNewest { capacity: 2 })
            .unwrap();
        for _ in 0..5 {
            broker.publish(ev(1));
        }
        let lag = sub.lag();
        assert_eq!((lag.queued, lag.enqueued, lag.dropped), (2, 2, 3));
        assert!(!lag.quarantined);
    }

    #[test]
    fn debug_shows_queue_depth() {
        let broker = Broker::builder().build();
        let sub = broker.subscribe("a = 1").unwrap();
        broker.publish(ev(1));
        let dbg = format!("{sub:?}");
        assert!(dbg.contains("queued: 1"));
    }
}
