//! A thread-based publish/subscribe broker built on the `boolmatch`
//! matching engines.
//!
//! The reproduced paper is about the *matching* core of a
//! publish/subscribe system; this crate wraps that core in the service
//! shell a downstream user actually runs: subscriber registration with
//! delivery channels, concurrent publishers, engine selection, delivery
//! policies and operational counters.
//!
//! # Threading model
//!
//! The engine sits behind a [`parking_lot::RwLock`], and matching is a
//! **shared-read** operation: `publish` takes only the *read* lock and
//! brings a thread-local [`boolmatch_core::MatchScratch`] for all
//! per-event mutable state, so any number of publisher threads match
//! concurrently — matching throughput scales with cores (see the
//! `concurrent_publish` bench). Only `subscribe`/`unsubscribe` take
//! the write lock. Delivery happens outside the engine lock; events
//! are reference counted, so fan-out to thousands of subscribers
//! copies pointers, not payloads.
//!
//! Scratch ownership rules: the scratch is per *publisher thread*
//! (`thread_local!`), never shared concurrently, and self-restoring
//! between events, so one thread may publish through any number of
//! brokers and engine kinds. The matched-id buffer inside it is reused
//! across publishes — the steady-state publish path performs no
//! allocation beyond the `Arc` around the event. The scratch grows to
//! the largest engine a thread has matched against and stays there;
//! long-lived worker threads can release it with
//! [`trim_publish_scratch`].
//!
//! # Examples
//!
//! ```
//! use boolmatch_broker::Broker;
//! use boolmatch_core::EngineKind;
//! use boolmatch_types::Event;
//!
//! let broker = Broker::builder().engine(EngineKind::NonCanonical).build();
//! let tickers = broker.subscribe("symbol = \"IBM\" and price > 80.0")?;
//!
//! let delivered = broker.publish(
//!     Event::builder().attr("symbol", "IBM").attr("price", 84.5).build(),
//! );
//! assert_eq!(delivered, 1);
//! assert_eq!(tickers.try_recv().unwrap().get("symbol"), Some(&"IBM".into()));
//! # Ok::<(), boolmatch_broker::BrokerError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod broker;
mod delivery;
mod subscriber;

pub use broker::{
    trim_publish_scratch, Broker, BrokerBuilder, BrokerError, BrokerStats, Publisher,
};
pub use delivery::DeliveryPolicy;
pub use subscriber::Subscription;
