//! A thread-based publish/subscribe broker built on the `boolmatch`
//! matching engines.
//!
//! The reproduced paper is about the *matching* core of a
//! publish/subscribe system; this crate wraps that core in the service
//! shell a downstream user actually runs: subscriber registration with
//! delivery channels, concurrent publishers, engine selection, delivery
//! policies and operational counters.
//!
//! # Threading model
//!
//! Subscriptions are partitioned across **engine shards**
//! ([`Broker::builder`]`.shards(n)`, default 1; resizable live with
//! [`Broker::resize`]), each behind its own [`parking_lot::RwLock`].
//! Placement is **load-aware** (least-loaded shard, round-robin
//! tie-break) and recorded in a write-side
//! [`boolmatch_core::SubscriptionDirectory`] — touched only by
//! subscribe/unsubscribe/migrate/resize — while each shard owns the
//! read-side [`boolmatch_core::ShardTranslation`] map matching uses to
//! translate its matched local ids, under the shard lock it already
//! holds. A subscription's id is therefore stable while its placement
//! is not: [`Broker::rebalance`] / [`Broker::migrate`] /
//! [`Broker::rebalance_by_match_frequency`] live-migrate subscriptions
//! between shards (write-locking only the two shards involved;
//! matching continues everywhere else) without touching any id, handle
//! or delivery stream, and
//! [`BrokerBuilder::background_rebalance`] runs the same migration
//! continuously in small chunks from a parked thread. Matching is a
//! **shared-read** operation: `publish` visits each shard under that
//! shard's *read* lock with a thread-local
//! [`boolmatch_core::MatchScratch`] for all per-event mutable state,
//! so any number of publisher threads match concurrently — matching
//! throughput scales with cores (see the `concurrent_publish` and
//! `shard_scaling` benches) and **no broker-global lock sits on the
//! steady-state matching path** (the placement-directory write lock
//! can be held indefinitely without delaying a single publish — proven
//! in `tests/hot_path.rs`; delivery afterwards takes the sender-map
//! read lock just long enough to snapshot the matched subscribers'
//! queues). Only `subscribe`/`unsubscribe` take a write
//! lock, and only on the one shard that owns the subscription:
//! registration churn stalls `1/n` of matching instead of all of it
//! (proven deterministically in `tests/shard_concurrency.rs`).
//! Delivery happens outside all engine locks; events are reference
//! counted, so fan-out to thousands of subscribers copies pointers,
//! not payloads. [`Broker::publish_batch`] takes `Arc<Event>`s — one
//! allocation per event, shared across matching and delivery — and
//! amortises lock acquisition, scratch reuse and the sender-map lookup
//! across a whole batch of events.
//!
//! # The delivery tier
//!
//! A publish **enqueues and returns**: each subscriber owns a bounded
//! ring-buffer [notification queue](DeliveryPolicy) with lag counters
//! ([`SubscriberLag`]), so a slow — or completely stalled — consumer
//! can never block a publisher, stall another subscriber, or stall an
//! unsubscribe; its damage is bounded by its own queue capacity. What
//! a *full* queue does is the subscriber's [`DeliveryPolicy`]
//! (broker-wide default via [`BrokerBuilder::delivery`], per-subscriber
//! via [`Broker::subscribe_with_policy`]): grow without bound, shed
//! newest or oldest, disconnect the subscriber, or apply bounded
//! backpressure ([`DeliveryPolicy::Block`] — the publisher waits up to
//! a timeout on that one queue, holding no broker lock). Queues are
//! drained by pulling on the [`Subscription`] handle or, with
//! [`Broker::subscribe_consumer`], by a lazily spawned delivery worker
//! pool that invokes a callback per notification with per-subscriber
//! panic isolation. A [`quarantine`](BrokerBuilder::quarantine) tier
//! on top demotes consumers whose lag stays over a watermark — queue
//! capped (or auto-disconnected) until they drain — driven manually
//! with [`Broker::delivery_maintenance_tick`] or autonomously with
//! [`BrokerBuilder::delivery_maintenance`].
//!
//! Multi-shard brokers additionally carry a **parallel publish
//! pipeline**: past [`BrokerBuilder::parallel_threshold`] live
//! subscriptions, one publish fans its per-shard matching out over a
//! persistent [`boolmatch_core::WorkerPool`] (threads park between
//! publishes — nothing is spawned on the hot path), each worker
//! drawing a warm scratch from a [`boolmatch_core::ScratchPool`] and
//! parking its result in a [`boolmatch_core::FanOut`] slot. The merge
//! runs in shard-index order, so the matched-id set is identical to
//! the sequential walk no matter how workers interleave; with
//! [`BrokerBuilder::shards`]`(1)` the pipeline does not exist and
//! publishing is byte-for-byte the sequential path.
//!
//! Scratch ownership rules: the scratch is per *publisher thread*
//! (`thread_local!`), never shared concurrently, and self-restoring
//! between events, so one thread may publish through any number of
//! brokers and engine kinds. The matched-id buffer inside it is reused
//! across publishes — the steady-state publish path performs no
//! allocation beyond the `Arc` around the event. The scratch grows to
//! the largest engine a thread has matched against and stays there;
//! long-lived worker threads can release it with
//! [`trim_publish_scratch`].
//!
//! # Examples
//!
//! ```
//! use boolmatch_broker::Broker;
//! use boolmatch_core::EngineKind;
//! use boolmatch_types::Event;
//!
//! let broker = Broker::builder().engine(EngineKind::NonCanonical).build();
//! let tickers = broker.subscribe("symbol = \"IBM\" and price > 80.0")?;
//!
//! let delivered = broker.publish(
//!     Event::builder().attr("symbol", "IBM").attr("price", 84.5).build(),
//! );
//! assert_eq!(delivered, 1);
//! assert_eq!(tickers.try_recv().unwrap().get("symbol"), Some(&"IBM".into()));
//! # Ok::<(), boolmatch_broker::BrokerError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod broker;
mod delivery;
mod subscriber;

pub use broker::{
    trim_publish_scratch, Broker, BrokerBuilder, BrokerError, BrokerStats, DeliveryTickReport,
    Publisher, RebalancePolicy, BACKGROUND_REBALANCE_CHUNK, DEFAULT_DELIVERY_WORKERS,
    DEFAULT_PARALLEL_THRESHOLD, DEFAULT_SCRATCH_TRIM_CAP, MATCH_FREQUENCY_SKEW_FLOOR,
};
pub use delivery::{DeliveryPolicy, DeliveryReceiver, QuarantineConfig, SubscriberLag};
pub use subscriber::Subscription;
