//! A thread-based publish/subscribe broker built on the `boolmatch`
//! matching engines.
//!
//! The reproduced paper is about the *matching* core of a
//! publish/subscribe system; this crate wraps that core in the service
//! shell a downstream user actually runs: subscriber registration with
//! delivery channels, concurrent publishers, engine selection, delivery
//! policies and operational counters.
//!
//! Threading model: the engine sits behind a [`parking_lot::RwLock`];
//! matching takes the write lock (engines keep mutable per-event
//! scratch — see [`boolmatch_core::FilterEngine`]), delivery happens
//! outside it. Events are reference counted, so fan-out to thousands of
//! subscribers copies pointers, not payloads.
//!
//! # Examples
//!
//! ```
//! use boolmatch_broker::Broker;
//! use boolmatch_core::EngineKind;
//! use boolmatch_types::Event;
//!
//! let broker = Broker::builder().engine(EngineKind::NonCanonical).build();
//! let tickers = broker.subscribe("symbol = \"IBM\" and price > 80.0")?;
//!
//! let delivered = broker.publish(
//!     Event::builder().attr("symbol", "IBM").attr("price", 84.5).build(),
//! );
//! assert_eq!(delivered, 1);
//! assert_eq!(tickers.try_recv().unwrap().get("symbol"), Some(&"IBM".into()));
//! # Ok::<(), boolmatch_broker::BrokerError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod broker;
mod delivery;
mod subscriber;

pub use broker::{Broker, BrokerBuilder, BrokerError, BrokerStats, Publisher};
pub use delivery::DeliveryPolicy;
pub use subscriber::Subscription;
