//! Offline shim for `criterion`: the macro/group/bencher surface the
//! workspace's benches use, backed by a plain warm-up + timed-batch
//! harness. It reports mean wall time per iteration (and throughput
//! when configured) without criterion's statistics, plots or saved
//! baselines. See `crates/shims/README.md`.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark registry and configuration root.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <substring>` filters benchmarks, criterion
        // style; option-like arguments cargo/libtest forward (e.g.
        // `--bench`) are ignored.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Returns `self`, for drop-in compatibility with criterion's
    /// command-line configuration hook.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            config: BenchConfig::default(),
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(self, &id, &BenchConfig::default(), f);
        self
    }

    fn matches(&self, full_name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| full_name.contains(f))
    }
}

#[derive(Clone)]
struct BenchConfig {
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(1_000),
            throughput: None,
        }
    }
}

/// Work-per-iteration declaration for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iterations process this many logical elements each.
    Elements(u64),
    /// Iterations process this many bytes each.
    Bytes(u64),
}

/// A benchmark identifier: function name plus parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `name/parameter`, criterion's display convention.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just the parameter (used inside groups).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { full: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { full: s }
    }
}

/// A group of benchmarks sharing configuration; created by
/// [`Criterion::benchmark_group`].
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    config: BenchConfig,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the shim sizes batches by time, not
    /// by a sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up = d;
        self
    }

    /// Sets the measurement duration.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement = d;
        self
    }

    /// Declares per-iteration work for events/sec reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.config.throughput = Some(t);
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().full);
        run_one(self.criterion, &full, &self.config, f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (prints nothing extra on this shim).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; runs the measured routine.
pub struct Bencher<'a> {
    config: &'a BenchConfig,
    /// (total duration, iterations) of the measurement phase.
    result: Option<(Duration, u64)>,
}

impl Bencher<'_> {
    /// Times `routine`, called in batches until the measurement window
    /// is filled.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and batch-size calibration in one: run until the
        // warm-up window elapses, counting iterations.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.config.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let warm_elapsed = warm_start.elapsed().max(Duration::from_nanos(1));
        let per_iter = warm_elapsed / u32::try_from(warm_iters.max(1)).unwrap_or(u32::MAX);
        let batch = (Duration::from_millis(10).as_nanos() / per_iter.as_nanos().max(1))
            .clamp(1, 1 << 20) as u64;

        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        while total < self.config.measurement {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total += start.elapsed();
            iters += batch;
        }
        self.result = Some((total, iters));
    }

    /// Hands full timing control to the routine: `routine(n)` must
    /// execute `n` iterations and return the elapsed wall time.
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        let mut calibration_iters = 1u64;
        let mut per_iter;
        // Calibrate (doubles as warm-up): grow until one call fills a
        // noticeable fraction of the warm-up window.
        loop {
            let d = routine(calibration_iters).max(Duration::from_nanos(1));
            per_iter = d / u32::try_from(calibration_iters).unwrap_or(u32::MAX);
            if d >= self.config.warm_up / 4 || calibration_iters >= 1 << 20 {
                break;
            }
            calibration_iters *= 2;
        }
        let target = (self.config.measurement.as_nanos() / per_iter.as_nanos().max(1))
            .clamp(1, 1 << 24) as u64;
        let total = routine(target);
        self.result = Some((total, target));
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    criterion: &Criterion,
    name: &str,
    config: &BenchConfig,
    mut f: F,
) {
    if !criterion.matches(name) {
        return;
    }
    let mut bencher = Bencher {
        config,
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        Some((total, iters)) => {
            let ns = total.as_secs_f64() * 1e9 / iters as f64;
            let time = if ns >= 1e9 {
                format!("{:.3} s", ns / 1e9)
            } else if ns >= 1e6 {
                format!("{:.3} ms", ns / 1e6)
            } else if ns >= 1e3 {
                format!("{:.3} µs", ns / 1e3)
            } else {
                format!("{ns:.1} ns")
            };
            let rate = match config.throughput {
                Some(Throughput::Elements(n)) => {
                    let per_sec = n as f64 * iters as f64 / total.as_secs_f64();
                    format!("  thrpt: {:>12.0} elem/s", per_sec)
                }
                Some(Throughput::Bytes(n)) => {
                    let per_sec = n as f64 * iters as f64 / total.as_secs_f64();
                    format!("  thrpt: {:>12.0} B/s", per_sec)
                }
                None => String::new(),
            };
            println!("{name:<60} time: {time:>12}/iter  ({iters} iters){rate}");
        }
        None => println!("{name:<60} (no measurement recorded)"),
    }
}

/// Declares a function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_records_a_result() {
        let config = BenchConfig {
            warm_up: Duration::from_millis(5),
            measurement: Duration::from_millis(10),
            throughput: None,
        };
        let mut b = Bencher {
            config: &config,
            result: None,
        };
        let mut count = 0u64;
        b.iter(|| count += 1);
        let (total, iters) = b.result.expect("result recorded");
        assert!(iters > 0);
        assert!(count >= iters);
        assert!(total >= Duration::from_millis(10));
    }

    #[test]
    fn iter_custom_records_requested_iters() {
        let config = BenchConfig {
            warm_up: Duration::from_millis(2),
            measurement: Duration::from_millis(5),
            throughput: None,
        };
        let mut b = Bencher {
            config: &config,
            result: None,
        };
        b.iter_custom(|n| {
            let start = Instant::now();
            for i in 0..n {
                black_box(i);
            }
            start.elapsed().max(Duration::from_micros(50))
        });
        let (_, iters) = b.result.expect("result recorded");
        assert!(iters >= 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("alg", 32).full, "alg/32");
        assert_eq!(BenchmarkId::from_parameter(7).full, "7");
    }

    #[test]
    fn filter_matching() {
        let c = Criterion {
            filter: Some("fig3".into()),
        };
        assert!(c.matches("fig3a/counting/5000"));
        assert!(!c.matches("bptree/insert"));
        let open = Criterion { filter: None };
        assert!(open.matches("anything"));
    }
}
