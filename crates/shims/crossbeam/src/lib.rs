//! Offline shim for `crossbeam` providing the `channel` module surface
//! the workspace uses: multi-producer multi-consumer channels with
//! **clonable receivers**, bounded and unbounded variants, and
//! crossbeam's error vocabulary. Backed by `Mutex<VecDeque>` +
//! `Condvar` — correct and adequate for broker fan-out queues, though
//! without crossbeam's lock-free fast paths. See
//! `crates/shims/README.md`.

#![forbid(unsafe_code)]

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        capacity: Option<usize>,
    }

    /// The sending half; clonable across threads.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half; clonable across threads (MPMC).
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Error for [`Sender::send`]: all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error for [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded queue is at capacity.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    /// Error for [`Receiver::recv`]: channel empty and all senders gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error for [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Nothing queued right now.
        Empty,
        /// Channel empty and all senders gone.
        Disconnected,
    }

    /// Error for [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived within the timeout.
        Timeout,
        /// Channel empty and all senders gone.
        Disconnected,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Creates a channel with unlimited queueing.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a channel that holds at most `cap` queued messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            capacity,
        });
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    impl<T> Chan<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        }
    }

    impl<T> Sender<T> {
        /// Queues `value` without blocking.
        ///
        /// # Errors
        ///
        /// [`TrySendError::Full`] when a bounded queue is at capacity,
        /// [`TrySendError::Disconnected`] when every receiver is gone.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut state = self.chan.lock();
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = self.chan.capacity {
                if state.queue.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            state.queue.push_back(value);
            drop(state);
            self.chan.not_empty.notify_one();
            Ok(())
        }

        /// Queues `value`; never blocks on this shim's unbounded
        /// channels and returns [`SendError`] when every receiver is
        /// gone. On bounded channels a full queue also reports
        /// disconnection-free failure as an error (the workspace only
        /// uses [`Sender::try_send`] on bounded channels).
        ///
        /// # Errors
        ///
        /// [`SendError`] carrying the value back.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match self.try_send(value) {
                Ok(()) => Ok(()),
                Err(TrySendError::Disconnected(v)) | Err(TrySendError::Full(v)) => {
                    Err(SendError(v))
                }
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.chan.lock().queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.lock().senders += 1;
            Sender {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.chan.lock();
            state.senders -= 1;
            let none_left = state.senders == 0;
            drop(state);
            if none_left {
                // Wake blocked receivers so they observe disconnection.
                self.chan.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Takes the next message without blocking.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when nothing is queued,
        /// [`TryRecvError::Disconnected`] when additionally every
        /// sender is gone.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.chan.lock();
            match state.queue.pop_front() {
                Some(v) => Ok(v),
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks until a message arrives or every sender is gone.
        ///
        /// # Errors
        ///
        /// [`RecvError`] when the channel is empty and disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.chan.lock();
            loop {
                if let Some(v) = state.queue.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .chan
                    .not_empty
                    .wait(state)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }

        /// Blocks up to `timeout` for a message.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] or
        /// [`RecvTimeoutError::Disconnected`].
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.chan.lock();
            loop {
                if let Some(v) = state.queue.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timed_out) = self
                    .chan
                    .not_empty
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                state = guard;
            }
        }

        /// Non-blocking iterator draining whatever is currently queued.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.chan.lock().queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.lock().receivers += 1;
            Receiver {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan.lock().receivers -= 1;
        }
    }

    /// Iterator returned by [`Receiver::try_iter`].
    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.try_recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn fifo_order_and_len() {
        let (tx, rx) = unbounded();
        for i in 0..5 {
            tx.try_send(i).unwrap();
        }
        assert_eq!(rx.len(), 5);
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn bounded_reports_full() {
        let (tx, rx) = bounded(1);
        tx.try_send(1).unwrap();
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        rx.recv().unwrap();
        tx.try_send(3).unwrap();
    }

    #[test]
    fn disconnection_both_ways() {
        let (tx, rx) = unbounded::<i32>();
        drop(rx);
        assert_eq!(tx.try_send(1), Err(TrySendError::Disconnected(1)));

        let (tx, rx) = unbounded::<i32>();
        tx.try_send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn recv_timeout_wakes_on_send_and_times_out() {
        let (tx, rx) = unbounded();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            tx.try_send(42).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(42));
        t.join().unwrap();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn cloned_receivers_compete_for_messages() {
        let (tx, rx1) = unbounded();
        let rx2 = rx1.clone();
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        let a = rx1.try_recv().unwrap();
        let b = rx2.try_recv().unwrap();
        assert_eq!(a + b, 3);
        // Dropping one clone does not disconnect the channel.
        drop(rx1);
        tx.try_send(3).unwrap();
        assert_eq!(rx2.try_recv(), Ok(3));
    }

    #[test]
    fn mpmc_under_threads() {
        let (tx, rx) = unbounded();
        let mut producers = Vec::new();
        for t in 0..4 {
            let tx = tx.clone();
            producers.push(std::thread::spawn(move || {
                for i in 0..100 {
                    tx.try_send(t * 100 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut consumers = Vec::new();
        for _ in 0..2 {
            let rx = rx.clone();
            consumers.push(std::thread::spawn(move || {
                let mut got = 0usize;
                while rx.recv().is_ok() {
                    got += 1;
                }
                got
            }));
        }
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 400);
    }
}
