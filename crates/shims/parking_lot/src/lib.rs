//! Offline shim for `parking_lot`: the lock API the workspace uses
//! (including [`Condvar`] for the broker's delivery queues), backed by
//! `std::sync` with poisoning ignored (matching parking_lot's
//! non-poisoning semantics). See `crates/shims/README.md`.
//!
//! # Debug-build lockdep
//!
//! In debug builds (`cfg(debug_assertions)`) every lock can carry a
//! **named lock class** ([`RwLock::set_class`] / [`Mutex::set_class`]),
//! and each blocking acquisition is checked against a process-global
//! **acquisition-order graph**: acquiring class `B` while holding class
//! `A` records the edge `A → B`, and an acquisition that would close a
//! cycle (`B` already reaches `A`) panics with the offending chain
//! before the thread ever blocks. Same-class nesting (blocking on a
//! lock of a class the thread already holds) panics too. The entire
//! test suite therefore doubles as a continuous deadlock detector: any
//! two code paths that ever take two classed locks in opposite orders
//! fail deterministically, even when the schedules never actually
//! collide.
//!
//! The discipline encoded by the broker (see the README's hot-path
//! locking section): `maintenance` → `shard[i]` → `shard[j>i]` →
//! `directory` (directory innermost, shard locks in ascending index
//! order), with `pool`/`senders` never held across another classed
//! acquisition.
//!
//! Design notes:
//! * Unclassed locks are untracked — the instrumentation is opt-in per
//!   lock so third-party-ish callers see zero behaviour change.
//! * `try_*` acquisitions are pushed on the thread's held stack (they
//!   can be the *held* side of a deadlock) but add no ordering edges
//!   (they never block, so they cannot be the *waiting* side).
//! * Classes are process-global and interned by name: every
//!   `shard[3]` in the process is one node, so the discipline is
//!   enforced across broker instances.
//! * Release builds compile all of it out; guards are thin newtypes
//!   around the `std::sync` guards either way.

#![forbid(unsafe_code)]

use std::sync::PoisonError;

/// Debug-build lock-dependency tracking ("lockdep"); see the
/// [crate docs](crate). Active only under `cfg(debug_assertions)` —
/// the release variant of this module is an inert stub.
#[cfg(debug_assertions)]
pub mod lockdep {
    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock, PoisonError};

    /// An interned lock-class handle; obtain one via [`class`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct ClassId(u32);

    /// The process-global class registry and acquisition-order graph.
    #[derive(Default)]
    struct Graph {
        names: Vec<String>,
        ids: HashMap<String, u32>,
        /// `deps[a]` = classes observed acquired while holding `a`.
        deps: Vec<Vec<u32>>,
    }

    fn graph() -> &'static Mutex<Graph> {
        static GRAPH: OnceLock<Mutex<Graph>> = OnceLock::new();
        GRAPH.get_or_init(|| Mutex::new(Graph::default()))
    }

    fn lock_graph() -> std::sync::MutexGuard<'static, Graph> {
        // A lockdep violation panics while this mutex is held; recover
        // from the poison so later acquisitions (other tests in the
        // same process) keep being checked.
        graph().lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Whether lockdep instrumentation is compiled into this build.
    pub const fn is_active() -> bool {
        true
    }

    /// Interns `name` as a lock class. Names are process-global:
    /// every lock classed `"shard[3]"` shares one graph node.
    pub fn class(name: &str) -> ClassId {
        let mut graph = lock_graph();
        if let Some(&id) = graph.ids.get(name) {
            return ClassId(id);
        }
        let id = u32::try_from(graph.names.len()).unwrap_or_else(|_| {
            panic!("lockdep: more than u32::MAX lock classes");
        });
        graph.names.push(name.to_owned());
        graph.ids.insert(name.to_owned(), id);
        graph.deps.push(Vec::new());
        ClassId(id)
    }

    struct HeldEntry {
        class: u32,
        serial: u64,
    }

    struct ThreadState {
        held: Vec<HeldEntry>,
        next_serial: u64,
    }

    thread_local! {
        static THREAD: RefCell<ThreadState> = const {
            RefCell::new(ThreadState { held: Vec::new(), next_serial: 0 })
        };
    }

    /// How an acquisition may wait, which decides whether it can be the
    /// *waiting* side of a deadlock and therefore records order edges.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub(crate) enum Acquire {
        /// May block: checked against the order graph, records edges.
        Blocking,
        /// Never blocks (`try_*`): held-stack only, no edges.
        Try,
    }

    /// RAII token for one tracked acquisition; popping happens on drop.
    /// `None` inside means the lock was unclassed (or the acquisition
    /// deliberately untracked) — a no-op token.
    #[derive(Debug)]
    pub(crate) struct Held(Option<u64>);

    pub(crate) fn untracked() -> Held {
        Held(None)
    }

    pub(crate) fn acquire(class: Option<ClassId>, how: Acquire) -> Held {
        let Some(ClassId(class)) = class else {
            return Held(None);
        };
        THREAD.with(|state| {
            let mut state = state.borrow_mut();
            if how == Acquire::Blocking && !state.held.is_empty() {
                check_order(&state.held, class);
            }
            let serial = state.next_serial;
            state.next_serial += 1;
            state.held.push(HeldEntry { class, serial });
            Held(Some(serial))
        })
    }

    impl Drop for Held {
        fn drop(&mut self) {
            let Some(serial) = self.0 else { return };
            THREAD.with(|state| {
                let mut state = state.borrow_mut();
                // Guards may be released out of acquisition order
                // (`drop(a)` before `drop(b)`), so the "stack" is
                // really a set keyed by serial; search from the top,
                // where LIFO releases find their entry first.
                if let Some(at) = state.held.iter().rposition(|e| e.serial == serial) {
                    state.held.remove(at);
                }
            });
        }
    }

    /// Validates a blocking acquisition of `next` against every class
    /// this thread already holds, recording the new order edges.
    /// Panics — before the thread could ever block — on same-class
    /// nesting or on an edge that would close a cycle.
    fn check_order(held: &[HeldEntry], next: u32) {
        if held.iter().any(|e| e.class == next) {
            let graph = lock_graph();
            panic!(
                "lockdep: blocking acquisition of lock class \"{}\" while this thread already \
                 holds a lock of the same class (same-class nesting can deadlock)",
                graph.names[next as usize]
            );
        }
        let mut graph = lock_graph();
        for entry in held {
            let holding = entry.class;
            if graph.deps[holding as usize].contains(&next) {
                continue; // edge already known (and known acyclic)
            }
            if let Some(path) = path_between(&graph, next, holding) {
                let names: Vec<&str> = path
                    .iter()
                    .map(|&c| graph.names[c as usize].as_str())
                    .collect();
                panic!(
                    "lockdep: acquisition-order violation: acquiring lock class \"{}\" while \
                     holding \"{}\", but the established order is {} -> \"{}\" — this edge \
                     would close a deadlock cycle",
                    graph.names[next as usize],
                    graph.names[holding as usize],
                    names
                        .iter()
                        .map(|n| format!("\"{n}\""))
                        .collect::<Vec<_>>()
                        .join(" -> "),
                    graph.names[next as usize],
                );
            }
            graph.deps[holding as usize].push(next);
        }
    }

    /// Depth-first path `from → … → to` over the recorded order edges,
    /// if one exists (used both as the cycle test and for the panic
    /// message).
    fn path_between(graph: &Graph, from: u32, to: u32) -> Option<Vec<u32>> {
        let mut visited = vec![false; graph.names.len()];
        let mut path = vec![from];
        if dfs(graph, from, to, &mut visited, &mut path) {
            Some(path)
        } else {
            None
        }
    }

    fn dfs(graph: &Graph, at: u32, to: u32, visited: &mut [bool], path: &mut Vec<u32>) -> bool {
        if at == to {
            return true;
        }
        visited[at as usize] = true;
        for &next in &graph.deps[at as usize] {
            if visited[next as usize] {
                continue;
            }
            path.push(next);
            if dfs(graph, next, to, visited, path) {
                return true;
            }
            path.pop();
        }
        false
    }

    /// The class names this thread currently holds, outermost first —
    /// an observability hook for tests.
    pub fn held_classes() -> Vec<String> {
        THREAD.with(|state| {
            let state = state.borrow();
            let graph = lock_graph();
            state
                .held
                .iter()
                .map(|e| graph.names[e.class as usize].clone())
                .collect()
        })
    }
}

/// Release-build stub of the lockdep module: classes are not tracked
/// and every check compiles out.
#[cfg(not(debug_assertions))]
pub mod lockdep {
    /// Whether lockdep instrumentation is compiled into this build.
    pub const fn is_active() -> bool {
        false
    }
}

#[cfg(debug_assertions)]
use std::sync::OnceLock;

/// Read-preferring reader-writer lock with parking_lot's panic-free
/// API, instrumented with [`lockdep`] in debug builds.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    #[cfg(debug_assertions)]
    class: OnceLock<lockdep::ClassId>,
    inner: std::sync::RwLock<T>,
}

/// RAII guard for shared access.
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    #[cfg(debug_assertions)]
    _held: lockdep::Held,
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// RAII guard for exclusive access.
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    #[cfg(debug_assertions)]
    _held: lockdep::Held,
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> RwLock<T> {
    /// Creates a new unlocked lock (unclassed: lockdep-untracked until
    /// [`RwLock::set_class`] is called).
    pub const fn new(value: T) -> Self {
        RwLock {
            #[cfg(debug_assertions)]
            class: OnceLock::new(),
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Assigns this lock to the named [`lockdep`] class (debug builds
    /// only; a no-op in release). First call wins; later calls are
    /// ignored so construction paths can race benignly.
    #[cfg(debug_assertions)]
    pub fn set_class(&self, name: &str) {
        let _ = self.class.set(lockdep::class(name));
    }

    /// Assigns this lock to the named [`lockdep`] class (debug builds
    /// only; a no-op in release).
    #[cfg(not(debug_assertions))]
    pub fn set_class(&self, _name: &str) {}

    #[cfg(debug_assertions)]
    fn class(&self) -> Option<lockdep::ClassId> {
        self.class.get().copied()
    }

    /// Acquires shared access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(debug_assertions)]
        let held = lockdep::acquire(self.class(), lockdep::Acquire::Blocking);
        RwLockReadGuard {
            #[cfg(debug_assertions)]
            _held: held,
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(debug_assertions)]
        let held = lockdep::acquire(self.class(), lockdep::Acquire::Blocking);
        RwLockWriteGuard {
            #[cfg(debug_assertions)]
            _held: held,
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive access **without lockdep tracking** — the
    /// escape hatch for verification hooks that hold a lock across
    /// operations which would otherwise record an inverted (and, for
    /// the hook, intentional) acquisition order. Production paths must
    /// use [`RwLock::write`]; every call site of this method needs a
    /// comment arguing why the inversion cannot deadlock (typically:
    /// the hook guarantees no concurrent taker of the inverted pair).
    pub fn write_untracked(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            #[cfg(debug_assertions)]
            _held: lockdep::untracked(),
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Attempts shared access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(inner) => Some(RwLockReadGuard {
                #[cfg(debug_assertions)]
                _held: lockdep::acquire(self.class(), lockdep::Acquire::Try),
                inner,
            }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                #[cfg(debug_assertions)]
                _held: lockdep::acquire(self.class(), lockdep::Acquire::Try),
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(inner) => Some(RwLockWriteGuard {
                #[cfg(debug_assertions)]
                _held: lockdep::acquire(self.class(), lockdep::Acquire::Try),
                inner,
            }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard {
                #[cfg(debug_assertions)]
                _held: lockdep::acquire(self.class(), lockdep::Acquire::Try),
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Mutual-exclusion lock with parking_lot's panic-free API,
/// instrumented with [`lockdep`] in debug builds.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    #[cfg(debug_assertions)]
    class: OnceLock<lockdep::ClassId>,
    inner: std::sync::Mutex<T>,
}

/// RAII guard for a held [`Mutex`].
///
/// The inner `std` guard lives in an `Option` solely so [`Condvar`]
/// can move it out across a wait and put the reacquired guard back;
/// outside that window it is always `Some`.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    #[cfg(debug_assertions)]
    _held: lockdep::Held,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex (unclassed: lockdep-untracked until
    /// [`Mutex::set_class`] is called).
    pub const fn new(value: T) -> Self {
        Mutex {
            #[cfg(debug_assertions)]
            class: OnceLock::new(),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Assigns this mutex to the named [`lockdep`] class (debug builds
    /// only; a no-op in release). First call wins.
    #[cfg(debug_assertions)]
    pub fn set_class(&self, name: &str) {
        let _ = self.class.set(lockdep::class(name));
    }

    /// Assigns this mutex to the named [`lockdep`] class (debug builds
    /// only; a no-op in release).
    #[cfg(not(debug_assertions))]
    pub fn set_class(&self, _name: &str) {}

    #[cfg(debug_assertions)]
    fn class(&self) -> Option<lockdep::ClassId> {
        self.class.get().copied()
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(debug_assertions)]
        let held = lockdep::acquire(self.class(), lockdep::Acquire::Blocking);
        MutexGuard {
            #[cfg(debug_assertions)]
            _held: held,
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(inner) => Some(MutexGuard {
                #[cfg(debug_assertions)]
                _held: lockdep::acquire(self.class(), lockdep::Acquire::Try),
                inner: Some(inner),
            }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                #[cfg(debug_assertions)]
                _held: lockdep::acquire(self.class(), lockdep::Acquire::Try),
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Outcome of a [`Condvar::wait_for`]: whether the wait gave up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` when the wait returned because the timeout elapsed (the
    /// predicate should be rechecked either way — wakeups can be
    /// spurious).
    pub fn timed_out(self) -> bool {
        self.0
    }
}

/// Condition variable paired with the shim [`Mutex`], mirroring
/// parking_lot's `&mut MutexGuard` API over `std::sync::Condvar`.
///
/// # Lockdep interaction
///
/// A wait releases and reacquires the mutex, but the guard's lockdep
/// token is deliberately kept alive across it: the thread still
/// *logically* owns the critical section, and the reacquisition adds
/// no order edges (it acquires a class the checker already records as
/// held). The checker therefore stays conservative — waiting while
/// holding *another* classed lock is still a discipline smell, but it
/// is the caller's to avoid (condvar waits belong on leaf locks).
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing `guard`'s mutex for the wait
    /// and reacquiring it before returning. Wakeups can be spurious;
    /// always recheck the predicate.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard holds the lock");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// [`Condvar::wait`] bounded by `timeout`.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard holds the lock");
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiting thread.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        {
            let a = lock.read();
            let b = lock.read();
            assert_eq!(*a + *b, 2);
        }
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert!(lock.try_read().is_some());
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(Vec::new());
        m.lock().push(1);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn locks_survive_a_panicked_holder() {
        let lock = std::sync::Arc::new(RwLock::new(0));
        let l2 = lock.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison std lock");
        })
        .join();
        // parking_lot semantics: no poisoning, the data stays reachable.
        assert_eq!(*lock.read(), 0);
    }

    /// Unwrap a panic payload into the message text.
    #[cfg(debug_assertions)]
    fn panic_message(err: Box<dyn std::any::Any + Send>) -> String {
        err.downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_owned()))
            .unwrap_or_default()
    }

    /// The ISSUE-6 acceptance test: two shard-style classes acquired in
    /// ascending order establish the edge; the later descending
    /// acquisition panics in the cycle detector before blocking.
    #[cfg(debug_assertions)]
    #[test]
    fn descending_shard_acquisition_panics_in_debug() {
        let low = RwLock::new(());
        let high = RwLock::new(());
        low.set_class("shimtest/shard[3]");
        high.set_class("shimtest/shard[9]");

        // Ascending (the broker discipline): records shard[3] → shard[9].
        {
            let _lo = low.write();
            let _hi = high.write();
            assert_eq!(
                lockdep::held_classes(),
                vec!["shimtest/shard[3]", "shimtest/shard[9]"]
            );
        }

        // Descending: shard[9] → shard[3] would close the cycle.
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _hi = high.write();
            let _lo = low.write();
        }))
        .expect_err("the inverted acquisition must panic");
        let message = panic_message(err);
        assert!(
            message.contains("lockdep") && message.contains("shimtest/shard[9]"),
            "unexpected panic message: {message}"
        );

        // The offending edge was rejected, not recorded: the original
        // ascending order still works afterwards.
        let _lo = low.write();
        let _hi = high.write();
    }

    #[cfg(debug_assertions)]
    #[test]
    fn same_class_nesting_panics_in_debug() {
        let a = Mutex::new(());
        let b = Mutex::new(());
        a.set_class("shimtest/samesame");
        b.set_class("shimtest/samesame");
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _first = a.lock();
            let _second = b.lock();
        }))
        .expect_err("same-class nesting must panic");
        assert!(panic_message(err).contains("same-class"));
    }

    #[cfg(debug_assertions)]
    #[test]
    fn transitive_cycles_are_detected() {
        let a = Mutex::new(());
        let b = Mutex::new(());
        let c = Mutex::new(());
        a.set_class("shimtest/chain-a");
        b.set_class("shimtest/chain-b");
        c.set_class("shimtest/chain-c");
        {
            let _a = a.lock();
            let _b = b.lock();
        }
        {
            let _b = b.lock();
            let _c = c.lock();
        }
        // a → b → c is established; c → a closes the cycle transitively.
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _c = c.lock();
            let _a = a.lock();
        }))
        .expect_err("the transitive inversion must panic");
        let message = panic_message(err);
        assert!(message.contains("chain-a") && message.contains("chain-c"));
    }

    #[cfg(debug_assertions)]
    #[test]
    fn try_acquisitions_and_untracked_writes_record_no_edges() {
        let a = RwLock::new(());
        let b = RwLock::new(());
        a.set_class("shimtest/try-a");
        b.set_class("shimtest/try-b");
        {
            let _a = a.write();
            let _b = b.write(); // try-a → try-b
        }
        {
            // Inverted order, but via try_write: no edge, no panic.
            let _b = b.write();
            let _a = a.try_write().expect("uncontended");
        }
        {
            // Inverted order via the untracked escape hatch: no panic.
            let _b = b.write();
            let _a = a.write_untracked();
        }
        // The tracked inversion still trips, proving the two paths
        // above really recorded nothing.
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _b = b.write();
            let _a = a.write();
        }))
        .is_err());
    }

    #[test]
    fn out_of_order_release_is_tracked_correctly() {
        let a = Mutex::new(());
        let b = Mutex::new(());
        a.set_class("shimtest/release-a");
        b.set_class("shimtest/release-b");
        let ga = a.lock();
        let gb = b.lock();
        drop(ga); // release the outer lock first
        drop(gb);
        #[cfg(debug_assertions)]
        assert!(lockdep::held_classes().is_empty());
    }

    #[test]
    fn lockdep_activity_matches_build_profile() {
        assert_eq!(lockdep::is_active(), cfg!(debug_assertions));
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = std::sync::Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let waiter = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            *ready
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_one();
        }
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let lock = Mutex::new(0u32);
        let cv = Condvar::new();
        let mut guard = lock.lock();
        let result = cv.wait_for(&mut guard, std::time::Duration::from_millis(5));
        assert!(result.timed_out());
        // The guard still owns the lock after the wait.
        *guard += 1;
        drop(guard);
        assert_eq!(*lock.lock(), 1);
    }

    /// A classed mutex stays on lockdep's held stack across a condvar
    /// wait: the waiting thread never records new edges, and the guard
    /// keeps working on wake.
    #[cfg(debug_assertions)]
    #[test]
    fn condvar_wait_preserves_lockdep_hold() {
        let lock = Mutex::new(());
        lock.set_class("shimtest/condvar-hold");
        let cv = Condvar::new();
        let mut guard = lock.lock();
        assert_eq!(lockdep::held_classes(), vec!["shimtest/condvar-hold"]);
        let _ = cv.wait_for(&mut guard, std::time::Duration::from_millis(1));
        assert_eq!(lockdep::held_classes(), vec!["shimtest/condvar-hold"]);
        drop(guard);
        assert!(lockdep::held_classes().is_empty());
    }
}
