//! Offline shim for `parking_lot`: the lock API the workspace uses,
//! backed by `std::sync` with poisoning ignored (matching parking_lot's
//! non-poisoning semantics). See `crates/shims/README.md`.

#![forbid(unsafe_code)]

use std::sync::PoisonError;

/// Read-preferring reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII guard for shared access.
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII guard for exclusive access.
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new unlocked lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts shared access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Mutual-exclusion lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for a held [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        {
            let a = lock.read();
            let b = lock.read();
            assert_eq!(*a + *b, 2);
        }
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert!(lock.try_read().is_some());
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(Vec::new());
        m.lock().push(1);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn locks_survive_a_panicked_holder() {
        let lock = std::sync::Arc::new(RwLock::new(0));
        let l2 = lock.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison std lock");
        })
        .join();
        // parking_lot semantics: no poisoning, the data stays reachable.
        assert_eq!(*lock.read(), 0);
    }
}
