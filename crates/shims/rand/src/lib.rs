//! Offline shim for `rand` 0.9: the generator and sampling surface the
//! workspace uses. [`rngs::StdRng`] is xoshiro256++ seeded via
//! SplitMix64 — deterministic for a given seed (the property the
//! workload generators rely on), but *not* the same stream as upstream
//! `rand`'s ChaCha12 `StdRng`. See `crates/shims/README.md`.

#![forbid(unsafe_code)]

use std::ops::Range;

/// A source of random `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

#[inline]
fn unit_f64(bits: u64) -> f64 {
    // 53 high bits -> [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Widening-multiply range reduction (Lemire); the bias is
                // < span / 2^64, far below what the workloads can observe.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
    )*};
}

int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! int_range_inclusive {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "empty range in random_range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (start as i128 + hi) as $t
            }
        }
    )*};
}

int_range_inclusive!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    #[inline]
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> f32 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + (unit_f64(rng.next_u64()) as f32) * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as rand_core does for small seeds.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related sampling.
pub mod seq {
    /// Index sampling without replacement.
    pub mod index {
        use crate::{Rng, RngCore};
        use std::collections::HashSet;

        /// Distinct indices drawn from `0..length`.
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether no indices were sampled.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// The indices as a vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;

            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Samples `amount` distinct indices uniformly from
        /// `0..length`, in random order.
        ///
        /// # Panics
        ///
        /// Panics if `amount > length`.
        pub fn sample<R>(rng: &mut R, length: usize, amount: usize) -> IndexVec
        where
            R: RngCore + ?Sized,
        {
            assert!(
                amount <= length,
                "cannot sample {amount} distinct indices from 0..{length}"
            );
            if amount == 0 {
                return IndexVec(Vec::new());
            }
            // Dense fraction: partial Fisher-Yates over the full range.
            if amount * 3 >= length {
                let mut pool: Vec<usize> = (0..length).collect();
                for i in 0..amount {
                    let j = rng.random_range(i..length);
                    pool.swap(i, j);
                }
                pool.truncate(amount);
                return IndexVec(pool);
            }
            // Sparse fraction: rejection sampling.
            let mut seen = HashSet::with_capacity(amount * 2);
            let mut out = Vec::with_capacity(amount);
            while out.len() < amount {
                let x = rng.random_range(0..length);
                if seen.insert(x) {
                    out.push(x);
                }
            }
            IndexVec(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<i64> = (0..32).map(|_| a.random_range(0..1_000_000)).collect();
        let ys: Vec<i64> = (0..32).map(|_| b.random_range(0..1_000_000)).collect();
        let zs: Vec<i64> = (0..32).map(|_| c.random_range(0..1_000_000)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: usize = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.random_range(0.5..0.95);
            assert!((0.5..0.95).contains(&f));
        }
    }

    #[test]
    fn all_values_of_small_range_appear() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[rng.random_range(0..4usize)] = true;
        }
        assert_eq!(seen, [true; 4]);
    }

    #[test]
    fn random_bool_tracks_p() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits={hits}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn index_sample_is_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(4);
        for (length, amount) in [(100, 100), (100, 10), (1_000_000, 50)] {
            let mut ids = super::seq::index::sample(&mut rng, length, amount).into_vec();
            assert_eq!(ids.len(), amount);
            assert!(ids.iter().all(|&i| i < length));
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), amount, "duplicates for {length}/{amount}");
        }
    }
}
