//! One-dimensional index structures for the `boolmatch` toolkit.
//!
//! The reproduced paper (Bittner & Hinze, ICDCSW'05, §3.2) performs
//! *predicate matching* — the first phase of event filtering — with
//! one-dimensional indexes: "point predicates utilise hash tables, for
//! range predicates we deploy B+ trees". This crate provides those
//! substrates, built from scratch:
//!
//! * [`BPlusTree`] — an in-memory B+ tree with insertion, deletion
//!   (with rebalancing), point lookup and range iteration,
//! * [`HashIndex`] — a hash multimap from [`boolmatch_types::Value`]
//!   to postings,
//! * [`SortedIndex`] — a sorted-vector alternative to the B+ tree,
//!   kept for the `ablation_index` benchmark,
//! * [`PredicateIndex`] — the per-attribute, per-operator composite the
//!   engines use: given an event, it yields the ids of **all fulfilled
//!   predicates** in one pass over the event's attributes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bptree;
mod hash_index;
mod predicate_index;
mod sorted_index;

pub use bptree::BPlusTree;
pub use hash_index::HashIndex;
pub use predicate_index::{PredicateIndex, PredicateIndexStats};
pub use sorted_index::SortedIndex;
