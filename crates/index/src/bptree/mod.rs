//! An in-memory B+ tree.
//!
//! This is the range-predicate index substrate of the paper (§3.2). It
//! is a textbook B+ tree: all entries live in the leaves, internal nodes
//! hold separator keys only, and every leaf is at the same depth.
//! Deletion rebalances by borrowing from siblings or merging.
//!
//! The implementation is entirely safe Rust; leaves are not linked —
//! range scans walk the tree with an explicit stack instead, which keeps
//! ownership simple at an O(log n) cost per scan start.
//!
//! # Examples
//!
//! ```
//! use boolmatch_index::BPlusTree;
//!
//! let mut t = BPlusTree::new();
//! for i in 0..100 {
//!     t.insert(i, i * 10);
//! }
//! assert_eq!(t.get(&42), Some(&420));
//! let in_range: Vec<i32> = t.range(10..13).map(|(k, _)| *k).collect();
//! assert_eq!(in_range, vec![10, 11, 12]);
//! assert_eq!(t.remove(&42), Some(420));
//! assert_eq!(t.len(), 99);
//! ```

mod iter;
mod node;

pub use iter::Range;

use std::fmt;
use std::ops::RangeBounds;

use node::Node;

/// Default maximum number of keys per node.
pub const DEFAULT_ORDER: usize = 32;

/// An ordered map implemented as a B+ tree; see the [module
/// docs](self).
#[derive(Clone)]
pub struct BPlusTree<K, V> {
    root: Node<K, V>,
    len: usize,
    order: usize,
}

impl<K: Ord + Clone, V> Default for BPlusTree<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Clone, V> BPlusTree<K, V> {
    /// Creates an empty tree with the default node order.
    pub fn new() -> Self {
        Self::with_order(DEFAULT_ORDER)
    }

    /// Creates an empty tree whose nodes hold at most `order` keys.
    ///
    /// # Panics
    ///
    /// Panics if `order < 4` (smaller orders cannot rebalance).
    pub fn with_order(order: usize) -> Self {
        assert!(order >= 4, "B+ tree order must be at least 4");
        BPlusTree {
            root: Node::empty_leaf(),
            len: 0,
            order,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The configured maximum keys per node.
    pub fn order(&self) -> usize {
        self.order
    }

    /// Height of the tree (1 for a lone leaf root).
    pub fn height(&self) -> usize {
        self.root.height()
    }

    /// Looks up the value for `key`.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.root.get(key)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        self.root.get_mut(key)
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Inserts `key → value`; returns the previous value if the key was
    /// already present (the tree then keeps its structure unchanged).
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        match self.root.insert(key, value, self.order) {
            node::InsertResult::Replaced(old) => Some(old),
            node::InsertResult::Inserted => {
                self.len += 1;
                None
            }
            node::InsertResult::Split(sep, right) => {
                self.len += 1;
                let old_root = std::mem::replace(&mut self.root, Node::empty_leaf());
                self.root = Node::new_root(sep, old_root, right);
                None
            }
        }
    }

    /// Removes `key`, returning its value if it was present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let removed = self.root.remove(key, self.order);
        if removed.is_some() {
            self.len -= 1;
            // Collapse a root that lost all separators.
            if let Some(only_child) = self.root.take_single_child() {
                self.root = only_child;
            }
        }
        removed
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.root = Node::empty_leaf();
        self.len = 0;
    }

    /// First entry in key order.
    pub fn first(&self) -> Option<(&K, &V)> {
        self.iter().next()
    }

    /// Last entry in key order.
    pub fn last(&self) -> Option<(&K, &V)> {
        self.root.last()
    }

    /// Iterates over all entries in key order.
    pub fn iter(&self) -> Range<'_, K, V> {
        self.range(..)
    }

    /// Iterates over the entries whose keys fall in `bounds`, in key
    /// order.
    ///
    /// # Examples
    ///
    /// ```
    /// use boolmatch_index::BPlusTree;
    /// let mut t = BPlusTree::new();
    /// t.extend((0..10).map(|i| (i, ())));
    /// let keys: Vec<i32> = t.range(3..=5).map(|(k, _)| *k).collect();
    /// assert_eq!(keys, vec![3, 4, 5]);
    /// ```
    pub fn range<R: RangeBounds<K>>(&self, bounds: R) -> Range<'_, K, V> {
        Range::new(&self.root, bounds)
    }

    /// Counts `(internal, leaf)` nodes; used by memory accounting and
    /// the invariant checker.
    pub fn node_counts(&self) -> (usize, usize) {
        self.root.node_counts()
    }

    /// Approximate heap bytes used by the tree, with caller-supplied
    /// per-key/per-value extras (for heap-owning keys such as strings).
    pub fn heap_bytes_with(
        &self,
        key_extra: impl Fn(&K) -> usize + Copy,
        val_extra: impl Fn(&V) -> usize + Copy,
    ) -> usize {
        self.root.heap_bytes_with(key_extra, val_extra)
    }

    /// Validates the B+ tree invariants, panicking with a description on
    /// the first violation. Used by tests; `O(n)`.
    ///
    /// # Panics
    ///
    /// Panics when an invariant is violated.
    pub fn check_invariants(&self)
    where
        K: fmt::Debug,
    {
        let min = self.order / 2;
        self.root.check(None, None, min, self.order, true);
        let mut counted = 0usize;
        let mut last: Option<K> = None;
        for (k, _) in self.iter() {
            if let Some(prev) = last.as_ref() {
                assert!(prev < k, "iteration out of order: {prev:?} !< {k:?}");
            }
            last = Some(k.clone());
            counted += 1;
        }
        assert_eq!(counted, self.len, "len() disagrees with iteration");
    }
}

impl<K: Ord + Clone, V> Extend<(K, V)> for BPlusTree<K, V> {
    fn extend<I: IntoIterator<Item = (K, V)>>(&mut self, iter: I) {
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}

impl<K: Ord + Clone, V> FromIterator<(K, V)> for BPlusTree<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut t = BPlusTree::new();
        t.extend(iter);
        t
    }
}

impl<K: Ord + Clone + fmt::Debug, V: fmt::Debug> fmt::Debug for BPlusTree<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree() {
        let t: BPlusTree<i64, ()> = BPlusTree::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.get(&1), None);
        assert_eq!(t.first(), None);
        assert_eq!(t.last(), None);
        assert_eq!(t.iter().count(), 0);
        t.check_invariants();
    }

    #[test]
    fn insert_get_sequential() {
        let mut t = BPlusTree::with_order(4);
        for i in 0..1000i64 {
            assert_eq!(t.insert(i, i * 2), None);
        }
        assert_eq!(t.len(), 1000);
        for i in 0..1000i64 {
            assert_eq!(t.get(&i), Some(&(i * 2)), "key {i}");
        }
        assert_eq!(t.get(&1000), None);
        t.check_invariants();
    }

    #[test]
    fn insert_get_reverse_order() {
        let mut t = BPlusTree::with_order(4);
        for i in (0..500i64).rev() {
            t.insert(i, ());
        }
        assert_eq!(t.len(), 500);
        assert_eq!(t.first().unwrap().0, &0);
        assert_eq!(t.last().unwrap().0, &499);
        t.check_invariants();
    }

    #[test]
    fn insert_replaces_and_returns_old() {
        let mut t = BPlusTree::new();
        assert_eq!(t.insert("k", 1), None);
        assert_eq!(t.insert("k", 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&"k"), Some(&2));
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut t = BPlusTree::new();
        t.insert(7, vec![1]);
        t.get_mut(&7).unwrap().push(2);
        assert_eq!(t.get(&7), Some(&vec![1, 2]));
        assert_eq!(t.get_mut(&8), None);
    }

    #[test]
    fn remove_everything_both_orders() {
        for reverse in [false, true] {
            let mut t = BPlusTree::with_order(4);
            let n = 500i64;
            for i in 0..n {
                t.insert(i, i);
            }
            let keys: Vec<i64> = if reverse {
                (0..n).rev().collect()
            } else {
                (0..n).collect()
            };
            for (removed, k) in keys.iter().enumerate() {
                assert_eq!(t.remove(k), Some(*k), "removing {k}");
                assert_eq!(t.len(), n as usize - removed - 1);
                if removed % 37 == 0 {
                    t.check_invariants();
                }
            }
            assert!(t.is_empty());
            t.check_invariants();
        }
    }

    #[test]
    fn remove_missing_is_none() {
        let mut t = BPlusTree::new();
        t.insert(1, ());
        assert_eq!(t.remove(&2), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn range_queries() {
        let t: BPlusTree<i64, i64> = (0..100).map(|i| (i, i)).collect();
        let got: Vec<i64> = t.range(10..20).map(|(k, _)| *k).collect();
        assert_eq!(got, (10..20).collect::<Vec<_>>());
        let got: Vec<i64> = t.range(..5).map(|(k, _)| *k).collect();
        assert_eq!(got, (0..5).collect::<Vec<_>>());
        let got: Vec<i64> = t.range(95..).map(|(k, _)| *k).collect();
        assert_eq!(got, (95..100).collect::<Vec<_>>());
        let got: Vec<i64> = t.range(20..=22).map(|(k, _)| *k).collect();
        assert_eq!(got, vec![20, 21, 22]);
        assert_eq!(t.range(50..50).count(), 0);
        assert_eq!(t.range(200..).count(), 0);
    }

    #[test]
    fn range_with_excluded_start() {
        use std::ops::Bound;
        let t: BPlusTree<i64, ()> = (0..10).map(|i| (i, ())).collect();
        let got: Vec<i64> = t
            .range((Bound::Excluded(3), Bound::Unbounded))
            .map(|(k, _)| *k)
            .collect();
        assert_eq!(got, (4..10).collect::<Vec<_>>());
    }

    #[test]
    fn range_on_sparse_keys() {
        let t: BPlusTree<i64, ()> = (0..1000).step_by(10).map(|i| (i, ())).collect();
        let got: Vec<i64> = t.range(15..55).map(|(k, _)| *k).collect();
        assert_eq!(got, vec![20, 30, 40, 50]);
    }

    #[test]
    fn interleaved_insert_remove_stays_consistent() {
        let mut t = BPlusTree::with_order(6);
        // insert evens, remove multiples of 4, insert odds
        for i in (0..400i64).step_by(2) {
            t.insert(i, i);
        }
        for i in (0..400i64).step_by(4) {
            assert_eq!(t.remove(&i), Some(i));
        }
        for i in (1..400i64).step_by(2) {
            t.insert(i, i);
        }
        t.check_invariants();
        // contents: odds + evens not divisible by 4
        let expect: Vec<i64> = (0..400i64)
            .filter(|i| i % 2 == 1 || (i % 2 == 0 && i % 4 != 0))
            .collect();
        let got: Vec<i64> = t.iter().map(|(k, _)| *k).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn clear_resets() {
        let mut t: BPlusTree<i64, ()> = (0..100).map(|i| (i, ())).collect();
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.iter().count(), 0);
        t.insert(1, ());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn height_grows_logarithmically() {
        let mut t = BPlusTree::with_order(4);
        assert_eq!(t.height(), 1);
        for i in 0..1000i64 {
            t.insert(i, ());
        }
        let h = t.height();
        assert!(h >= 4, "height {h} too small for 1000 keys at order 4");
        assert!(h <= 12, "height {h} too large for 1000 keys at order 4");
    }

    #[test]
    fn node_counts_are_plausible() {
        let t: BPlusTree<i64, ()> = (0..1000).map(|i| (i, ())).collect();
        let (internal, leaf) = t.node_counts();
        assert!(leaf >= 1000 / DEFAULT_ORDER);
        assert!(internal >= 1);
    }

    #[test]
    #[should_panic(expected = "order must be at least 4")]
    fn tiny_order_rejected() {
        let _: BPlusTree<i64, ()> = BPlusTree::with_order(3);
    }

    #[test]
    fn string_keys() {
        let mut t = BPlusTree::new();
        for w in ["pear", "apple", "plum", "fig", "quince"] {
            t.insert(w.to_owned(), w.len());
        }
        let got: Vec<&str> = t.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(got, vec!["apple", "fig", "pear", "plum", "quince"]);
        let p_range: Vec<&str> = t
            .range("p".to_owned().."q".to_owned())
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(p_range, vec!["pear", "plum"]);
    }

    #[test]
    fn heap_bytes_grow_with_content() {
        let small: BPlusTree<i64, ()> = (0..10).map(|i| (i, ())).collect();
        let large: BPlusTree<i64, ()> = (0..10_000).map(|i| (i, ())).collect();
        let s = small.heap_bytes_with(|_| 0, |_| 0);
        let l = large.heap_bytes_with(|_| 0, |_| 0);
        assert!(l > s * 100, "large {l} vs small {s}");
    }
}
