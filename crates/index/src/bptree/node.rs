//! B+ tree nodes: search, insertion with splitting, deletion with
//! rebalancing.
//!
//! Invariants (checked by [`Node::check`]):
//!
//! * An internal node with separators `s_0 .. s_{m-1}` has `m + 1`
//!   children; every key in child `i` satisfies
//!   `s_{i-1} <= k < s_i` (with the missing bounds unbounded).
//! * All entries live in leaves; separators may be *stale copies* of
//!   deleted keys, which keeps deletion simple and does not affect
//!   search correctness.
//! * Every node except the root holds at least `order / 2` keys; the
//!   root holds at least 1 (or 0 for an empty tree).
//! * All leaves are at the same depth.

use std::fmt;

#[derive(Clone)]
pub(super) enum Node<K, V> {
    Leaf {
        keys: Vec<K>,
        vals: Vec<V>,
    },
    Internal {
        keys: Vec<K>,
        children: Vec<Node<K, V>>,
    },
}

pub(super) enum InsertResult<K, V> {
    /// Key existed; old value returned, structure unchanged.
    Replaced(V),
    /// New key inserted, no overflow.
    Inserted,
    /// New key inserted and this node split: (separator, right sibling).
    Split(K, Node<K, V>),
}

impl<K: Ord + Clone, V> Node<K, V> {
    pub(super) fn empty_leaf() -> Self {
        Node::Leaf {
            keys: Vec::new(),
            vals: Vec::new(),
        }
    }

    pub(super) fn new_root(sep: K, left: Node<K, V>, right: Node<K, V>) -> Self {
        Node::Internal {
            keys: vec![sep],
            children: vec![left, right],
        }
    }

    fn key_count(&self) -> usize {
        match self {
            Node::Leaf { keys, .. } | Node::Internal { keys, .. } => keys.len(),
        }
    }

    /// Index of the child a key belongs to: number of separators `<= key`.
    fn child_index(keys: &[K], key: &K) -> usize {
        keys.partition_point(|s| s <= key)
    }

    pub(super) fn height(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Internal { children, .. } => 1 + children[0].height(),
        }
    }

    pub(super) fn get(&self, key: &K) -> Option<&V> {
        match self {
            Node::Leaf { keys, vals } => keys.binary_search(key).ok().map(|i| &vals[i]),
            Node::Internal { keys, children } => children[Self::child_index(keys, key)].get(key),
        }
    }

    pub(super) fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        match self {
            Node::Leaf { keys, vals } => keys.binary_search(key).ok().map(|i| &mut vals[i]),
            Node::Internal { keys, children } => {
                let idx = Self::child_index(keys, key);
                children[idx].get_mut(key)
            }
        }
    }

    pub(super) fn last(&self) -> Option<(&K, &V)> {
        match self {
            Node::Leaf { keys, vals } => keys.last().map(|k| (k, vals.last().unwrap())),
            Node::Internal { children, .. } => children.last().unwrap().last(),
        }
    }

    pub(super) fn insert(&mut self, key: K, value: V, order: usize) -> InsertResult<K, V> {
        match self {
            Node::Leaf { keys, vals } => match keys.binary_search(&key) {
                Ok(i) => InsertResult::Replaced(std::mem::replace(&mut vals[i], value)),
                Err(i) => {
                    keys.insert(i, key);
                    vals.insert(i, value);
                    if keys.len() > order {
                        let (sep, right) = Self::split_leaf(keys, vals);
                        InsertResult::Split(sep, right)
                    } else {
                        InsertResult::Inserted
                    }
                }
            },
            Node::Internal { keys, children } => {
                let idx = Self::child_index(keys, &key);
                match children[idx].insert(key, value, order) {
                    InsertResult::Split(sep, right) => {
                        keys.insert(idx, sep);
                        children.insert(idx + 1, right);
                        if keys.len() > order {
                            let (sep, right) = Self::split_internal(keys, children);
                            InsertResult::Split(sep, right)
                        } else {
                            InsertResult::Inserted
                        }
                    }
                    other => other,
                }
            }
        }
    }

    fn split_leaf(keys: &mut Vec<K>, vals: &mut Vec<V>) -> (K, Node<K, V>) {
        let mid = keys.len() / 2;
        let right_keys: Vec<K> = keys.split_off(mid);
        let right_vals: Vec<V> = vals.split_off(mid);
        let sep = right_keys[0].clone();
        (
            sep,
            Node::Leaf {
                keys: right_keys,
                vals: right_vals,
            },
        )
    }

    fn split_internal(keys: &mut Vec<K>, children: &mut Vec<Node<K, V>>) -> (K, Node<K, V>) {
        let mid = keys.len() / 2;
        // keys[mid] moves up; right sibling takes keys[mid+1..] and
        // children[mid+1..].
        let right_keys: Vec<K> = keys.split_off(mid + 1);
        let sep = keys.pop().expect("mid key exists");
        let right_children: Vec<Node<K, V>> = children.split_off(mid + 1);
        (
            sep,
            Node::Internal {
                keys: right_keys,
                children: right_children,
            },
        )
    }

    pub(super) fn remove(&mut self, key: &K, order: usize) -> Option<V> {
        match self {
            Node::Leaf { keys, vals } => match keys.binary_search(key) {
                Ok(i) => {
                    keys.remove(i);
                    Some(vals.remove(i))
                }
                Err(_) => None,
            },
            Node::Internal { keys, children } => {
                let idx = Self::child_index(keys, key);
                let removed = children[idx].remove(key, order)?;
                let min = order / 2;
                if children[idx].key_count() < min {
                    Self::fix_underflow(keys, children, idx, min);
                }
                Some(removed)
            }
        }
    }

    /// Restores the minimum-occupancy invariant of `children[idx]` by
    /// borrowing from a sibling or merging with one.
    fn fix_underflow(keys: &mut Vec<K>, children: &mut Vec<Node<K, V>>, idx: usize, min: usize) {
        // Try to borrow from the left sibling.
        if idx > 0 && children[idx - 1].key_count() > min {
            let (left, rest) = children.split_at_mut(idx);
            let left = &mut left[idx - 1];
            let child = &mut rest[0];
            match (left, child) {
                (Node::Leaf { keys: lk, vals: lv }, Node::Leaf { keys: ck, vals: cv }) => {
                    let k = lk.pop().unwrap();
                    let v = lv.pop().unwrap();
                    keys[idx - 1] = k.clone();
                    ck.insert(0, k);
                    cv.insert(0, v);
                }
                (
                    Node::Internal {
                        keys: lk,
                        children: lc,
                    },
                    Node::Internal {
                        keys: ck,
                        children: cc,
                    },
                ) => {
                    // Rotate through the parent separator.
                    let sep = std::mem::replace(&mut keys[idx - 1], lk.pop().unwrap());
                    ck.insert(0, sep);
                    cc.insert(0, lc.pop().unwrap());
                }
                _ => unreachable!("siblings are at the same depth"),
            }
            return;
        }

        // Try to borrow from the right sibling.
        if idx + 1 < children.len() && children[idx + 1].key_count() > min {
            let (left, rest) = children.split_at_mut(idx + 1);
            let child = &mut left[idx];
            let right = &mut rest[0];
            match (child, right) {
                (Node::Leaf { keys: ck, vals: cv }, Node::Leaf { keys: rk, vals: rv }) => {
                    let k = rk.remove(0);
                    let v = rv.remove(0);
                    ck.push(k);
                    cv.push(v);
                    keys[idx] = rk[0].clone();
                }
                (
                    Node::Internal {
                        keys: ck,
                        children: cc,
                    },
                    Node::Internal {
                        keys: rk,
                        children: rc,
                    },
                ) => {
                    let sep = std::mem::replace(&mut keys[idx], rk.remove(0));
                    ck.push(sep);
                    cc.push(rc.remove(0));
                }
                _ => unreachable!("siblings are at the same depth"),
            }
            return;
        }

        // Merge with a sibling. Prefer merging into the left one.
        let (merge_left_idx, sep_idx) = if idx > 0 {
            (idx - 1, idx - 1)
        } else {
            (idx, idx)
        };
        let sep = keys.remove(sep_idx);
        let right = children.remove(merge_left_idx + 1);
        let left = &mut children[merge_left_idx];
        match (left, right) {
            (
                Node::Leaf { keys: lk, vals: lv },
                Node::Leaf {
                    keys: mut rk,
                    vals: mut rv,
                },
            ) => {
                lk.append(&mut rk);
                lv.append(&mut rv);
                // Separator between two leaves is dropped: all entries
                // live in the leaves.
                drop(sep);
            }
            (
                Node::Internal {
                    keys: lk,
                    children: lc,
                },
                Node::Internal {
                    keys: mut rk,
                    children: mut rc,
                },
            ) => {
                lk.push(sep);
                lk.append(&mut rk);
                lc.append(&mut rc);
            }
            _ => unreachable!("siblings are at the same depth"),
        }
    }

    /// When the root is an internal node left with a single child (all
    /// separators merged away), that child becomes the new root.
    pub(super) fn take_single_child(&mut self) -> Option<Node<K, V>> {
        match self {
            Node::Internal { keys, children } if keys.is_empty() => {
                debug_assert_eq!(children.len(), 1);
                Some(children.pop().unwrap())
            }
            _ => None,
        }
    }

    pub(super) fn node_counts(&self) -> (usize, usize) {
        match self {
            Node::Leaf { .. } => (0, 1),
            Node::Internal { children, .. } => {
                let mut internal = 1;
                let mut leaf = 0;
                for c in children {
                    let (i, l) = c.node_counts();
                    internal += i;
                    leaf += l;
                }
                (internal, leaf)
            }
        }
    }

    pub(super) fn heap_bytes_with(
        &self,
        key_extra: impl Fn(&K) -> usize + Copy,
        val_extra: impl Fn(&V) -> usize + Copy,
    ) -> usize {
        match self {
            Node::Leaf { keys, vals } => {
                keys.capacity() * std::mem::size_of::<K>()
                    + vals.capacity() * std::mem::size_of::<V>()
                    + keys.iter().map(key_extra).sum::<usize>()
                    + vals.iter().map(val_extra).sum::<usize>()
            }
            Node::Internal { keys, children } => {
                keys.capacity() * std::mem::size_of::<K>()
                    + children.capacity() * std::mem::size_of::<Node<K, V>>()
                    + keys.iter().map(key_extra).sum::<usize>()
                    + children
                        .iter()
                        .map(|c| c.heap_bytes_with(key_extra, val_extra))
                        .sum::<usize>()
            }
        }
    }

    /// Recursive invariant check; see the module docs for the invariant
    /// list. Returns the leaf depth of this subtree.
    pub(super) fn check(
        &self,
        lower: Option<&K>,
        upper: Option<&K>,
        min: usize,
        order: usize,
        is_root: bool,
    ) -> usize
    where
        K: fmt::Debug,
    {
        match self {
            Node::Leaf { keys, vals } => {
                assert_eq!(keys.len(), vals.len(), "leaf keys/vals length mismatch");
                assert!(keys.len() <= order, "leaf overfull: {}", keys.len());
                if !is_root {
                    assert!(keys.len() >= min, "leaf underfull: {} < {min}", keys.len());
                }
                for w in keys.windows(2) {
                    assert!(w[0] < w[1], "leaf keys unsorted: {:?} {:?}", w[0], w[1]);
                }
                if let (Some(lo), Some(first)) = (lower, keys.first()) {
                    assert!(lo <= first, "leaf key below lower bound");
                }
                if let (Some(hi), Some(last)) = (upper, keys.last()) {
                    assert!(last < hi, "leaf key at/above upper bound");
                }
                1
            }
            Node::Internal { keys, children } => {
                assert!(!keys.is_empty() || is_root, "internal node without keys");
                assert_eq!(
                    children.len(),
                    keys.len() + 1,
                    "internal children/keys mismatch"
                );
                assert!(keys.len() <= order, "internal overfull");
                if !is_root {
                    assert!(keys.len() >= min, "internal underfull");
                }
                for w in keys.windows(2) {
                    assert!(w[0] < w[1], "separators unsorted");
                }
                let mut depth = None;
                for (i, c) in children.iter().enumerate() {
                    let lo = if i == 0 { lower } else { Some(&keys[i - 1]) };
                    let hi = if i == keys.len() {
                        upper
                    } else {
                        Some(&keys[i])
                    };
                    let d = c.check(lo, hi, min, order, false);
                    match depth {
                        None => depth = Some(d),
                        Some(prev) => assert_eq!(prev, d, "leaves at differing depths"),
                    }
                }
                depth.unwrap() + 1
            }
        }
    }
}
