//! Range iteration over the B+ tree.

use std::ops::{Bound, RangeBounds};

use super::node::Node;

/// Iterator over the entries of a [`super::BPlusTree`] within a key
/// range, in ascending key order. Produced by [`super::BPlusTree::range`]
/// and [`super::BPlusTree::iter`].
pub struct Range<'a, K, V> {
    /// Path from the root to the current position. For internal nodes
    /// the `usize` is the child index currently descended into; for the
    /// leaf on top it is the next entry index to yield.
    stack: Vec<(&'a Node<K, V>, usize)>,
    end: Bound<K>,
}

impl<'a, K: Ord + Clone, V> Range<'a, K, V> {
    pub(super) fn new<R: RangeBounds<K>>(root: &'a Node<K, V>, bounds: R) -> Self {
        let end = match bounds.end_bound() {
            Bound::Included(k) => Bound::Included(k.clone()),
            Bound::Excluded(k) => Bound::Excluded(k.clone()),
            Bound::Unbounded => Bound::Unbounded,
        };
        let mut iter = Range {
            stack: Vec::new(),
            end,
        };
        match bounds.start_bound() {
            Bound::Unbounded => iter.descend_first(root),
            Bound::Included(k) => iter.descend_to(root, k, true),
            Bound::Excluded(k) => iter.descend_to(root, k, false),
        }
        iter
    }

    /// Pushes the path to the leftmost leaf of `node`.
    fn descend_first(&mut self, mut node: &'a Node<K, V>) {
        loop {
            match node {
                Node::Leaf { .. } => {
                    self.stack.push((node, 0));
                    return;
                }
                Node::Internal { children, .. } => {
                    self.stack.push((node, 0));
                    node = &children[0];
                }
            }
        }
    }

    /// Pushes the path to the first entry `>= key` (or `> key` when
    /// `inclusive` is false).
    fn descend_to(&mut self, mut node: &'a Node<K, V>, key: &K, inclusive: bool) {
        loop {
            match node {
                Node::Leaf { keys, .. } => {
                    let idx = if inclusive {
                        keys.partition_point(|k| k < key)
                    } else {
                        keys.partition_point(|k| k <= key)
                    };
                    self.stack.push((node, idx));
                    // If idx == keys.len(), `next` will pop and advance.
                    return;
                }
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|s| s <= key);
                    self.stack.push((node, idx));
                    node = &children[idx];
                }
            }
        }
    }

    fn within_end(&self, key: &K) -> bool {
        match &self.end {
            Bound::Unbounded => true,
            Bound::Included(e) => key <= e,
            Bound::Excluded(e) => key < e,
        }
    }

    /// Moves to the next leaf after the current one is exhausted.
    fn advance_to_next_leaf(&mut self) {
        // Pop the exhausted leaf.
        self.stack.pop();
        while let Some((node, idx)) = self.stack.pop() {
            if let Node::Internal { children, .. } = node {
                if idx + 1 < children.len() {
                    self.stack.push((node, idx + 1));
                    self.descend_first(&children[idx + 1]);
                    return;
                }
                // else: this internal node is exhausted too; keep popping
            }
        }
        // Stack empty: iteration complete.
    }
}

impl<'a, K: Ord + Clone, V> Iterator for Range<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            // Copy the top of the stack so the `'a` borrows of the node
            // are disentangled from the `&mut self` borrow.
            let &(node, idx) = self.stack.last()?;
            match node {
                Node::Leaf { keys, vals } => {
                    if idx < keys.len() {
                        let k = &keys[idx];
                        if !self.within_end(k) {
                            self.stack.clear();
                            return None;
                        }
                        self.stack.last_mut().expect("non-empty stack").1 += 1;
                        return Some((k, &vals[idx]));
                    }
                    self.advance_to_next_leaf();
                }
                Node::Internal { .. } => {
                    unreachable!("stack top is always a leaf between next() calls")
                }
            }
        }
    }
}

impl<K: Ord + Clone + std::fmt::Debug, V> std::fmt::Debug for Range<'_, K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Range")
            .field("depth", &self.stack.len())
            .field("end", &self.end)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::BPlusTree;
    use std::ops::Bound;

    #[test]
    fn full_iteration_in_order() {
        let t: BPlusTree<i64, i64> = (0..500).rev().map(|i| (i, -i)).collect();
        let got: Vec<(i64, i64)> = t.iter().map(|(k, v)| (*k, *v)).collect();
        let want: Vec<(i64, i64)> = (0..500).map(|i| (i, -i)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn start_bound_between_keys() {
        let t: BPlusTree<i64, ()> = (0..100).step_by(3).map(|i| (i, ())).collect();
        // 50 is not a key; the first key >= 50 is 51
        let got: Vec<i64> = t.range(50..60).map(|(k, _)| *k).collect();
        assert_eq!(got, vec![51, 54, 57]);
    }

    #[test]
    fn empty_tree_ranges() {
        let t: BPlusTree<i64, ()> = BPlusTree::new();
        assert_eq!(t.range(..).count(), 0);
        assert_eq!(t.range(0..10).count(), 0);
    }

    #[test]
    fn bounds_combinations() {
        let t: BPlusTree<i64, ()> = (0..10).map(|i| (i, ())).collect();
        type BoundsCase = ((Bound<i64>, Bound<i64>), Vec<i64>);
        let cases: Vec<BoundsCase> = vec![
            ((Bound::Included(3), Bound::Included(5)), vec![3, 4, 5]),
            ((Bound::Excluded(3), Bound::Included(5)), vec![4, 5]),
            ((Bound::Included(3), Bound::Excluded(5)), vec![3, 4]),
            ((Bound::Excluded(3), Bound::Excluded(5)), vec![4]),
            ((Bound::Unbounded, Bound::Excluded(2)), vec![0, 1]),
            ((Bound::Included(8), Bound::Unbounded), vec![8, 9]),
            ((Bound::Excluded(9), Bound::Unbounded), vec![]),
        ];
        for (bounds, want) in cases {
            let got: Vec<i64> = t.range(bounds).map(|(k, _)| *k).collect();
            assert_eq!(got, want, "bounds {bounds:?}");
        }
    }

    #[test]
    fn iterator_stops_cleanly_at_end_bound_mid_leaf() {
        let t: BPlusTree<i64, ()> = (0..1000).map(|i| (i, ())).collect();
        let mut it = t.range(0..3);
        assert!(it.next().is_some());
        assert!(it.next().is_some());
        assert!(it.next().is_some());
        assert!(it.next().is_none());
        // Fused after end.
        assert!(it.next().is_none());
    }
}
