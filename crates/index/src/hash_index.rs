//! Hash multimap from values to postings.

use std::collections::HashMap;

use boolmatch_types::Value;

/// The point-predicate index of the paper (§3.2): a hash multimap from
/// a predicate constant to the postings registered under it (predicate
/// ids, in the engines).
///
/// # Examples
///
/// ```
/// use boolmatch_index::HashIndex;
/// use boolmatch_types::Value;
///
/// let mut idx: HashIndex<u32> = HashIndex::new();
/// idx.insert(Value::from(10_i64), 1);
/// idx.insert(Value::from(10_i64), 2);
/// idx.insert(Value::from(20_i64), 3);
/// assert_eq!(idx.get(&Value::from(10_i64)), &[1, 2]);
/// assert!(idx.remove(&Value::from(10_i64), &1));
/// assert_eq!(idx.get(&Value::from(10_i64)), &[2]);
/// ```
#[derive(Debug, Clone)]
pub struct HashIndex<T> {
    map: HashMap<Value, Vec<T>>,
    postings: usize,
}

impl<T> Default for HashIndex<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> HashIndex<T> {
    /// Creates an empty index.
    pub fn new() -> Self {
        HashIndex {
            map: HashMap::new(),
            postings: 0,
        }
    }

    /// Adds a posting under `key`. Duplicates are allowed; the engines
    /// never insert the same posting twice for one key.
    pub fn insert(&mut self, key: Value, posting: T) {
        self.map.entry(key).or_default().push(posting);
        self.postings += 1;
    }
}

impl<T: PartialEq> HashIndex<T> {
    /// Removes one occurrence of `posting` under `key`; returns whether
    /// it was found. Empty posting lists are dropped entirely.
    pub fn remove(&mut self, key: &Value, posting: &T) -> bool {
        let Some(list) = self.map.get_mut(key) else {
            return false;
        };
        let Some(pos) = list.iter().position(|p| p == posting) else {
            return false;
        };
        list.swap_remove(pos);
        self.postings -= 1;
        if list.is_empty() {
            self.map.remove(key);
        }
        true
    }

    /// The postings under `key` (empty slice when absent).
    pub fn get(&self, key: &Value) -> &[T] {
        self.map.get(key).map_or(&[], Vec::as_slice)
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.map.len()
    }

    /// Total number of postings.
    pub fn posting_count(&self) -> usize {
        self.postings
    }

    /// Whether the index holds no postings.
    pub fn is_empty(&self) -> bool {
        self.postings == 0
    }

    /// Iterates over `(key, postings)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&Value, &[T])> {
        self.map.iter().map(|(k, v)| (k, v.as_slice()))
    }

    /// Approximate heap bytes used.
    pub fn heap_bytes(&self) -> usize {
        let entries: usize = self
            .map
            .iter()
            .map(|(k, v)| k.heap_bytes() + v.capacity() * std::mem::size_of::<T>())
            .sum();
        entries
            + self.map.capacity()
                * (std::mem::size_of::<Value>() + std::mem::size_of::<Vec<T>>() + 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut idx: HashIndex<u32> = HashIndex::new();
        idx.insert(Value::from("a"), 1);
        idx.insert(Value::from("a"), 2);
        assert_eq!(idx.get(&Value::from("a")), &[1, 2]);
        assert_eq!(idx.get(&Value::from("b")), &[] as &[u32]);
        assert_eq!(idx.key_count(), 1);
        assert_eq!(idx.posting_count(), 2);
    }

    #[test]
    fn strict_typing_of_keys() {
        let mut idx: HashIndex<u32> = HashIndex::new();
        idx.insert(Value::from(1_i64), 1);
        // A float 1.0 is a different key than int 1.
        assert!(idx.get(&Value::from(1.0)).is_empty());
        assert_eq!(idx.get(&Value::from(1_i64)), &[1]);
    }

    #[test]
    fn remove_prunes_empty_lists() {
        let mut idx: HashIndex<u32> = HashIndex::new();
        idx.insert(Value::from(5_i64), 9);
        assert!(idx.remove(&Value::from(5_i64), &9));
        assert_eq!(idx.key_count(), 0);
        assert!(idx.is_empty());
        assert!(!idx.remove(&Value::from(5_i64), &9));
    }

    #[test]
    fn remove_missing_posting() {
        let mut idx: HashIndex<u32> = HashIndex::new();
        idx.insert(Value::from(5_i64), 9);
        assert!(!idx.remove(&Value::from(5_i64), &8));
        assert_eq!(idx.posting_count(), 1);
    }

    #[test]
    fn iter_covers_all_keys() {
        let mut idx: HashIndex<u32> = HashIndex::new();
        for i in 0..10i64 {
            idx.insert(Value::from(i), i as u32);
        }
        assert_eq!(idx.iter().count(), 10);
        let total: usize = idx.iter().map(|(_, p)| p.len()).sum();
        assert_eq!(total, 10);
    }
}
