//! Sorted-vector range index, the ablation alternative to the B+ tree.

use std::ops::{Bound, RangeBounds};

use boolmatch_types::Value;

/// A range index over [`Value`] keys backed by a single sorted vector.
///
/// Lookup and range scans are `O(log n)` to locate plus `O(k)` to
/// iterate — the same asymptotics as the B+ tree with better constants
/// and locality — but insertion and removal are `O(n)`. The
/// `ablation_index` benchmark quantifies this trade-off; the engines use
/// the B+ tree because subscription churn makes `O(n)` maintenance
/// unacceptable at paper scale.
///
/// Duplicate keys are allowed (one entry per posting).
///
/// # Examples
///
/// ```
/// use boolmatch_index::SortedIndex;
/// use boolmatch_types::Value;
///
/// let mut idx: SortedIndex<u32> = SortedIndex::new();
/// idx.insert(Value::from(10_i64), 1);
/// idx.insert(Value::from(20_i64), 2);
/// idx.insert(Value::from(10_i64), 3);
/// let hits: Vec<u32> = idx
///     .range(&(Value::from(5_i64)..Value::from(15_i64)))
///     .map(|(_, p)| *p)
///     .collect();
/// assert_eq!(hits, vec![1, 3]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SortedIndex<T> {
    /// Sorted by key; equal keys keep insertion order.
    entries: Vec<(Value, T)>,
}

impl<T: PartialEq> SortedIndex<T> {
    /// Creates an empty index.
    pub fn new() -> Self {
        SortedIndex {
            entries: Vec::new(),
        }
    }

    /// Builds the index from unsorted pairs in `O(n log n)`.
    pub fn from_pairs(mut pairs: Vec<(Value, T)>) -> Self {
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        SortedIndex { entries: pairs }
    }

    /// Number of postings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts a posting in `O(n)` (shifting the tail).
    pub fn insert(&mut self, key: Value, posting: T) {
        let idx = self.entries.partition_point(|(k, _)| *k <= key);
        self.entries.insert(idx, (key, posting));
    }

    /// Removes one `(key, posting)` pair in `O(n)`; returns whether it
    /// was present.
    pub fn remove(&mut self, key: &Value, posting: &T) -> bool {
        let start = self.entries.partition_point(|(k, _)| k < key);
        let mut i = start;
        while i < self.entries.len() && self.entries[i].0 == *key {
            if self.entries[i].1 == *posting {
                self.entries.remove(i);
                return true;
            }
            i += 1;
        }
        false
    }

    /// Iterates over postings whose keys fall within `bounds`, in key
    /// order.
    pub fn range<'a, R: RangeBounds<Value>>(
        &'a self,
        bounds: &R,
    ) -> impl Iterator<Item = (&'a Value, &'a T)> + 'a {
        let start = match bounds.start_bound() {
            Bound::Unbounded => 0,
            Bound::Included(k) => self.entries.partition_point(|(e, _)| e < k),
            Bound::Excluded(k) => self.entries.partition_point(|(e, _)| e <= k),
        };
        let end = match bounds.end_bound() {
            Bound::Unbounded => self.entries.len(),
            Bound::Included(k) => self.entries.partition_point(|(e, _)| e <= k),
            Bound::Excluded(k) => self.entries.partition_point(|(e, _)| e < k),
        };
        self.entries[start..end.max(start)]
            .iter()
            .map(|(k, v)| (k, v))
    }

    /// Approximate heap bytes used.
    pub fn heap_bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<(Value, T)>()
            + self
                .entries
                .iter()
                .map(|(k, _)| k.heap_bytes())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: i64) -> Value {
        Value::from(i)
    }

    #[test]
    fn insert_keeps_sorted_order() {
        let mut idx: SortedIndex<u32> = SortedIndex::new();
        for (i, key) in [5i64, 1, 3, 2, 4].into_iter().enumerate() {
            idx.insert(v(key), i as u32);
        }
        let keys: Vec<i64> = idx.range(&(..)).map(|(k, _)| k.as_int().unwrap()).collect();
        assert_eq!(keys, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn from_pairs_matches_incremental() {
        let pairs: Vec<(Value, u32)> = (0..50).rev().map(|i| (v(i), i as u32)).collect();
        let bulk = SortedIndex::from_pairs(pairs.clone());
        let mut inc = SortedIndex::new();
        for (k, p) in pairs {
            inc.insert(k, p);
        }
        let a: Vec<u32> = bulk.range(&(..)).map(|(_, p)| *p).collect();
        let b: Vec<u32> = inc.range(&(..)).map(|(_, p)| *p).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn range_bounds() {
        let idx = SortedIndex::from_pairs((0..10).map(|i| (v(i), i as u32)).collect());
        let got: Vec<u32> = idx.range(&(v(3)..v(6))).map(|(_, p)| *p).collect();
        assert_eq!(got, vec![3, 4, 5]);
        let got: Vec<u32> = idx.range(&(v(3)..=v(6))).map(|(_, p)| *p).collect();
        assert_eq!(got, vec![3, 4, 5, 6]);
        let got: Vec<u32> = idx.range(&(..v(2))).map(|(_, p)| *p).collect();
        assert_eq!(got, vec![0, 1]);
        assert_eq!(idx.range(&(v(100)..)).count(), 0);
    }

    #[test]
    fn duplicate_keys_all_returned() {
        let mut idx: SortedIndex<u32> = SortedIndex::new();
        idx.insert(v(1), 10);
        idx.insert(v(1), 11);
        idx.insert(v(1), 12);
        let got: Vec<u32> = idx.range(&(v(1)..=v(1))).map(|(_, p)| *p).collect();
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn remove_specific_posting() {
        let mut idx: SortedIndex<u32> = SortedIndex::new();
        idx.insert(v(1), 10);
        idx.insert(v(1), 11);
        assert!(idx.remove(&v(1), &10));
        assert!(!idx.remove(&v(1), &10));
        let got: Vec<u32> = idx.range(&(..)).map(|(_, p)| *p).collect();
        assert_eq!(got, vec![11]);
    }

    #[test]
    fn empty_range_on_empty_index() {
        let idx: SortedIndex<u32> = SortedIndex::new();
        assert_eq!(idx.range(&(..)).count(), 0);
        assert!(idx.is_empty());
    }
}
