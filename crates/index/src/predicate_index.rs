//! The per-attribute, per-operator predicate index — phase 1 of the
//! paper's filtering pipeline.

use std::ops::Bound;

use boolmatch_expr::{CompareOp, Predicate};
use boolmatch_types::{AttrInterner, Event, Value};

use crate::{BPlusTree, HashIndex};

/// Postings attached to one constant in a range tree: ids of strict
/// (`<`/`>`) and inclusive (`<=`/`>=`) predicates with that constant.
#[derive(Debug, Clone)]
struct RangePostings<T> {
    strict: Vec<T>,
    inclusive: Vec<T>,
}

impl<T> Default for RangePostings<T> {
    fn default() -> Self {
        RangePostings {
            strict: Vec::new(),
            inclusive: Vec::new(),
        }
    }
}

impl<T> RangePostings<T> {
    fn is_empty(&self) -> bool {
        self.strict.is_empty() && self.inclusive.is_empty()
    }
}

/// One attribute's worth of operator indexes.
#[derive(Debug, Clone)]
struct AttrBucket<T> {
    /// `=` predicates: hash table keyed by constant (paper: "point
    /// predicates utilise hash tables").
    eq: HashIndex<T>,
    /// `!=` predicates: scanned linearly, skipping entries whose
    /// constant equals the event value. `!=` cannot be range-indexed on
    /// one dimension; the list is usually tiny.
    ne: Vec<(Value, T)>,
    /// `>` / `>=` predicates keyed by constant; an event value `v`
    /// fulfils entries with constant `< v` (both) and `= v` (inclusive
    /// only). ("for range predicates we deploy B+ trees")
    lower: BPlusTree<Value, RangePostings<T>>,
    /// `<` / `<=` predicates keyed by constant; `v` fulfils entries with
    /// constant `> v` (both) and `= v` (inclusive only).
    upper: BPlusTree<Value, RangePostings<T>>,
    /// `prefix` / `!prefix` predicates: `(pattern, id, negated)`.
    prefix: Vec<(Value, T, bool)>,
    /// `contains` / `!contains` predicates: `(pattern, id, negated)`.
    contains: Vec<(Value, T, bool)>,
}

impl<T> Default for AttrBucket<T> {
    fn default() -> Self {
        AttrBucket {
            eq: HashIndex::new(),
            ne: Vec::new(),
            lower: BPlusTree::new(),
            upper: BPlusTree::new(),
            prefix: Vec::new(),
            contains: Vec::new(),
        }
    }
}

/// Summary counters for a [`PredicateIndex`]; see
/// [`PredicateIndex::stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PredicateIndexStats {
    /// Distinct attributes with at least one predicate registered.
    pub attributes: usize,
    /// Registered equality predicates.
    pub eq: usize,
    /// Registered inequality predicates.
    pub ne: usize,
    /// Registered range predicates (`<`, `<=`, `>`, `>=`).
    pub range: usize,
    /// Registered string-search predicates.
    pub string_search: usize,
}

impl PredicateIndexStats {
    /// Total registered predicates.
    pub fn total(&self) -> usize {
        self.eq + self.ne + self.range + self.string_search
    }
}

/// The phase-1 index: maps an event to the ids of all fulfilled
/// predicates (paper §3.2, upper half of Fig. 2).
///
/// `T` is the posting type — the engines use their `PredicateId`.
/// Every attribute of the event is looked up once; each operator class
/// is served by the structure that suits it (hash table, B+ tree, or a
/// scan for the classes that cannot be one-dimensionally indexed).
///
/// # Examples
///
/// ```
/// use boolmatch_expr::{CompareOp, Predicate};
/// use boolmatch_index::PredicateIndex;
/// use boolmatch_types::Event;
///
/// let mut idx: PredicateIndex<u32> = PredicateIndex::new();
/// idx.insert(0, &Predicate::new("a", CompareOp::Gt, 10_i64));
/// idx.insert(1, &Predicate::new("a", CompareOp::Le, 5_i64));
/// idx.insert(2, &Predicate::new("b", CompareOp::Eq, 1_i64));
///
/// let event = Event::builder().attr("a", 12_i64).attr("b", 1_i64).build();
/// let mut hits = idx.matching(&event);
/// hits.sort();
/// assert_eq!(hits, vec![0, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct PredicateIndex<T> {
    interner: AttrInterner,
    buckets: Vec<AttrBucket<T>>,
    stats: PredicateIndexStats,
}

impl<T: Copy + PartialEq> Default for PredicateIndex<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy + PartialEq> PredicateIndex<T> {
    /// Creates an empty index.
    pub fn new() -> Self {
        PredicateIndex {
            interner: AttrInterner::new(),
            buckets: Vec::new(),
            stats: PredicateIndexStats::default(),
        }
    }

    /// Registers predicate `pred` under posting `id`.
    pub fn insert(&mut self, id: T, pred: &Predicate) {
        let attr = self.interner.intern(pred.attr());
        if attr.index() >= self.buckets.len() {
            self.buckets
                .resize_with(attr.index() + 1, AttrBucket::default);
            self.stats.attributes = self.buckets.len();
        }
        let bucket = &mut self.buckets[attr.index()];
        let constant = pred.value().clone();
        match pred.op() {
            CompareOp::Eq => {
                bucket.eq.insert(constant, id);
                self.stats.eq += 1;
            }
            CompareOp::Ne => {
                bucket.ne.push((constant, id));
                self.stats.ne += 1;
            }
            CompareOp::Gt | CompareOp::Ge => {
                let strict = pred.op() == CompareOp::Gt;
                Self::range_insert(&mut bucket.lower, constant, id, strict);
                self.stats.range += 1;
            }
            CompareOp::Lt | CompareOp::Le => {
                let strict = pred.op() == CompareOp::Lt;
                Self::range_insert(&mut bucket.upper, constant, id, strict);
                self.stats.range += 1;
            }
            CompareOp::Prefix | CompareOp::NotPrefix => {
                let negated = pred.op() == CompareOp::NotPrefix;
                bucket.prefix.push((constant, id, negated));
                self.stats.string_search += 1;
            }
            CompareOp::Contains | CompareOp::NotContains => {
                let negated = pred.op() == CompareOp::NotContains;
                bucket.contains.push((constant, id, negated));
                self.stats.string_search += 1;
            }
        }
    }

    fn range_insert(
        tree: &mut BPlusTree<Value, RangePostings<T>>,
        constant: Value,
        id: T,
        strict: bool,
    ) {
        if let Some(postings) = tree.get_mut(&constant) {
            if strict {
                postings.strict.push(id);
            } else {
                postings.inclusive.push(id);
            }
            return;
        }
        let mut postings = RangePostings::default();
        if strict {
            postings.strict.push(id);
        } else {
            postings.inclusive.push(id);
        }
        tree.insert(constant, postings);
    }

    /// Unregisters a predicate; returns whether it was present.
    pub fn remove(&mut self, id: T, pred: &Predicate) -> bool {
        let Some(attr) = self.interner.get(pred.attr()) else {
            return false;
        };
        let Some(bucket) = self.buckets.get_mut(attr.index()) else {
            return false;
        };
        let constant = pred.value();
        match pred.op() {
            CompareOp::Eq => {
                let r = bucket.eq.remove(constant, &id);
                if r {
                    self.stats.eq -= 1;
                }
                r
            }
            CompareOp::Ne => {
                let r = remove_pair(&mut bucket.ne, constant, id);
                if r {
                    self.stats.ne -= 1;
                }
                r
            }
            CompareOp::Gt | CompareOp::Ge => {
                let strict = pred.op() == CompareOp::Gt;
                let r = Self::range_remove(&mut bucket.lower, constant, id, strict);
                if r {
                    self.stats.range -= 1;
                }
                r
            }
            CompareOp::Lt | CompareOp::Le => {
                let strict = pred.op() == CompareOp::Lt;
                let r = Self::range_remove(&mut bucket.upper, constant, id, strict);
                if r {
                    self.stats.range -= 1;
                }
                r
            }
            CompareOp::Prefix | CompareOp::NotPrefix => {
                let negated = pred.op() == CompareOp::NotPrefix;
                let r = remove_triple(&mut bucket.prefix, constant, id, negated);
                if r {
                    self.stats.string_search -= 1;
                }
                r
            }
            CompareOp::Contains | CompareOp::NotContains => {
                let negated = pred.op() == CompareOp::NotContains;
                let r = remove_triple(&mut bucket.contains, constant, id, negated);
                if r {
                    self.stats.string_search -= 1;
                }
                r
            }
        }
    }

    fn range_remove(
        tree: &mut BPlusTree<Value, RangePostings<T>>,
        constant: &Value,
        id: T,
        strict: bool,
    ) -> bool {
        let Some(postings) = tree.get_mut(constant) else {
            return false;
        };
        let list = if strict {
            &mut postings.strict
        } else {
            &mut postings.inclusive
        };
        let Some(pos) = list.iter().position(|p| *p == id) else {
            return false;
        };
        list.swap_remove(pos);
        if postings.is_empty() {
            tree.remove(constant);
        }
        true
    }

    /// Collects the ids of all predicates fulfilled by `event`.
    pub fn matching(&self, event: &Event) -> Vec<T> {
        let mut out = Vec::new();
        self.for_each_match(event, |id| out.push(id));
        out
    }

    /// Calls `f` once per fulfilled predicate id, in unspecified order.
    /// Each registered predicate is reported at most once because every
    /// event attribute is inspected exactly once (indexes partition by
    /// attribute and operator).
    pub fn for_each_match(&self, event: &Event, mut f: impl FnMut(T)) {
        for (name, value) in event.iter() {
            let Some(attr) = self.interner.get(name) else {
                continue;
            };
            let Some(bucket) = self.buckets.get(attr.index()) else {
                continue;
            };

            // Point predicates: one hash lookup.
            for &id in bucket.eq.get(value) {
                f(id);
            }

            // Inequality predicates: scan, skip the equal constant.
            for (constant, id) in &bucket.ne {
                if constant.kind() == value.kind() && constant != value {
                    f(*id);
                }
            }

            // `>`/`>=`: constants strictly below `value` fulfil both
            // flavours; a constant equal to `value` fulfils only `>=`.
            // Keys of other kinds must be excluded: the Value total
            // order ranks kinds, so restrict to this kind's span.
            let kind_min = kind_min_bound(value);
            for (constant, postings) in bucket
                .lower
                .range((kind_min.clone(), Bound::Included(value.clone())))
            {
                if constant == value {
                    for &id in &postings.inclusive {
                        f(id);
                    }
                } else {
                    for &id in &postings.strict {
                        f(id);
                    }
                    for &id in &postings.inclusive {
                        f(id);
                    }
                }
            }

            // `<`/`<=`: constants strictly above fulfil both; equal
            // fulfils only `<=`.
            let kind_max = kind_max_bound(value);
            for (constant, postings) in bucket
                .upper
                .range((Bound::Included(value.clone()), kind_max))
            {
                if constant == value {
                    for &id in &postings.inclusive {
                        f(id);
                    }
                } else {
                    for &id in &postings.strict {
                        f(id);
                    }
                    for &id in &postings.inclusive {
                        f(id);
                    }
                }
            }

            // String-search predicates: scan (not one-dimensionally
            // indexable in general; the paper's workloads do not use
            // them, see DESIGN.md).
            if let Some(s) = value.as_str() {
                for (pattern, id, negated) in &bucket.prefix {
                    let pat = pattern.as_str().expect("validated at insert");
                    if s.starts_with(pat) != *negated {
                        f(*id);
                    }
                }
                for (pattern, id, negated) in &bucket.contains {
                    let pat = pattern.as_str().expect("validated at insert");
                    if s.contains(pat) != *negated {
                        f(*id);
                    }
                }
            }
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PredicateIndexStats {
        let mut s = self.stats.clone();
        s.attributes = self.buckets.len();
        s
    }

    /// Total registered predicates.
    pub fn predicate_count(&self) -> usize {
        self.stats.total()
    }

    /// Approximate heap bytes used by all structures.
    pub fn heap_bytes(&self) -> usize {
        let posting = std::mem::size_of::<T>();
        let mut total = self.interner.heap_bytes()
            + self.buckets.capacity() * std::mem::size_of::<AttrBucket<T>>();
        for b in &self.buckets {
            total += b.eq.heap_bytes();
            total += b.ne.capacity() * (std::mem::size_of::<Value>() + posting);
            total += b
                .lower
                .heap_bytes_with(Value::heap_bytes, |p: &RangePostings<T>| {
                    (p.strict.capacity() + p.inclusive.capacity()) * posting
                });
            total += b
                .upper
                .heap_bytes_with(Value::heap_bytes, |p: &RangePostings<T>| {
                    (p.strict.capacity() + p.inclusive.capacity()) * posting
                });
            total += b.prefix.capacity() * (std::mem::size_of::<Value>() + posting + 1);
            total += b.contains.capacity() * (std::mem::size_of::<Value>() + posting + 1);
        }
        total
    }
}

/// The minimum/maximum `f64` under [`f64::total_cmp`] — NaNs with the
/// sign bit set sort below `-inf`, and positive NaNs above `+inf`.
const F64_TOTAL_MIN: f64 = f64::from_bits(u64::MAX);
const F64_TOTAL_MAX: f64 = f64::from_bits(0x7FFF_FFFF_FFFF_FFFF);

/// Lower bound restricting a range scan to keys of `value`'s kind.
fn kind_min_bound(value: &Value) -> Bound<Value> {
    match value {
        Value::Bool(_) => Bound::Included(Value::Bool(false)),
        Value::Int(_) => Bound::Included(Value::Int(i64::MIN)),
        Value::Float(_) => Bound::Included(Value::Float(F64_TOTAL_MIN)),
        // Strings sort last and "" is the minimum string.
        Value::Str(_) => Bound::Included(Value::from("")),
    }
}

/// Upper bound restricting a range scan to keys of `value`'s kind.
fn kind_max_bound(value: &Value) -> Bound<Value> {
    match value {
        Value::Bool(_) => Bound::Included(Value::Bool(true)),
        Value::Int(_) => Bound::Included(Value::Int(i64::MAX)),
        Value::Float(_) => Bound::Included(Value::Float(F64_TOTAL_MAX)),
        Value::Str(_) => Bound::Unbounded,
    }
}

fn remove_pair<T: PartialEq>(list: &mut Vec<(Value, T)>, constant: &Value, id: T) -> bool {
    if let Some(pos) = list.iter().position(|(c, p)| c == constant && *p == id) {
        list.swap_remove(pos);
        true
    } else {
        false
    }
}

fn remove_triple<T: PartialEq>(
    list: &mut Vec<(Value, T, bool)>,
    constant: &Value,
    id: T,
    negated: bool,
) -> bool {
    if let Some(pos) = list
        .iter()
        .position(|(c, p, n)| c == constant && *p == id && *n == negated)
    {
        list.swap_remove(pos);
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(pairs: &[(&str, i64)]) -> Event {
        Event::from_pairs(pairs.iter().map(|(n, v)| (*n, *v)))
    }

    fn sorted(mut v: Vec<u32>) -> Vec<u32> {
        v.sort();
        v
    }

    #[test]
    fn eq_predicates_hit_exactly() {
        let mut idx: PredicateIndex<u32> = PredicateIndex::new();
        idx.insert(0, &Predicate::new("a", CompareOp::Eq, 1_i64));
        idx.insert(1, &Predicate::new("a", CompareOp::Eq, 2_i64));
        idx.insert(2, &Predicate::new("b", CompareOp::Eq, 1_i64));
        assert_eq!(sorted(idx.matching(&event(&[("a", 1)]))), vec![0]);
        assert_eq!(sorted(idx.matching(&event(&[("a", 2)]))), vec![1]);
        assert_eq!(sorted(idx.matching(&event(&[("a", 3)]))), Vec::<u32>::new());
        assert_eq!(
            sorted(idx.matching(&event(&[("a", 1), ("b", 1)]))),
            vec![0, 2]
        );
    }

    #[test]
    fn range_predicate_semantics() {
        let mut idx: PredicateIndex<u32> = PredicateIndex::new();
        idx.insert(0, &Predicate::new("x", CompareOp::Gt, 10_i64));
        idx.insert(1, &Predicate::new("x", CompareOp::Ge, 10_i64));
        idx.insert(2, &Predicate::new("x", CompareOp::Lt, 10_i64));
        idx.insert(3, &Predicate::new("x", CompareOp::Le, 10_i64));
        assert_eq!(sorted(idx.matching(&event(&[("x", 11)]))), vec![0, 1]);
        assert_eq!(sorted(idx.matching(&event(&[("x", 10)]))), vec![1, 3]);
        assert_eq!(sorted(idx.matching(&event(&[("x", 9)]))), vec![2, 3]);
    }

    #[test]
    fn ne_predicates() {
        let mut idx: PredicateIndex<u32> = PredicateIndex::new();
        idx.insert(0, &Predicate::new("x", CompareOp::Ne, 5_i64));
        assert_eq!(idx.matching(&event(&[("x", 4)])), vec![0]);
        assert_eq!(idx.matching(&event(&[("x", 5)])), Vec::<u32>::new());
        // missing attribute: no match
        assert_eq!(idx.matching(&event(&[("y", 4)])), Vec::<u32>::new());
        // wrong kind: no match
        let e = Event::builder().attr("x", 4.0).build();
        assert_eq!(idx.matching(&e), Vec::<u32>::new());
    }

    #[test]
    fn kind_isolation_in_range_trees() {
        let mut idx: PredicateIndex<u32> = PredicateIndex::new();
        idx.insert(0, &Predicate::new("x", CompareOp::Gt, 10_i64));
        idx.insert(1, &Predicate::new("x", CompareOp::Gt, 10.0));
        // int event matches only the int predicate
        assert_eq!(idx.matching(&event(&[("x", 11)])), vec![0]);
        // float event matches only the float predicate
        let e = Event::builder().attr("x", 11.0).build();
        assert_eq!(idx.matching(&e), vec![1]);
    }

    #[test]
    fn string_search_predicates() {
        let mut idx: PredicateIndex<u32> = PredicateIndex::new();
        idx.insert(0, &Predicate::new("s", CompareOp::Prefix, "ab"));
        idx.insert(1, &Predicate::new("s", CompareOp::NotPrefix, "ab"));
        idx.insert(2, &Predicate::new("s", CompareOp::Contains, "cd"));
        let e = Event::builder().attr("s", "abcd").build();
        assert_eq!(sorted(idx.matching(&e)), vec![0, 2]);
        let e = Event::builder().attr("s", "xxcd").build();
        assert_eq!(sorted(idx.matching(&e)), vec![1, 2]);
        // Non-string value: no string predicate fires, not even negated.
        assert_eq!(idx.matching(&event(&[("s", 3)])), Vec::<u32>::new());
    }

    #[test]
    fn string_range_predicates() {
        let mut idx: PredicateIndex<u32> = PredicateIndex::new();
        idx.insert(0, &Predicate::new("s", CompareOp::Ge, "m"));
        idx.insert(1, &Predicate::new("s", CompareOp::Lt, "m"));
        let hi = Event::builder().attr("s", "zebra").build();
        let lo = Event::builder().attr("s", "apple").build();
        assert_eq!(idx.matching(&hi), vec![0]);
        assert_eq!(idx.matching(&lo), vec![1]);
    }

    #[test]
    fn remove_predicates() {
        let mut idx: PredicateIndex<u32> = PredicateIndex::new();
        let p0 = Predicate::new("a", CompareOp::Gt, 1_i64);
        let p1 = Predicate::new("a", CompareOp::Eq, 5_i64);
        idx.insert(0, &p0);
        idx.insert(1, &p1);
        assert_eq!(idx.predicate_count(), 2);
        assert!(idx.remove(0, &p0));
        assert!(!idx.remove(0, &p0));
        assert_eq!(idx.predicate_count(), 1);
        assert_eq!(idx.matching(&event(&[("a", 5)])), vec![1]);
        assert!(idx.remove(1, &p1));
        assert_eq!(idx.matching(&event(&[("a", 5)])), Vec::<u32>::new());
        assert_eq!(idx.predicate_count(), 0);
    }

    #[test]
    fn remove_unknown_attribute_is_false() {
        let mut idx: PredicateIndex<u32> = PredicateIndex::new();
        assert!(!idx.remove(0, &Predicate::new("zzz", CompareOp::Eq, 1_i64)));
    }

    #[test]
    fn stats_track_classes() {
        let mut idx: PredicateIndex<u32> = PredicateIndex::new();
        idx.insert(0, &Predicate::new("a", CompareOp::Eq, 1_i64));
        idx.insert(1, &Predicate::new("a", CompareOp::Ne, 1_i64));
        idx.insert(2, &Predicate::new("a", CompareOp::Lt, 1_i64));
        idx.insert(3, &Predicate::new("b", CompareOp::Contains, "x"));
        let s = idx.stats();
        assert_eq!(s.eq, 1);
        assert_eq!(s.ne, 1);
        assert_eq!(s.range, 1);
        assert_eq!(s.string_search, 1);
        assert_eq!(s.attributes, 2);
        assert_eq!(s.total(), 4);
    }

    #[test]
    fn matching_agrees_with_direct_evaluation() {
        // Exhaustive check on a small grid: index-based matching ==
        // Predicate::eval_event for every registered predicate.
        let mut idx: PredicateIndex<u32> = PredicateIndex::new();
        let mut preds = Vec::new();
        let ops = [
            CompareOp::Eq,
            CompareOp::Ne,
            CompareOp::Lt,
            CompareOp::Le,
            CompareOp::Gt,
            CompareOp::Ge,
        ];
        let mut id = 0u32;
        for attr in ["a", "b"] {
            for op in ops {
                for c in [-1i64, 0, 1] {
                    let p = Predicate::new(attr, op, c);
                    idx.insert(id, &p);
                    preds.push(p);
                    id += 1;
                }
            }
        }
        for av in [-2i64, -1, 0, 1, 2] {
            for bv in [-1i64, 0, 3] {
                let e = event(&[("a", av), ("b", bv)]);
                let got = sorted(idx.matching(&e));
                let want: Vec<u32> = preds
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.eval_event(&e))
                    .map(|(i, _)| i as u32)
                    .collect();
                assert_eq!(got, want, "event {e}");
            }
        }
    }

    #[test]
    fn heap_bytes_nonzero_once_populated() {
        let mut idx: PredicateIndex<u32> = PredicateIndex::new();
        idx.insert(0, &Predicate::new("a", CompareOp::Gt, 1_i64));
        assert!(idx.heap_bytes() > 0);
    }
}
