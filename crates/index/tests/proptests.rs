//! Property-based tests: the B+ tree against a `BTreeMap` oracle, and
//! the predicate index against direct predicate evaluation.

use std::collections::BTreeMap;
use std::ops::Bound;

use proptest::prelude::*;

use boolmatch_expr::{CompareOp, Predicate};
use boolmatch_index::{BPlusTree, PredicateIndex, SortedIndex};
use boolmatch_types::{Event, Value};

#[derive(Debug, Clone)]
enum Op {
    Insert(i16, u32),
    Remove(i16),
    Get(i16),
    Range(i16, i16),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<i16>(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k, v)),
        any::<i16>().prop_map(Op::Remove),
        any::<i16>().prop_map(Op::Get),
        (any::<i16>(), any::<i16>()).prop_map(|(a, b)| Op::Range(a.min(b), a.max(b))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bptree_matches_btreemap_oracle(
        ops in prop::collection::vec(arb_op(), 1..400),
        order in 4usize..16,
    ) {
        let mut tree: BPlusTree<i16, u32> = BPlusTree::with_order(order);
        let mut oracle: BTreeMap<i16, u32> = BTreeMap::new();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    prop_assert_eq!(tree.insert(k, v), oracle.insert(k, v));
                }
                Op::Remove(k) => {
                    prop_assert_eq!(tree.remove(&k), oracle.remove(&k));
                }
                Op::Get(k) => {
                    prop_assert_eq!(tree.get(&k), oracle.get(&k));
                }
                Op::Range(a, b) => {
                    let got: Vec<(i16, u32)> =
                        tree.range(a..b).map(|(k, v)| (*k, *v)).collect();
                    let want: Vec<(i16, u32)> =
                        oracle.range(a..b).map(|(k, v)| (*k, *v)).collect();
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(tree.len(), oracle.len());
        }
        tree.check_invariants();
        let got: Vec<(i16, u32)> = tree.iter().map(|(k, v)| (*k, *v)).collect();
        let want: Vec<(i16, u32)> = oracle.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn bptree_range_bound_combinations(
        keys in prop::collection::btree_set(any::<i16>(), 0..200),
        a in any::<i16>(),
        b in any::<i16>(),
        incl_start in any::<bool>(),
        incl_end in any::<bool>(),
    ) {
        let tree: BPlusTree<i16, ()> = keys.iter().map(|&k| (k, ())).collect();
        let oracle: BTreeMap<i16, ()> = keys.iter().map(|&k| (k, ())).collect();
        let (lo, hi) = (a.min(b), a.max(b));
        let start = if incl_start { Bound::Included(lo) } else { Bound::Excluded(lo) };
        let end = if incl_end { Bound::Included(hi) } else { Bound::Excluded(hi) };
        // BTreeMap panics on (Excluded(x), Excluded(x)); skip that corner.
        prop_assume!(!(lo == hi && (!incl_start || !incl_end)));
        let got: Vec<i16> = tree.range((start, end)).map(|(k, _)| *k).collect();
        let want: Vec<i16> = oracle.range((start, end)).map(|(k, _)| *k).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn sorted_index_agrees_with_bptree_on_ranges(
        keys in prop::collection::vec(-100i64..100, 0..150),
        a in -110i64..110,
        b in -110i64..110,
    ) {
        let mut tree: BPlusTree<Value, Vec<u32>> = BPlusTree::new();
        let mut sorted: SortedIndex<u32> = SortedIndex::new();
        for (i, &k) in keys.iter().enumerate() {
            let v = Value::from(k);
            sorted.insert(v.clone(), i as u32);
            if let Some(list) = tree.get_mut(&v) {
                list.push(i as u32);
            } else {
                tree.insert(v, vec![i as u32]);
            }
        }
        let (lo, hi) = (a.min(b), a.max(b));
        let range = Value::from(lo)..Value::from(hi);
        let mut got: Vec<u32> = sorted.range(&range).map(|(_, p)| *p).collect();
        let mut want: Vec<u32> = tree
            .range(Value::from(lo)..Value::from(hi))
            .flat_map(|(_, v)| v.iter().copied())
            .collect();
        got.sort();
        want.sort();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn predicate_index_agrees_with_direct_eval(
        preds in prop::collection::vec(
            (0..3u8, 0..6u8, -5i64..5),
            1..60
        ),
        attrs in prop::collection::vec((0..3u8, -6i64..6), 0..3),
    ) {
        let ops = [CompareOp::Eq, CompareOp::Ne, CompareOp::Lt,
                   CompareOp::Le, CompareOp::Gt, CompareOp::Ge];
        let mut idx: PredicateIndex<u32> = PredicateIndex::new();
        let mut list = Vec::new();
        for (i, (attr, op, c)) in preds.iter().enumerate() {
            let p = Predicate::new(&format!("a{attr}"), ops[*op as usize % 6], *c);
            idx.insert(i as u32, &p);
            list.push(p);
        }
        let event = Event::from_pairs(
            attrs.iter().map(|(a, v)| (format!("a{a}"), *v)),
        );
        let mut got = idx.matching(&event);
        got.sort();
        got.dedup();
        let want: Vec<u32> = list
            .iter()
            .enumerate()
            .filter(|(_, p)| p.eval_event(&event))
            .map(|(i, _)| i as u32)
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn predicate_index_insert_remove_round_trip(
        preds in prop::collection::vec((0..3u8, 0..6u8, -5i64..5), 1..40),
        event_val in -6i64..6,
    ) {
        let ops = [CompareOp::Eq, CompareOp::Ne, CompareOp::Lt,
                   CompareOp::Le, CompareOp::Gt, CompareOp::Ge];
        let mut idx: PredicateIndex<u32> = PredicateIndex::new();
        let list: Vec<Predicate> = preds
            .iter()
            .map(|(attr, op, c)| Predicate::new(&format!("a{attr}"), ops[*op as usize % 6], *c))
            .collect();
        for (i, p) in list.iter().enumerate() {
            idx.insert(i as u32, p);
        }
        // Remove every other predicate.
        for (i, p) in list.iter().enumerate() {
            if i % 2 == 0 {
                prop_assert!(idx.remove(i as u32, p));
            }
        }
        let event = Event::builder()
            .attr("a0", event_val)
            .attr("a1", event_val)
            .attr("a2", event_val)
            .build();
        let mut got = idx.matching(&event);
        got.sort();
        let want: Vec<u32> = list
            .iter()
            .enumerate()
            .filter(|(i, p)| i % 2 == 1 && p.eval_event(&event))
            .map(|(i, _)| i as u32)
            .collect();
        prop_assert_eq!(got, want);
        prop_assert_eq!(idx.predicate_count(), list.len() / 2);
    }

    #[test]
    fn bptree_float_values_with_total_order(
        floats in prop::collection::vec(any::<f64>(), 0..100),
    ) {
        let mut tree: BPlusTree<Value, usize> = BPlusTree::new();
        let mut oracle: BTreeMap<u64, usize> = BTreeMap::new();
        for (i, &x) in floats.iter().enumerate() {
            tree.insert(Value::from(x), i);
            // total_cmp order on bits for non-negative, flipped for negative:
            // use the sign-magnitude transform BTreeMap-compatible key.
            let bits = x.to_bits();
            let key = if bits >> 63 == 0 { bits ^ (1 << 63) } else { !bits };
            oracle.insert(key, i);
        }
        prop_assert_eq!(tree.len(), oracle.len());
        let got: Vec<usize> = tree.iter().map(|(_, v)| *v).collect();
        let want: Vec<usize> = oracle.values().copied().collect();
        prop_assert_eq!(got, want);
        tree.check_invariants();
    }
}
