//! Subscription generation.

use boolmatch_expr::{CompareOp, Expr, Predicate};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The Boolean shape of generated subscriptions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// The paper's §4 shape: an AND of `|p|/2` binary ORs, each OR over
    /// one attribute (`a > hi ∨ a <= lo`). DNF-transforming it yields
    /// exactly `2^(|p|/2)` conjunctions of `|p|/2` predicates — the
    /// Table 1 "8 to 32" row.
    AndOfOrPairs,
    /// A flat conjunction — what classic matchers support natively;
    /// the canonical engines register it without blow-up.
    Conjunction,
    /// A flat disjunction — DNF size equals the predicate count.
    Disjunction,
    /// Random And/Or trees of bounded depth; exercises irregular
    /// structure (used by robustness tests).
    RandomTree,
}

/// Deterministic subscription generator.
///
/// Two generators with the same seed and settings produce identical
/// subscription sequences — the sweep harness relies on this to
/// register *the same corpus* in every engine without materializing it.
///
/// # Examples
///
/// ```
/// use boolmatch_workload::{Shape, SubscriptionGenerator};
///
/// let mut g = SubscriptionGenerator::new(42, Shape::AndOfOrPairs, 6);
/// let s = g.generate();
/// assert_eq!(s.predicate_count(), 6);
/// // Deterministic: same seed, same subscription.
/// let mut g2 = SubscriptionGenerator::new(42, Shape::AndOfOrPairs, 6);
/// assert_eq!(g2.generate(), s);
/// ```
#[derive(Debug, Clone)]
pub struct SubscriptionGenerator {
    rng: StdRng,
    shape: Shape,
    predicates_per_sub: usize,
    /// Attribute pool size; `None` = a fresh attribute per OR-group
    /// (the paper's unique-predicates regime).
    attr_pool: Option<usize>,
    /// Integer constant domain (paper: "domains are supposed to have
    /// relatively large sizes").
    domain: i64,
    next_attr: u64,
}

impl SubscriptionGenerator {
    /// Creates a generator for `predicates_per_sub`-predicate
    /// subscriptions of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if `predicates_per_sub` is 0, or odd for
    /// [`Shape::AndOfOrPairs`].
    pub fn new(seed: u64, shape: Shape, predicates_per_sub: usize) -> Self {
        assert!(predicates_per_sub > 0, "need at least one predicate");
        if shape == Shape::AndOfOrPairs {
            assert!(
                predicates_per_sub % 2 == 0,
                "and-of-or-pairs needs an even predicate count"
            );
        }
        SubscriptionGenerator {
            rng: StdRng::seed_from_u64(seed),
            shape,
            predicates_per_sub,
            attr_pool: None,
            domain: 1_000_000,
            next_attr: 0,
        }
    }

    /// Draws attributes from a shared pool of `size` names instead of
    /// generating a fresh attribute per group. Predicates may then be
    /// shared between subscriptions (the regime the paper deliberately
    /// avoids; see the `ablation_sharing` bench).
    #[must_use]
    pub fn with_attribute_pool(mut self, size: usize) -> Self {
        assert!(size > 0, "attribute pool must be non-empty");
        self.attr_pool = Some(size);
        self
    }

    /// Sets the integer constant domain (`0..domain`). Smaller domains
    /// increase predicate sharing when combined with an attribute pool.
    #[must_use]
    pub fn with_domain(mut self, domain: i64) -> Self {
        assert!(domain > 1, "domain must have at least two values");
        self.domain = domain;
        self
    }

    fn fresh_attr(&mut self) -> String {
        match self.attr_pool {
            Some(pool) => format!("a{}", self.rng.random_range(0..pool)),
            None => {
                let n = self.next_attr;
                self.next_attr += 1;
                format!("a{n}")
            }
        }
    }

    /// One OR-group over a single attribute: `attr > hi ∨ attr <= lo`
    /// with `lo < hi`, so at most one branch holds for any value.
    fn or_pair(&mut self) -> Expr {
        let attr = self.fresh_attr();
        let a = self.rng.random_range(0..self.domain);
        let b = self.rng.random_range(0..self.domain);
        let (lo, hi) = if a <= b { (a, b.max(a + 1)) } else { (b, a) };
        Expr::or(vec![
            Expr::pred(Predicate::new(&attr, CompareOp::Gt, hi)),
            Expr::pred(Predicate::new(&attr, CompareOp::Le, lo)),
        ])
    }

    fn flat_pred(&mut self) -> Expr {
        let attr = self.fresh_attr();
        let v = self.rng.random_range(0..self.domain);
        let op = match self.rng.random_range(0..4) {
            0 => CompareOp::Eq,
            1 => CompareOp::Gt,
            2 => CompareOp::Le,
            _ => CompareOp::Ge,
        };
        Expr::pred(Predicate::new(&attr, op, v))
    }

    fn random_tree(&mut self, budget: usize, depth: usize) -> Expr {
        if budget <= 1 || depth == 0 {
            return self.flat_pred();
        }
        let parts = self.rng.random_range(2..=budget.min(4));
        let mut children = Vec::with_capacity(parts);
        let mut remaining = budget;
        for i in 0..parts {
            let share = if i == parts - 1 {
                remaining
            } else {
                let max = remaining - (parts - 1 - i);
                self.rng.random_range(1..=max)
            };
            remaining -= share;
            children.push(self.random_tree(share, depth - 1));
        }
        if self.rng.random_bool(0.5) {
            Expr::and(children)
        } else {
            Expr::or(children)
        }
    }

    /// Generates the next subscription.
    pub fn generate(&mut self) -> Expr {
        match self.shape {
            Shape::AndOfOrPairs => {
                let groups = self.predicates_per_sub / 2;
                Expr::and((0..groups).map(|_| self.or_pair()).collect())
            }
            Shape::Conjunction => {
                let n = self.predicates_per_sub;
                Expr::and((0..n).map(|_| self.flat_pred()).collect())
            }
            Shape::Disjunction => {
                let n = self.predicates_per_sub;
                Expr::or((0..n).map(|_| self.flat_pred()).collect())
            }
            Shape::RandomTree => self.random_tree(self.predicates_per_sub, 3),
        }
    }

    /// Generates a batch.
    pub fn generate_batch(&mut self, n: usize) -> Vec<Expr> {
        (0..n).map(|_| self.generate()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boolmatch_expr::transform;

    #[test]
    fn paper_shape_counts_and_blowup() {
        for preds in [6usize, 8, 10] {
            let mut g = SubscriptionGenerator::new(1, Shape::AndOfOrPairs, preds);
            let e = g.generate();
            assert_eq!(e.predicate_count(), preds);
            assert_eq!(
                transform::estimate_dnf_size(&e),
                1u128 << (preds / 2),
                "2^(|p|/2) conjunctions"
            );
            let dnf = transform::to_dnf(&e, 1 << 10).unwrap();
            assert!(dnf.conjuncts().iter().all(|c| c.len() == preds / 2));
        }
    }

    #[test]
    fn unique_predicates_without_pool() {
        let mut g = SubscriptionGenerator::new(7, Shape::AndOfOrPairs, 6);
        let subs = g.generate_batch(50);
        let mut all: Vec<String> = Vec::new();
        for s in &subs {
            for p in s.predicates() {
                all.push(p.to_string());
            }
        }
        let before = all.len();
        all.sort();
        all.dedup();
        assert_eq!(
            all.len(),
            before,
            "no predicate shared between subscriptions"
        );
    }

    #[test]
    fn pool_generates_shared_predicates() {
        let mut g = SubscriptionGenerator::new(7, Shape::Conjunction, 4)
            .with_attribute_pool(3)
            .with_domain(4);
        let subs = g.generate_batch(100);
        let mut all: Vec<String> = Vec::new();
        for s in &subs {
            for p in s.predicates() {
                all.push(p.to_string());
            }
        }
        let before = all.len();
        all.sort();
        all.dedup();
        assert!(
            all.len() < before,
            "small pool+domain must repeat predicates"
        );
    }

    #[test]
    fn determinism_across_instances() {
        let a: Vec<Expr> = SubscriptionGenerator::new(99, Shape::RandomTree, 8).generate_batch(20);
        let b: Vec<Expr> = SubscriptionGenerator::new(99, Shape::RandomTree, 8).generate_batch(20);
        assert_eq!(a, b);
    }

    #[test]
    fn or_pair_branches_are_disjoint() {
        let mut g = SubscriptionGenerator::new(3, Shape::AndOfOrPairs, 2);
        for _ in 0..50 {
            let e = g.generate();
            let preds = e.predicates();
            assert_eq!(preds.len(), 2);
            let hi = preds[0].value().as_int().unwrap();
            let lo = preds[1].value().as_int().unwrap();
            assert!(lo < hi, "a > {hi} and a <= {lo} must be disjoint");
        }
    }

    #[test]
    fn other_shapes_produce_requested_sizes() {
        let mut g = SubscriptionGenerator::new(5, Shape::Conjunction, 7);
        assert_eq!(g.generate().predicate_count(), 7);
        let mut g = SubscriptionGenerator::new(5, Shape::Disjunction, 7);
        assert_eq!(g.generate().predicate_count(), 7);
        let mut g = SubscriptionGenerator::new(5, Shape::RandomTree, 7);
        let e = g.generate();
        assert!(e.predicate_count() >= 1 && e.predicate_count() <= 7);
    }

    #[test]
    #[should_panic(expected = "even predicate count")]
    fn odd_count_for_pairs_panics() {
        let _ = SubscriptionGenerator::new(1, Shape::AndOfOrPairs, 5);
    }
}
