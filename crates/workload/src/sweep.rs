//! The parameter-sweep runner behind the figure harness.
//!
//! One [`SweepConfig`] describes one Fig. 3 panel: a subscription shape
//! (predicates per subscription), a fulfilled-predicates-per-event
//! level, and a ladder of subscription counts. [`run_with_progress`]
//! registers the (deterministic, seed-identical) corpus in each engine
//! incrementally, times **phase 2 only** per event — exactly the
//! paper's measurement ("we only need to compare the second phases") —
//! and reports measured plus memory-wall-modeled durations.

use std::io::Write;
use std::time::{Duration, Instant};

use boolmatch_core::{
    CountingConfig, CountingEngine, CountingVariantEngine, EngineKind, FilterEngine, FulfilledSet,
    MatchScratch, MatchStats, NonCanonicalConfig, NonCanonicalEngine, SubscriptionId,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{synthetic_fulfilled, MemoryModel, Shape, SubscriptionGenerator};

/// Configuration of one sweep (one figure panel).
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Label for reports, e.g. `"fig3a"`.
    pub label: String,
    /// Engines to compare.
    pub engines: Vec<EngineKind>,
    /// Ascending subscription counts (the panel's abscissa).
    pub subscription_counts: Vec<usize>,
    /// Predicates per original subscription (6, 8 or 10 in the paper).
    pub predicates_per_sub: usize,
    /// Fulfilled predicates per event (5 000 or 10 000 in the paper).
    pub fulfilled_per_event: usize,
    /// Events measured per point (the mean is reported).
    pub events_per_point: usize,
    /// Seed for the deterministic corpus and events.
    pub seed: u64,
    /// The memory wall applied to modeled durations.
    pub memory_model: MemoryModel,
}

impl SweepConfig {
    /// A small smoke-test configuration used by tests and examples.
    pub fn smoke(label: &str) -> Self {
        SweepConfig {
            label: label.to_owned(),
            engines: EngineKind::ALL.to_vec(),
            subscription_counts: vec![200, 500, 1_000],
            predicates_per_sub: 6,
            fulfilled_per_event: 100,
            events_per_point: 3,
            seed: 42,
            memory_model: MemoryModel::paper(),
        }
    }
}

/// One measured point of a sweep.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Sweep label (panel).
    pub label: String,
    /// Engine measured.
    pub engine: EngineKind,
    /// Original subscriptions registered.
    pub subscriptions: usize,
    /// Internally registered matching units (= subscriptions for the
    /// non-canonical engine; DNF conjunctions for counting engines).
    pub units: usize,
    /// Mean phase-2 duration per event, as measured on this host.
    pub measured: Duration,
    /// The measured duration after the memory-wall model.
    pub modeled: Duration,
    /// Phase-2 working set in bytes (what the wall applies to).
    pub phase2_bytes: usize,
    /// Per-event work counters, averaged over the measured events.
    pub stats: MatchStats,
}

fn build_engine(kind: EngineKind) -> Box<dyn FilterEngine + Send + Sync> {
    // Phase-1 indexes are disabled: the sweep synthesizes fulfilled
    // sets, as the paper's experiments do, and phase-1 structures would
    // only distort the memory accounting.
    match kind {
        EngineKind::NonCanonical => Box::new(NonCanonicalEngine::with_config(NonCanonicalConfig {
            enable_phase1_index: false,
            ..NonCanonicalConfig::default()
        })),
        EngineKind::Counting => Box::new(CountingEngine::with_config(CountingConfig {
            dnf_limit: 65_536,
            enable_phase1_index: false,
        })),
        EngineKind::CountingVariant => {
            Box::new(CountingVariantEngine::with_config(CountingConfig {
                dnf_limit: 65_536,
                enable_phase1_index: false,
            }))
        }
    }
}

/// Runs a sweep, invoking `progress` after every measured point (rows
/// arrive engine-major, count-minor). Returns all rows.
pub fn run_with_progress(
    config: &SweepConfig,
    mut progress: impl FnMut(&SweepRow),
) -> Vec<SweepRow> {
    let mut rows = Vec::new();
    for &kind in &config.engines {
        let mut engine = build_engine(kind);
        // Identical corpus across engines: same seed, same generator.
        let mut gen =
            SubscriptionGenerator::new(config.seed, Shape::AndOfOrPairs, config.predicates_per_sub);
        let mut registered = 0usize;
        let mut matched: Vec<SubscriptionId> = Vec::new();
        let mut fulfilled = FulfilledSet::new();
        let mut scratch = MatchScratch::new();

        for &target in &config.subscription_counts {
            while registered < target {
                let expr = gen.generate();
                engine
                    .subscribe(&expr)
                    .expect("paper workloads are within all engine limits");
                registered += 1;
            }

            let universe = engine.predicate_universe();
            let k = config.fulfilled_per_event.min(universe);
            // Event stream deterministic per point and identical across
            // engines (universes align for NOT-free corpora).
            let mut ev_rng = StdRng::seed_from_u64(
                config
                    .seed
                    .wrapping_add((target as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            );

            // Warm-up event (touches lazily grown scratch).
            let ids = synthetic_fulfilled(&mut ev_rng, universe, k);
            fulfilled.begin(universe);
            for id in ids {
                fulfilled.insert(id);
            }
            engine.phase2(&fulfilled, &mut scratch, &mut matched);

            let mut total = Duration::ZERO;
            let mut stats_sum = MatchStats::default();
            for _ in 0..config.events_per_point {
                let ids = synthetic_fulfilled(&mut ev_rng, universe, k);
                fulfilled.begin(universe);
                for id in ids {
                    fulfilled.insert(id);
                }
                let start = Instant::now();
                let stats = engine.phase2(&fulfilled, &mut scratch, &mut matched);
                total += start.elapsed();
                stats_sum = stats_sum + stats;
            }
            let events = config.events_per_point.max(1);
            let measured = total / events as u32;
            let memory = engine.memory_usage();
            let row = SweepRow {
                label: config.label.clone(),
                engine: kind,
                subscriptions: registered,
                units: engine.registered_units(),
                measured,
                modeled: config.memory_model.modeled_for(measured, &memory),
                phase2_bytes: memory.phase2_bytes(),
                stats: MatchStats {
                    fulfilled: stats_sum.fulfilled / events,
                    candidates: stats_sum.candidates / events,
                    evaluations: stats_sum.evaluations / events,
                    increments: stats_sum.increments / events,
                    comparisons: stats_sum.comparisons / events,
                    matched: stats_sum.matched / events,
                    shards_pruned: stats_sum.shards_pruned / events,
                    batch_events: stats_sum.batch_events / events,
                    batch_passes: stats_sum.batch_passes / events,
                },
            };
            progress(&row);
            rows.push(row);
        }
    }
    rows
}

/// Runs a sweep without progress reporting.
pub fn run(config: &SweepConfig) -> Vec<SweepRow> {
    run_with_progress(config, |_| {})
}

/// Writes rows as CSV (with header).
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_csv(rows: &[SweepRow], w: &mut impl Write) -> std::io::Result<()> {
    writeln!(
        w,
        "label,engine,subscriptions,units,measured_us,modeled_us,phase2_bytes,\
         fulfilled,candidates,evaluations,increments,comparisons,matched"
    )?;
    for r in rows {
        writeln!(
            w,
            "{},{},{},{},{:.1},{:.1},{},{},{},{},{},{},{}",
            r.label,
            r.engine,
            r.subscriptions,
            r.units,
            r.measured.as_secs_f64() * 1e6,
            r.modeled.as_secs_f64() * 1e6,
            r.phase2_bytes,
            r.stats.fulfilled,
            r.stats.candidates,
            r.stats.evaluations,
            r.stats.increments,
            r.stats.comparisons,
            r.stats.matched
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_produces_rows_for_all_engines_and_counts() {
        let config = SweepConfig::smoke("test");
        let rows = run(&config);
        assert_eq!(rows.len(), 3 * 3);
        for kind in EngineKind::ALL {
            let engine_rows: Vec<_> = rows.iter().filter(|r| r.engine == kind).collect();
            assert_eq!(engine_rows.len(), 3);
            let counts: Vec<usize> = engine_rows.iter().map(|r| r.subscriptions).collect();
            assert_eq!(counts, vec![200, 500, 1_000]);
        }
    }

    #[test]
    fn counting_units_show_the_transformation_blowup() {
        let config = SweepConfig::smoke("test");
        let rows = run(&config);
        for r in &rows {
            match r.engine {
                EngineKind::NonCanonical => assert_eq!(r.units, r.subscriptions),
                // 6 predicates -> 2^3 = 8 conjunctions each.
                _ => assert_eq!(r.units, r.subscriptions * 8),
            }
        }
    }

    #[test]
    fn counting_memory_exceeds_noncanonical_memory_at_ten_predicates() {
        // The paper's space argument is strongest at |p| = 10 (32x
        // transformation, Fig. 3c/f: the canonical engines exhaust
        // memory >4x earlier). At |p| = 6 the ratio is mild because the
        // non-canonical engine pays for explicit tree storage.
        // 10 000 subscriptions: large enough that the tree arena's
        // 1 MiB block quantisation no longer dominates the accounting.
        let config = SweepConfig {
            predicates_per_sub: 10,
            subscription_counts: vec![10_000],
            fulfilled_per_event: 500,
            events_per_point: 1,
            ..SweepConfig::smoke("test")
        };
        let rows = run(&config);
        let at = |k: EngineKind| {
            rows.iter()
                .find(|r| r.engine == k && r.subscriptions == 10_000)
                .unwrap()
                .phase2_bytes
        };
        // Transformation: 32 conjunctions x 5 predicates = 160 assoc
        // postings per original subscription, vs 10 for non-canonical.
        // (The byte ratio is muted relative to the paper's array-based
        // accounting by per-list allocator headers, which our honest
        // accounting includes; see EXPERIMENTS.md.)
        assert!(
            at(EngineKind::Counting) > 2 * at(EngineKind::NonCanonical),
            "counting {} vs non-canonical {}",
            at(EngineKind::Counting),
            at(EngineKind::NonCanonical)
        );
    }

    #[test]
    fn counting_comparisons_scale_with_units() {
        let rows = run(&SweepConfig::smoke("test"));
        for r in rows.iter().filter(|r| r.engine == EngineKind::Counting) {
            assert_eq!(r.stats.comparisons, r.units, "classic scans every unit");
        }
        for r in rows
            .iter()
            .filter(|r| r.engine == EngineKind::CountingVariant)
        {
            assert!(r.stats.comparisons <= r.units);
            assert_eq!(r.stats.comparisons, r.stats.candidates);
        }
    }

    #[test]
    fn stats_work_is_identical_for_counting_pair() {
        // Both counting engines do the same increment work on the same
        // corpus and events.
        let rows = run(&SweepConfig::smoke("test"));
        for &n in &[200usize, 500, 1_000] {
            let find = |k: EngineKind| {
                rows.iter()
                    .find(|r| r.engine == k && r.subscriptions == n)
                    .unwrap()
            };
            assert_eq!(
                find(EngineKind::Counting).stats.increments,
                find(EngineKind::CountingVariant).stats.increments
            );
            assert_eq!(
                find(EngineKind::Counting).stats.matched,
                find(EngineKind::CountingVariant).stats.matched
            );
            assert_eq!(
                find(EngineKind::Counting).stats.matched,
                find(EngineKind::NonCanonical).stats.matched,
                "all engines agree on matches at n={n}"
            );
        }
    }

    #[test]
    fn csv_output_has_header_and_rows() {
        let rows = run(&SweepConfig {
            subscription_counts: vec![100],
            engines: vec![EngineKind::NonCanonical],
            ..SweepConfig::smoke("csv")
        });
        let mut out = Vec::new();
        write_csv(&rows, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("label,engine"));
        assert!(lines[1].starts_with("csv,non-canonical,100"));
    }
}
