//! News-alerting scenario: string-heavy subscriptions.

use boolmatch_expr::Expr;
use boolmatch_types::Event;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CATEGORIES: [&str; 6] = [
    "politics", "business", "science", "sport", "weather", "arts",
];
const KEYWORDS: [&str; 10] = [
    "election", "merger", "quake", "kiwi", "champion", "storm", "budget", "launch", "strike",
    "record",
];
const REGIONS: [&str; 5] = ["nz", "au", "eu", "us", "asia"];

/// Generates news-alert subscriptions (category, keyword containment,
/// region prefixes, negated exclusions) and headline events.
///
/// # Examples
///
/// ```
/// use boolmatch_workload::scenarios::NewsScenario;
///
/// let mut s = NewsScenario::new(5);
/// let sub = s.subscription();
/// let headline = s.headline();
/// assert!(headline.contains("headline"));
/// let _ = sub.eval_event(&headline);
/// ```
#[derive(Debug, Clone)]
pub struct NewsScenario {
    rng: StdRng,
}

impl NewsScenario {
    /// Creates a deterministic scenario.
    pub fn new(seed: u64) -> Self {
        NewsScenario {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn pick<const N: usize>(&mut self, options: [&'static str; N]) -> &'static str {
        options[self.rng.random_range(0..N)]
    }

    /// One subscription, e.g.
    /// `category = "science" and (headline contains "quake" or headline contains "storm") and not (region prefix "us")`.
    pub fn subscription(&mut self) -> Expr {
        let category = self.pick(CATEGORIES);
        let kw1 = self.pick(KEYWORDS);
        let kw2 = self.pick(KEYWORDS);
        let region = self.pick(REGIONS);
        let text = match self.rng.random_range(0..3) {
            0 => format!(
                "category = \"{category}\" and (headline contains \"{kw1}\" or headline contains \"{kw2}\")"
            ),
            1 => format!(
                "category = \"{category}\" and headline contains \"{kw1}\" and not (region prefix \"{region}\")"
            ),
            _ => format!(
                "(category = \"{category}\" or urgency >= 8) and headline contains \"{kw1}\""
            ),
        };
        Expr::parse(&text).expect("generated subscription parses")
    }

    /// A batch of subscriptions.
    pub fn subscriptions(&mut self, n: usize) -> Vec<Expr> {
        (0..n).map(|_| self.subscription()).collect()
    }

    /// One headline event.
    pub fn headline(&mut self) -> Event {
        let kw1 = self.pick(KEYWORDS);
        let kw2 = self.pick(KEYWORDS);
        Event::builder()
            .attr("category", self.pick(CATEGORIES))
            .attr("headline", format!("breaking: {kw1} follows {kw2}"))
            .attr(
                "region",
                format!("{}-{}", self.pick(REGIONS), self.rng.random_range(1..9)),
            )
            .attr("urgency", self.rng.random_range(1..10_i64))
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subscriptions_parse_with_string_operators() {
        let mut s = NewsScenario::new(1);
        let mut saw_contains = false;
        for _ in 0..30 {
            let e = s.subscription();
            if e.to_string().contains("contains") {
                saw_contains = true;
            }
        }
        assert!(saw_contains);
    }

    #[test]
    fn headlines_match_subscriptions_sometimes() {
        let mut s = NewsScenario::new(2);
        let subs = s.subscriptions(40);
        let mut hits = 0;
        for _ in 0..400 {
            let h = s.headline();
            hits += subs.iter().filter(|e| e.eval_event(&h)).count();
        }
        assert!(hits > 0);
    }
}
