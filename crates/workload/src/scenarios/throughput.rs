//! Throughput scenario: a high-rate event stream over a compact
//! attribute universe, for batch-matching benchmarks.
//!
//! The batch kernels win by streaming many events through the
//! predicate tables per pass: phase 1 produces one fulfilled set per
//! lane, then a **single** association-table walk serves the whole
//! chunk. That only pays when consecutive events fulfil overlapping
//! predicate sets — a stream of unrelated events degenerates to the
//! scalar walk with extra bookkeeping. This generator therefore models
//! the workload batching is *for*: a firehose feed (ticks, telemetry,
//! click streams) where events share a handful of hot routing keys and
//! coarse load buckets, so a 64-event chunk touches each hot posting
//! list once instead of 64 times. The `bench_snapshot` `batch/*` grid
//! measures exactly this stream at B ∈ {1, 8, 64, 256}.
//!
//! Like every scenario in this module the generator is deterministic:
//! the same seed yields the same subscriptions and the same event
//! stream, so paired A/B bench rows and equivalence tests see
//! identical inputs.

use boolmatch_expr::Expr;
use boolmatch_types::Event;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Distinct `sym` routing keys the stream publishes. Small on purpose:
/// the overlap across a batch's fulfilled sets is what the batched
/// table pass amortizes.
const SYMBOLS: i64 = 8;

/// Coarse `load` buckets subscriptions threshold against.
const LOAD_BUCKETS: i64 = 10;

/// Generates the throughput workload: subscriptions spread evenly over
/// a few hot routing keys, and a high-rate event stream over the same
/// keys.
///
/// Subscriptions alternate between a conjunctive shape (`sym` key plus
/// a `load` threshold — the counting engines' sweet spot) and a
/// non-canonical shape with an alternative arm, so all three engine
/// kinds exercise their real structures on this stream.
///
/// # Examples
///
/// ```
/// use boolmatch_workload::scenarios::ThroughputScenario;
///
/// let mut s = ThroughputScenario::new(42);
/// let subs = s.subscriptions(16);
/// assert_eq!(subs.len(), 16);
/// let batch = s.batch(64);
/// assert_eq!(batch.len(), 64);
/// // Deterministic: a re-seeded twin produces the identical stream.
/// let mut twin = ThroughputScenario::new(42);
/// twin.subscriptions(16);
/// assert_eq!(format!("{:?}", twin.batch(64)), format!("{:?}", batch));
/// ```
#[derive(Debug, Clone)]
pub struct ThroughputScenario {
    rng: StdRng,
    /// Arrival index of the next subscription.
    next_sub: usize,
    /// Events generated so far.
    ticks: u64,
}

impl ThroughputScenario {
    /// Creates a deterministic scenario from a seed.
    pub fn new(seed: u64) -> Self {
        ThroughputScenario {
            rng: StdRng::seed_from_u64(seed),
            next_sub: 0,
            ticks: 0,
        }
    }

    /// The next subscription in arrival order. Even arrivals are
    /// conjunctive (`sym = k and load >= t`); odd arrivals carry an
    /// alternative arm (`sym = k or load >= 8`), keeping the workload
    /// non-canonical.
    pub fn subscription(&mut self) -> Expr {
        let index = self.next_sub;
        self.next_sub += 1;
        let sym = index as i64 % SYMBOLS;
        let threshold = (index as i64 / SYMBOLS) % LOAD_BUCKETS;
        let text = if index % 2 == 0 {
            format!("sym = {sym} and load >= {threshold}")
        } else {
            format!("sym = {sym} or load >= {}", LOAD_BUCKETS - 2)
        };
        Expr::parse(&text).expect("generated subscription parses")
    }

    /// A batch of subscriptions, in arrival order.
    pub fn subscriptions(&mut self, n: usize) -> Vec<Expr> {
        (0..n).map(|_| self.subscription()).collect()
    }

    /// The next event: a hot routing key, a coarse load bucket, and a
    /// monotone sequence number (never subscribed against — it keeps
    /// events distinct without widening the predicate universe).
    pub fn event(&mut self) -> Event {
        let seq = self.ticks as i64;
        self.ticks += 1;
        let sym = self.rng.random_range(0..SYMBOLS);
        let load = self.rng.random_range(0..LOAD_BUCKETS);
        Event::builder()
            .attr("sym", sym)
            .attr("load", load)
            .attr("seq", seq)
            .build()
    }

    /// The next `n` events of the stream, as one batch.
    pub fn batch(&mut self, n: usize) -> Vec<Event> {
        (0..n).map(|_| self.event()).collect()
    }
}

#[cfg(test)]
mod tests {
    use boolmatch_types::Value;

    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = ThroughputScenario::new(9);
        let mut b = ThroughputScenario::new(9);
        let subs_a: Vec<String> = a
            .subscriptions(24)
            .iter()
            .map(ToString::to_string)
            .collect();
        let subs_b: Vec<String> = b
            .subscriptions(24)
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(subs_a, subs_b);
        assert_eq!(format!("{:?}", a.batch(50)), format!("{:?}", b.batch(50)));
    }

    #[test]
    fn subscriptions_cover_both_shapes_and_all_symbols() {
        let mut s = ThroughputScenario::new(1);
        let subs = s.subscriptions(2 * SYMBOLS as usize);
        let texts: Vec<String> = subs.iter().map(ToString::to_string).collect();
        assert!(texts.iter().any(|t| t.contains("and")), "conjunctive arm");
        assert!(texts.iter().any(|t| t.contains("or")), "alternative arm");
        for sym in 0..SYMBOLS {
            assert!(
                texts.iter().any(|t| t.contains(&format!("sym = {sym}"))),
                "symbol {sym} covered"
            );
        }
    }

    #[test]
    fn events_stay_in_the_hot_universe() {
        let mut s = ThroughputScenario::new(3);
        for event in s.batch(200) {
            let sym = event.get("sym").and_then(Value::as_int).unwrap();
            let load = event.get("load").and_then(Value::as_int).unwrap();
            assert!((0..SYMBOLS).contains(&sym));
            assert!((0..LOAD_BUCKETS).contains(&load));
        }
    }
}
