//! Selective scenario: partitionable attribute populations, for
//! content-aware shard routing.
//!
//! Real interest populations are often *partitionable*: subscriptions
//! cluster around a discriminating equality attribute (the stock
//! symbol, the news category, the auction id), and any single event
//! carries exactly one value of that dimension. A broker that places
//! subscriptions by that attribute
//! (`PlacementPolicy::ClusterByAttribute`) makes each shard's
//! attribute synopsis selective — an event then has candidates on at
//! most the one shard its group lives on, and the publish paths prune
//! the rest (`MatchStats::shards_pruned`, the `prune_*` rows of
//! `bench_snapshot`).
//!
//! The generator produces both halves of the A/B:
//!
//! * [`SelectiveScenario::new`] — **prunable**: every subscription is
//!   an `and` whose dominant equality predicate names its group
//!   attribute (`g<k> = v and seq >= n`), so clustering co-places each
//!   group and pruning bites.
//! * [`SelectiveScenario::unprunable`] — the adversarial control: the
//!   same population shape but **or-rooted** (`g<k> = v or seq >=
//!   high`), which the conservative synopsis must treat as
//!   always-candidate. Pruning can remove nothing; this stream bounds
//!   the overhead of consulting synopses that never fire.
//!
//! Events are identical in both modes: one group attribute plus a
//! sequence number, so the pruned-vs-unpruned comparison measures the
//! routing layer, not the workload.

use boolmatch_expr::Expr;
use boolmatch_types::Event;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Values each group attribute ranges over; small enough that events
/// regularly match within their group, large enough that not every
/// group event matches every group subscription.
const GROUP_VALUES: i64 = 4;

/// Generates the partitionable workload: `groups` disjoint attribute
/// populations (`g0`, `g1`, …), subscriptions pinned to one group each,
/// and an event stream where every event carries exactly one group
/// attribute.
///
/// # Examples
///
/// ```
/// use boolmatch_workload::scenarios::SelectiveScenario;
///
/// let mut s = SelectiveScenario::new(7, 8);
/// let sub = s.subscription();
/// assert!(sub.to_string().contains("g0"), "arrival 0 joins group 0");
/// let event = s.event();
/// assert!(event.contains("seq"));
/// ```
#[derive(Debug, Clone)]
pub struct SelectiveScenario {
    rng: StdRng,
    /// Number of disjoint attribute populations (`g0` … `g{n-1}`).
    groups: usize,
    /// Whether subscriptions are and-rooted (prunable) or or-rooted
    /// (always-candidate everywhere — the pruning-overhead control).
    prunable: bool,
    /// Arrival index of the next subscription.
    next_sub: usize,
    /// Event counter, driving the sequence attribute.
    ticks: u64,
}

impl SelectiveScenario {
    /// Creates the deterministic **prunable** scenario: subscriptions
    /// are conjunctions whose dominant equality predicate names their
    /// group attribute. `groups` is clamped to at least 2.
    pub fn new(seed: u64, groups: usize) -> Self {
        SelectiveScenario {
            rng: StdRng::seed_from_u64(seed),
            groups: groups.max(2),
            prunable: true,
            next_sub: 0,
            ticks: 0,
        }
    }

    /// Creates the **unprunable** control: the same groups and the
    /// same event stream, but every subscription is or-rooted, which
    /// a conservative synopsis must treat as always-candidate — no
    /// shard can ever be pruned. Use the same `seed` as a
    /// [`SelectiveScenario::new`] twin for a like-for-like A/B.
    pub fn unprunable(seed: u64, groups: usize) -> Self {
        SelectiveScenario {
            prunable: false,
            ..SelectiveScenario::new(seed, groups)
        }
    }

    /// Number of disjoint attribute populations.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Whether this stream's subscriptions admit pruning.
    pub fn is_prunable(&self) -> bool {
        self.prunable
    }

    /// The next subscription in arrival order: round-robin across the
    /// groups (arrival `i` joins group `i % groups`), watching one of
    /// the group's values with a loose sequence guard. Prunable mode
    /// pins the group predicate as the required conjunct; the
    /// unprunable control disjoins an (almost never satisfied)
    /// sequence arm instead, defeating per-attribute summarisation
    /// without changing what usually matches.
    pub fn subscription(&mut self) -> Expr {
        let index = self.next_sub;
        self.next_sub += 1;
        let group = index % self.groups;
        let value = self.rng.random_range(1..=GROUP_VALUES);
        let text = if self.prunable {
            format!("g{group} = {value} and seq >= {}", index / self.groups)
        } else {
            // The or-arm fires only for astronomically late events, so
            // delivery stays comparable to the prunable twin — but the
            // synopsis must keep every shard candidate for it.
            format!("g{group} = {value} or seq >= {}", i64::MAX / 2)
        };
        Expr::parse(&text).expect("generated subscription parses")
    }

    /// A batch of subscriptions, in arrival order.
    pub fn subscriptions(&mut self, n: usize) -> Vec<Expr> {
        (0..n).map(|_| self.subscription()).collect()
    }

    /// The next event: exactly one group attribute (uniformly chosen)
    /// with a uniform value, plus the monotonically growing `seq` —
    /// the single-group carrier that makes clustered placement
    /// prunable.
    pub fn event(&mut self) -> Event {
        let group = self.rng.random_range(0..self.groups);
        let value = self.rng.random_range(1..=GROUP_VALUES);
        let seq = self.ticks as i64;
        self.ticks += 1;
        Event::builder()
            .attr(&format!("g{group}"), value)
            .attr("seq", seq)
            .build()
    }

    /// A batch of events.
    pub fn events(&mut self, n: usize) -> Vec<Event> {
        (0..n).map(|_| self.event()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subscriptions_round_robin_the_groups() {
        let mut s = SelectiveScenario::new(1, 4);
        let subs = s.subscriptions(8);
        for (i, sub) in subs.iter().enumerate() {
            let text = sub.to_string();
            assert!(
                text.contains(&format!("g{}", i % 4)),
                "arrival {i} joins group {}: {text}",
                i % 4
            );
            assert!(text.contains("and"), "prunable subs are and-rooted");
        }
    }

    #[test]
    fn unprunable_twin_is_or_rooted_with_matching_groups() {
        let mut a = SelectiveScenario::new(9, 4);
        let mut b = SelectiveScenario::unprunable(9, 4);
        assert!(a.is_prunable() && !b.is_prunable());
        for _ in 0..16 {
            let (pa, pb) = (a.subscription().to_string(), b.subscription().to_string());
            assert!(pa.contains("and") && pb.contains("or"));
            // Same rng stream: the group value is identical, so the
            // two populations match (almost) identically.
            assert_eq!(
                pa.split(" and ").next(),
                pb.split(" or ").next(),
                "twins diverged: {pa} vs {pb}"
            );
        }
    }

    #[test]
    fn events_carry_exactly_one_group_attribute() {
        let mut s = SelectiveScenario::new(3, 8);
        for _ in 0..50 {
            let event = s.event();
            let groups = (0..8).filter(|k| event.contains(&format!("g{k}"))).count();
            assert_eq!(groups, 1, "one group per event");
            assert!(event.contains("seq"));
        }
    }

    #[test]
    fn events_match_within_their_group() {
        let mut s = SelectiveScenario::new(5, 4);
        let subs = s.subscriptions(64);
        let mut matched = 0usize;
        for _ in 0..200 {
            let event = s.event();
            matched += subs.iter().filter(|e| e.eval_event(&event)).count();
        }
        assert!(matched > 0, "the stream produces matches");
    }

    #[test]
    fn is_deterministic() {
        let mut a = SelectiveScenario::new(42, 8);
        let mut b = SelectiveScenario::new(42, 8);
        for _ in 0..100 {
            assert_eq!(a.subscription().to_string(), b.subscription().to_string());
            let (ea, eb) = (a.event(), b.event());
            assert_eq!(ea.to_string(), eb.to_string());
        }
    }

    #[test]
    fn groups_clamp_to_two() {
        let s = SelectiveScenario::new(5, 0);
        assert_eq!(s.groups(), 2);
    }
}
