//! Rebalancing scenario: subscription churn interleaved with periodic
//! shard-rebalance and shard-resize points.
//!
//! The sharded broker's load-aware placement, live migration and
//! incremental resizing are only trustworthy if they preserve matching
//! semantics *while* the workload keeps churning. This scenario extends
//! the plain churn stream with deterministic `Rebalance` and
//! `Resize(n)` marks, so property tests can replay one stream against a
//! flat engine and a sharded engine (rebalancing at the marks) and
//! assert identical matched-id sets, and benches can measure publish
//! cost through skew → rebalance → resize cycles.

use super::{ChurnOp, ChurnScenario};

/// One operation of a rebalancing stream.
#[derive(Debug, Clone)]
pub enum RebalanceOp {
    /// A plain churn operation (subscribe / unsubscribe / publish).
    Churn(ChurnOp),
    /// Rebalance now: migrate until the per-shard loads are even
    /// (spread ≤ 1). Flat consumers treat this as a no-op.
    Rebalance,
    /// Resize to this many shards (grow or shrink incrementally). Flat
    /// consumers treat this as a no-op.
    Resize(usize),
}

/// Deterministic generator of churn interleaved with rebalance and
/// resize marks.
///
/// The churn component is a [`ChurnScenario`]; every
/// `rebalance_every`-th operation is a [`RebalanceOp::Rebalance`] mark
/// and every `resize_every`-th a [`RebalanceOp::Resize`] walking a
/// fixed shard-count ladder derived from the base shard count (`S →
/// S+2 → max(1, S−1) → S → …`), so a replayed schedule always returns
/// to where it started. The default mark periods are co-prime so the
/// marks drift through the churn stream instead of beating against it.
///
/// # Examples
///
/// ```
/// use boolmatch_workload::scenarios::{RebalanceOp, RebalanceScenario};
///
/// let mut scenario = RebalanceScenario::new(7, 50, 4);
/// let ops = scenario.ops(500);
/// assert!(ops.iter().any(|op| matches!(op, RebalanceOp::Rebalance)));
/// assert!(ops.iter().any(|op| matches!(op, RebalanceOp::Resize(_))));
/// ```
#[derive(Debug, Clone)]
pub struct RebalanceScenario {
    churn: ChurnScenario,
    ladder: Vec<usize>,
    ladder_at: usize,
    rebalance_every: usize,
    resize_every: usize,
    emitted: usize,
}

impl RebalanceScenario {
    /// Creates a deterministic scenario over `base_shards` shards that
    /// keeps roughly `target_live` subscriptions alive, rebalancing
    /// every 97th and resizing every 211th operation by default.
    pub fn new(seed: u64, target_live: usize, base_shards: usize) -> Self {
        let base = base_shards.max(1);
        RebalanceScenario {
            churn: ChurnScenario::new(seed, target_live),
            ladder: vec![base + 2, base.saturating_sub(1).max(1), base],
            ladder_at: 0,
            rebalance_every: 97,
            resize_every: 211,
            emitted: 0,
        }
    }

    /// Sets how often a [`RebalanceOp::Rebalance`] mark is emitted
    /// (every `n`-th operation; clamped to at least 2).
    #[must_use]
    pub fn with_rebalance_every(mut self, n: usize) -> Self {
        self.rebalance_every = n.max(2);
        self
    }

    /// Sets how often a [`RebalanceOp::Resize`] mark is emitted (every
    /// `n`-th operation; clamped to at least 2).
    #[must_use]
    pub fn with_resize_every(mut self, n: usize) -> Self {
        self.resize_every = n.max(2);
        self
    }

    /// Live subscriptions after the operations generated so far (the
    /// length the consumer's live list must have).
    pub fn live(&self) -> usize {
        self.churn.live()
    }

    /// The shard counts the resize marks walk, in order.
    pub fn ladder(&self) -> &[usize] {
        &self.ladder
    }

    /// The next operation.
    pub fn next_op(&mut self) -> RebalanceOp {
        self.emitted += 1;
        if self.emitted % self.resize_every == 0 {
            let shards = self.ladder[self.ladder_at % self.ladder.len()];
            self.ladder_at += 1;
            return RebalanceOp::Resize(shards);
        }
        if self.emitted % self.rebalance_every == 0 {
            return RebalanceOp::Rebalance;
        }
        RebalanceOp::Churn(self.churn.next_op())
    }

    /// A batch of operations.
    pub fn ops(&mut self, n: usize) -> Vec<RebalanceOp> {
        (0..n).map(|_| self.next_op()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_deterministic() {
        let a = RebalanceScenario::new(42, 50, 4).ops(800);
        let b = RebalanceScenario::new(42, 50, 4).ops(800);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            match (x, y) {
                (RebalanceOp::Rebalance, RebalanceOp::Rebalance) => {}
                (RebalanceOp::Resize(m), RebalanceOp::Resize(n)) => assert_eq!(m, n),
                (
                    RebalanceOp::Churn(ChurnOp::Subscribe(e1)),
                    RebalanceOp::Churn(ChurnOp::Subscribe(e2)),
                ) => {
                    assert_eq!(e1.to_string(), e2.to_string());
                }
                (
                    RebalanceOp::Churn(ChurnOp::Unsubscribe(i)),
                    RebalanceOp::Churn(ChurnOp::Unsubscribe(j)),
                ) => {
                    assert_eq!(i, j);
                }
                (
                    RebalanceOp::Churn(ChurnOp::Publish(e1)),
                    RebalanceOp::Churn(ChurnOp::Publish(e2)),
                ) => {
                    assert_eq!(e1.get("price"), e2.get("price"));
                }
                (a, b) => panic!("streams diverge: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn marks_fire_at_their_periods() {
        let mut scenario = RebalanceScenario::new(3, 30, 4)
            .with_rebalance_every(10)
            .with_resize_every(25);
        let ops = scenario.ops(100);
        let rebalances = ops
            .iter()
            .filter(|op| matches!(op, RebalanceOp::Rebalance))
            .count();
        let resizes: Vec<usize> = ops
            .iter()
            .filter_map(|op| match op {
                RebalanceOp::Resize(n) => Some(*n),
                _ => None,
            })
            .collect();
        // 100/10 = 10 rebalance slots, minus the 50th and 100th (the
        // resize period wins when both hit).
        assert_eq!(rebalances, 8);
        assert_eq!(resizes, vec![6, 3, 4, 6], "ladder: S+2 → S−1 → S → …");
    }

    #[test]
    fn ladder_returns_to_the_base_and_never_hits_zero() {
        let scenario = RebalanceScenario::new(1, 10, 1);
        assert_eq!(scenario.ladder(), &[3, 1, 1]);
        let scenario = RebalanceScenario::new(1, 10, 8);
        assert_eq!(scenario.ladder(), &[10, 7, 8]);
        assert_eq!(*scenario.ladder().last().unwrap(), 8);
    }

    #[test]
    fn unsubscribe_indexes_are_always_valid() {
        let mut scenario = RebalanceScenario::new(9, 40, 3);
        let mut live = 0usize;
        for op in scenario.ops(3_000) {
            match op {
                RebalanceOp::Churn(ChurnOp::Subscribe(_)) => live += 1,
                RebalanceOp::Churn(ChurnOp::Unsubscribe(i)) => {
                    assert!(i < live, "index {i} out of {live}");
                    live -= 1;
                }
                _ => {}
            }
        }
        assert_eq!(live, scenario.live());
    }
}
