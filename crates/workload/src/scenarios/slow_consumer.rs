//! Slow-consumer scenario + fault-injection plans for the delivery
//! tier.
//!
//! The broker's asynchronous delivery tier makes a set of promises —
//! publishes never block on a stalled subscriber, overflow follows the
//! subscriber's policy, quarantine demotes sustained laggards — that
//! only mean anything under *misbehaving* consumers. This module
//! scripts the misbehavior: a [`SlowConsumerScenario`] whose every
//! subscription matches every event (maximum fan-out pressure, so each
//! publish exercises each subscriber's queue), and a [`FaultPlan`] that
//! schedules per-subscriber [`FaultAction`]s — stall, resume, drain
//! bursts, disconnect, panic — on a deterministic tick timeline. A
//! [`FaultDriver`] folds the plan into the per-tick
//! [`ConsumerDirective`]s a test harness executes, so every failure
//! mode replays bit-identically from a seed.

use boolmatch_expr::Expr;
use boolmatch_types::Event;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One scripted consumer misbehavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Stop draining entirely (zero drain per tick) until a
    /// [`FaultAction::Resume`] or [`FaultAction::Burst`].
    Stall,
    /// Return to the plan's steady per-tick drain rate.
    Resume,
    /// Drain `drain` queued notifications immediately (a consumer
    /// catching up), then continue at the current rate.
    Burst {
        /// Notifications drained by the burst.
        drain: usize,
    },
    /// Drop the subscriber's receiving handle without unsubscribing —
    /// the disconnected-sender case delivery must count and prune.
    Disconnect,
    /// Panic inside the consumer callback — the per-subscriber panic
    /// isolation case.
    Panic,
}

/// A [`FaultAction`] pinned to a subscriber and a tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Tick index at which the action fires.
    pub tick: u64,
    /// Target subscriber (arrival order in the scenario).
    pub subscriber: usize,
    /// What happens.
    pub action: FaultAction,
}

/// A deterministic schedule of consumer faults.
///
/// # Examples
///
/// ```
/// use boolmatch_workload::scenarios::{FaultAction, FaultEvent, FaultPlan};
///
/// let plan = FaultPlan::scripted(vec![
///     FaultEvent { tick: 3, subscriber: 0, action: FaultAction::Stall },
///     FaultEvent { tick: 9, subscriber: 0, action: FaultAction::Resume },
/// ]);
/// assert_eq!(plan.actions_at(3).count(), 1);
/// assert_eq!(plan.actions_at(4).count(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Sorted by tick (stable: same-tick events keep script order).
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A hand-written schedule; events are stably sorted by tick, so
    /// same-tick actions apply in script order.
    pub fn scripted(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.tick);
        FaultPlan { events }
    }

    /// A seeded random schedule over `subscribers` consumers and
    /// `ticks` ticks: each subscriber gets a stall window (with its
    /// resume), and occasional bursts land in between. The same seed
    /// always yields the same plan.
    pub fn random(seed: u64, subscribers: usize, ticks: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events = Vec::new();
        for subscriber in 0..subscribers {
            let ticks = ticks.max(4);
            let start = rng.random_range(0..ticks / 2);
            let end = rng.random_range(start + 1..ticks);
            events.push(FaultEvent {
                tick: start,
                subscriber,
                action: FaultAction::Stall,
            });
            events.push(FaultEvent {
                tick: end,
                subscriber,
                action: FaultAction::Resume,
            });
            if rng.random_bool(0.5) {
                events.push(FaultEvent {
                    tick: end,
                    subscriber,
                    action: FaultAction::Burst {
                        drain: rng.random_range(1..64),
                    },
                });
            }
        }
        Self::scripted(events)
    }

    /// The scheduled events, in tick order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The actions firing at exactly `tick`, in script order.
    pub fn actions_at(&self, tick: u64) -> impl Iterator<Item = &FaultEvent> {
        self.events.iter().filter(move |e| e.tick == tick)
    }
}

/// What one subscriber should do this tick, after folding the plan
/// into its running state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConsumerDirective {
    /// Drain up to this many queued notifications (0 while stalled).
    Drain(usize),
    /// Drop the receiving handle without unsubscribing.
    Disconnect,
    /// Panic inside the consumer callback.
    Panic,
}

/// Per-subscriber running state while executing a plan.
#[derive(Debug, Clone, Copy)]
struct ConsumerState {
    stalled: bool,
    /// One-shot burst drain granted this tick.
    burst: usize,
    disconnect: bool,
    panic: bool,
    done: bool,
}

/// Folds a [`FaultPlan`] into per-tick [`ConsumerDirective`]s.
///
/// # Examples
///
/// ```
/// use boolmatch_workload::scenarios::{
///     ConsumerDirective, FaultAction, FaultEvent, FaultDriver, FaultPlan,
/// };
///
/// let plan = FaultPlan::scripted(vec![FaultEvent {
///     tick: 1,
///     subscriber: 0,
///     action: FaultAction::Stall,
/// }]);
/// let mut driver = FaultDriver::new(plan, 1, 4);
/// assert_eq!(driver.tick()[0], ConsumerDirective::Drain(4));
/// assert_eq!(driver.tick()[0], ConsumerDirective::Drain(0)); // stalled
/// ```
#[derive(Debug, Clone)]
pub struct FaultDriver {
    plan: FaultPlan,
    states: Vec<ConsumerState>,
    /// Per-tick drain allowance of a healthy consumer.
    steady_drain: usize,
    tick: u64,
}

impl FaultDriver {
    /// A driver over `subscribers` consumers, each draining
    /// `steady_drain` notifications per healthy tick.
    pub fn new(plan: FaultPlan, subscribers: usize, steady_drain: usize) -> Self {
        FaultDriver {
            plan,
            states: vec![
                ConsumerState {
                    stalled: false,
                    burst: 0,
                    disconnect: false,
                    panic: false,
                    done: false,
                };
                subscribers
            ],
            steady_drain,
            tick: 0,
        }
    }

    /// The current tick index (ticks already taken).
    pub fn ticks_taken(&self) -> u64 {
        self.tick
    }

    /// Advances one tick: applies this tick's scheduled actions and
    /// returns each subscriber's directive. Disconnect and panic are
    /// one-shot and terminal — after one fires, the subscriber drains
    /// nothing for the rest of the run.
    pub fn tick(&mut self) -> Vec<ConsumerDirective> {
        let tick = self.tick;
        self.tick += 1;
        for event in self.plan.actions_at(tick) {
            let Some(state) = self.states.get_mut(event.subscriber) else {
                continue;
            };
            match event.action {
                FaultAction::Stall => state.stalled = true,
                FaultAction::Resume => state.stalled = false,
                FaultAction::Burst { drain } => state.burst = state.burst.saturating_add(drain),
                FaultAction::Disconnect => state.disconnect = true,
                FaultAction::Panic => state.panic = true,
            }
        }
        self.states
            .iter_mut()
            .map(|state| {
                if state.done {
                    return ConsumerDirective::Drain(0);
                }
                if state.panic {
                    state.done = true;
                    return ConsumerDirective::Panic;
                }
                if state.disconnect {
                    state.done = true;
                    return ConsumerDirective::Disconnect;
                }
                let burst = std::mem::take(&mut state.burst);
                let steady = if state.stalled { 0 } else { self.steady_drain };
                ConsumerDirective::Drain(steady + burst)
            })
            .collect()
    }
}

/// Generates the slow-consumer workload: every subscription matches
/// every event, so each publish lands one notification on each
/// subscriber's queue and queue depth is exactly publishes minus
/// drains — lag arithmetic a test can assert on.
///
/// # Examples
///
/// ```
/// use boolmatch_workload::scenarios::SlowConsumerScenario;
///
/// let mut s = SlowConsumerScenario::new(7);
/// let subs = s.subscriptions(4);
/// let event = s.event();
/// assert!(subs.iter().all(|sub| sub.eval_event(&event)));
/// ```
#[derive(Debug, Clone)]
pub struct SlowConsumerScenario {
    rng: StdRng,
    next_sub: usize,
    ticks: u64,
}

impl SlowConsumerScenario {
    /// Creates a deterministic scenario.
    pub fn new(seed: u64) -> Self {
        SlowConsumerScenario {
            rng: StdRng::seed_from_u64(seed),
            next_sub: 0,
            ticks: 0,
        }
    }

    /// The next subscription: always matches (`feed >= 0` is true of
    /// every generated event), with a per-subscriber alternative arm
    /// keeping the shape non-canonical like the other scenarios.
    pub fn subscription(&mut self) -> Expr {
        let index = self.next_sub;
        self.next_sub += 1;
        let text = format!("feed >= 0 or lane = {index}");
        Expr::parse(&text).expect("generated subscription parses")
    }

    /// A batch of subscriptions, in arrival order.
    pub fn subscriptions(&mut self, n: usize) -> Vec<Expr> {
        (0..n).map(|_| self.subscription()).collect()
    }

    /// The next event: a monotone sequence number (`seq`) every
    /// subscriber receives, so per-subscriber FIFO order is checkable,
    /// plus a noise attribute off the rng stream.
    pub fn event(&mut self) -> Event {
        let seq = self.ticks;
        self.ticks += 1;
        Event::builder()
            .attr("feed", 1_i64)
            .attr("seq", seq as i64)
            .attr("noise", self.rng.random_range(0..1_000_i64))
            .build()
    }

    /// A batch of events.
    pub fn events(&mut self, n: usize) -> Vec<Event> {
        (0..n).map(|_| self.event()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_subscription_matches_every_event() {
        let mut s = SlowConsumerScenario::new(1);
        let subs = s.subscriptions(8);
        for _ in 0..20 {
            let event = s.event();
            assert!(subs.iter().all(|sub| sub.eval_event(&event)));
        }
    }

    #[test]
    fn events_carry_a_monotone_sequence() {
        let mut s = SlowConsumerScenario::new(2);
        let events = s.events(10);
        for (i, event) in events.iter().enumerate() {
            assert_eq!(
                event.get("seq").and_then(boolmatch_types::Value::as_int),
                Some(i as i64)
            );
        }
    }

    #[test]
    fn is_deterministic() {
        let mut a = SlowConsumerScenario::new(42);
        let mut b = SlowConsumerScenario::new(42);
        for _ in 0..50 {
            assert_eq!(a.subscription().to_string(), b.subscription().to_string());
            let (ea, eb) = (a.event(), b.event());
            assert_eq!(ea.get("seq"), eb.get("seq"));
            assert_eq!(ea.get("noise"), eb.get("noise"));
        }
    }

    #[test]
    fn scripted_plans_sort_and_filter_by_tick() {
        let plan = FaultPlan::scripted(vec![
            FaultEvent {
                tick: 5,
                subscriber: 1,
                action: FaultAction::Resume,
            },
            FaultEvent {
                tick: 2,
                subscriber: 1,
                action: FaultAction::Stall,
            },
        ]);
        assert_eq!(plan.events()[0].tick, 2);
        assert_eq!(plan.actions_at(5).count(), 1);
        assert_eq!(plan.actions_at(3).count(), 0);
    }

    #[test]
    fn random_plans_are_deterministic_and_well_formed() {
        let a = FaultPlan::random(9, 6, 40);
        let b = FaultPlan::random(9, 6, 40);
        assert_eq!(a.events(), b.events());
        for subscriber in 0..6 {
            let stalls = a
                .events()
                .iter()
                .filter(|e| e.subscriber == subscriber && e.action == FaultAction::Stall)
                .count();
            let resumes = a
                .events()
                .iter()
                .filter(|e| e.subscriber == subscriber && e.action == FaultAction::Resume)
                .count();
            assert_eq!((stalls, resumes), (1, 1), "one stall window each");
        }
    }

    #[test]
    fn driver_folds_stall_burst_and_terminal_actions() {
        let plan = FaultPlan::scripted(vec![
            FaultEvent {
                tick: 1,
                subscriber: 0,
                action: FaultAction::Stall,
            },
            FaultEvent {
                tick: 2,
                subscriber: 0,
                action: FaultAction::Resume,
            },
            FaultEvent {
                tick: 2,
                subscriber: 0,
                action: FaultAction::Burst { drain: 10 },
            },
            FaultEvent {
                tick: 1,
                subscriber: 1,
                action: FaultAction::Panic,
            },
            FaultEvent {
                tick: 1,
                subscriber: 2,
                action: FaultAction::Disconnect,
            },
        ]);
        let mut driver = FaultDriver::new(plan, 3, 4);
        assert_eq!(
            driver.tick(),
            vec![
                ConsumerDirective::Drain(4),
                ConsumerDirective::Drain(4),
                ConsumerDirective::Drain(4),
            ]
        );
        assert_eq!(
            driver.tick(),
            vec![
                ConsumerDirective::Drain(0), // stalled
                ConsumerDirective::Panic,
                ConsumerDirective::Disconnect,
            ]
        );
        assert_eq!(
            driver.tick(),
            vec![
                ConsumerDirective::Drain(14), // resumed + burst
                ConsumerDirective::Drain(0),  // terminal
                ConsumerDirective::Drain(0),  // terminal
            ]
        );
        assert_eq!(driver.ticks_taken(), 3);
    }
}
