//! Hot-key scenario: a minority of subscriptions absorb most matches.
//!
//! Production interest distributions are heavy-tailed: a few "hot"
//! subscriptions (the breaking-news alert, the index-wide ticker watch)
//! match almost every event, while the long tail of narrow interests
//! almost never fires. Shard placement that balances **subscription
//! counts** is blind to this — two count-equal shards can carry
//! arbitrarily different match loads — which is exactly the gap the
//! broker's match-frequency rebalancing policy exists to close.
//!
//! The generator makes the gap *provable* rather than probabilistic:
//! with a `stride` equal to the consumer's shard count, every
//! `stride`-th subscription is hot, so a churn-free least-loaded
//! placement (which degenerates to round-robin) parks **all** hot
//! subscriptions on shard 0. Counts stay perfectly balanced; match
//! load is maximally skewed. A count-balancing rebalancer then does
//! nothing, while the frequency-weighted one measurably spreads the
//! hot set (see `tests/hot_path.rs` and the `background_rebalance`
//! rows of `bench_snapshot`).

use boolmatch_expr::Expr;
use boolmatch_types::Event;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates the hot-key workload: hot subscriptions that match every
/// hot event, cold subscriptions keyed to (almost never published)
/// individual keys, and an event stream dominated by hot events.
///
/// # Examples
///
/// ```
/// use boolmatch_workload::scenarios::HotKeyScenario;
///
/// let mut s = HotKeyScenario::new(7, 4);
/// let subs = s.subscriptions(8);
/// assert_eq!(s.hot_subscriptions(), 2); // arrivals 0 and 4
/// let event = s.event();
/// assert!(event.contains("hot"));
/// ```
#[derive(Debug, Clone)]
pub struct HotKeyScenario {
    rng: StdRng,
    /// Every `stride`-th subscription (arrival order) is hot. Set this
    /// to the consumer's shard count to provably cluster the hot set
    /// on shard 0 under churn-free round-robin placement.
    stride: usize,
    /// Arrival index of the next subscription.
    next_sub: usize,
    /// Hot subscriptions generated so far.
    hot: usize,
    /// Event counter, for the rotating cold key.
    ticks: u64,
}

impl HotKeyScenario {
    /// Creates a deterministic scenario whose every `stride`-th
    /// subscription is hot (clamped to at least 2, so there is always
    /// a cold majority).
    pub fn new(seed: u64, stride: usize) -> Self {
        HotKeyScenario {
            rng: StdRng::seed_from_u64(seed),
            stride: stride.max(2),
            next_sub: 0,
            hot: 0,
            ticks: 0,
        }
    }

    /// The arrival-order stride between hot subscriptions.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Hot subscriptions generated so far.
    pub fn hot_subscriptions(&self) -> usize {
        self.hot
    }

    /// The next subscription in arrival order: hot (`hot = 1`, matched
    /// by every hot event) when the arrival index is a multiple of the
    /// stride, otherwise cold — keyed to a unique `key` value the event
    /// stream only rarely publishes.
    pub fn subscription(&mut self) -> Expr {
        let index = self.next_sub;
        self.next_sub += 1;
        let text = if index % self.stride == 0 {
            self.hot += 1;
            // Alternatives keep the shape non-canonical, like the other
            // scenarios; both arms fire on hot events.
            "hot = 1 or priority >= 9".to_owned()
        } else {
            format!("key = {} and hot <= 1", 1_000 + index)
        };
        Expr::parse(&text).expect("generated subscription parses")
    }

    /// A batch of subscriptions, in arrival order.
    pub fn subscriptions(&mut self, n: usize) -> Vec<Expr> {
        (0..n).map(|_| self.subscription()).collect()
    }

    /// The next event. Almost all events are hot (`hot = 1`), matching
    /// every hot subscription and no cold one; roughly one in sixteen
    /// instead carries a low key from the cold range, occasionally
    /// waking an individual cold subscription.
    pub fn event(&mut self) -> Event {
        self.ticks += 1;
        let cold_probe = self.rng.random_bool(1.0 / 16.0);
        let (hot, key) = if cold_probe {
            // Walk the cold key space slowly so individual cold
            // subscriptions do fire now and then (cold keys start at
            // 1_000 + 1).
            (0, 1_000 + 1 + (self.ticks % 64) as i64)
        } else {
            (1, 0)
        };
        Event::builder()
            .attr("hot", hot)
            .attr("key", key)
            .attr("priority", self.rng.random_range(0..8_i64))
            .build()
    }

    /// A batch of events.
    pub fn events(&mut self, n: usize) -> Vec<Event> {
        (0..n).map(|_| self.event()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_subscriptions_follow_the_stride() {
        let mut s = HotKeyScenario::new(1, 4);
        let subs = s.subscriptions(16);
        assert_eq!(s.hot_subscriptions(), 4);
        assert_eq!(s.stride(), 4);
        for (i, sub) in subs.iter().enumerate() {
            let text = sub.to_string();
            if i % 4 == 0 {
                assert!(text.contains("hot"), "arrival {i} should be hot: {text}");
                assert!(!text.contains("key"), "hot subs are keyless");
            } else {
                assert!(text.contains("key"), "arrival {i} should be cold: {text}");
            }
        }
    }

    #[test]
    fn hot_events_match_exactly_the_hot_set() {
        let mut s = HotKeyScenario::new(2, 4);
        let subs = s.subscriptions(32);
        let hot_event = Event::builder()
            .attr("hot", 1_i64)
            .attr("key", 0_i64)
            .attr("priority", 0_i64)
            .build();
        let matched = subs.iter().filter(|e| e.eval_event(&hot_event)).count();
        assert_eq!(matched, 8, "every hot sub and only the hot subs");
    }

    #[test]
    fn the_hot_minority_absorbs_most_matches() {
        let mut s = HotKeyScenario::new(3, 8);
        let subs = s.subscriptions(64); // 8 hot, 56 cold
        let mut hot_matches = 0usize;
        let mut cold_matches = 0usize;
        for _ in 0..400 {
            let event = s.event();
            for (i, sub) in subs.iter().enumerate() {
                if sub.eval_event(&event) {
                    if i % 8 == 0 {
                        hot_matches += 1;
                    } else {
                        cold_matches += 1;
                    }
                }
            }
        }
        assert!(
            hot_matches > 10 * cold_matches.max(1),
            "hot minority must dominate: hot={hot_matches} cold={cold_matches}"
        );
        assert!(cold_matches > 0, "cold subs still fire occasionally");
    }

    #[test]
    fn is_deterministic() {
        let mut a = HotKeyScenario::new(42, 4);
        let mut b = HotKeyScenario::new(42, 4);
        for _ in 0..100 {
            assert_eq!(a.subscription().to_string(), b.subscription().to_string());
            let (ea, eb) = (a.event(), b.event());
            assert_eq!(ea.get("hot"), eb.get("hot"));
            assert_eq!(ea.get("key"), eb.get("key"));
        }
    }

    #[test]
    fn stride_clamps_to_two() {
        let mut s = HotKeyScenario::new(5, 0);
        assert_eq!(s.stride(), 2);
        s.subscriptions(4);
        assert_eq!(s.hot_subscriptions(), 2);
    }
}
