//! Auction-monitoring scenario: mixed numeric/string subscriptions
//! with deliberately deep Boolean structure.

use boolmatch_expr::Expr;
use boolmatch_types::Event;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ITEMS: [&str; 8] = [
    "stamp", "painting", "guitar", "laptop", "bicycle", "camera", "watch", "kayak",
];

/// Generates auction-sniping subscriptions ("tell me when a watch goes
/// under 50 with few bidders, or any closing lot I can afford") and
/// bid events.
///
/// # Examples
///
/// ```
/// use boolmatch_workload::scenarios::AuctionScenario;
///
/// let mut s = AuctionScenario::new(11);
/// let sub = s.subscription();
/// assert!(sub.predicate_count() >= 3);
/// let bid = s.bid();
/// assert!(bid.contains("item"));
/// ```
#[derive(Debug, Clone)]
pub struct AuctionScenario {
    rng: StdRng,
}

impl AuctionScenario {
    /// Creates a deterministic scenario.
    pub fn new(seed: u64) -> Self {
        AuctionScenario {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// One subscription with nested alternatives.
    pub fn subscription(&mut self) -> Expr {
        let item = ITEMS[self.rng.random_range(0..ITEMS.len())];
        let budget = self.rng.random_range(20..500_i64);
        let bidders = self.rng.random_range(2..10_i64);
        let minutes = self.rng.random_range(1..30_i64);
        let text = format!(
            "(item = \"{item}\" and price <= {budget} and bidders < {bidders}) \
             or (closing_in <= {minutes} and price <= {half} and not (reserve_met = true))",
            half = budget / 2
        );
        Expr::parse(&text).expect("generated subscription parses")
    }

    /// A batch of subscriptions.
    pub fn subscriptions(&mut self, n: usize) -> Vec<Expr> {
        (0..n).map(|_| self.subscription()).collect()
    }

    /// One bid/auction-state event.
    pub fn bid(&mut self) -> Event {
        Event::builder()
            .attr("item", ITEMS[self.rng.random_range(0..ITEMS.len())])
            .attr("price", self.rng.random_range(5..600_i64))
            .attr("bidders", self.rng.random_range(0..15_i64))
            .attr("closing_in", self.rng.random_range(0..120_i64))
            .attr("reserve_met", self.rng.random_bool(0.4))
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subscriptions_have_disjunctive_structure() {
        let mut s = AuctionScenario::new(1);
        for _ in 0..10 {
            let e = s.subscription();
            assert!(!e.is_conjunctive());
            assert!(e.contains_not(), "scenario exercises negation");
        }
    }

    #[test]
    fn bids_sometimes_match() {
        let mut s = AuctionScenario::new(2);
        let subs = s.subscriptions(30);
        let mut hits = 0;
        for _ in 0..300 {
            let b = s.bid();
            hits += subs.iter().filter(|e| e.eval_event(&b)).count();
        }
        assert!(hits > 0);
    }
}
