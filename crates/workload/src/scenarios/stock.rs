//! Stock-ticker scenario.

use boolmatch_expr::Expr;
use boolmatch_types::Event;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SYMBOLS: [&str; 12] = [
    "IBM", "AAPL", "MSFT", "GOOG", "AMZN", "TSLA", "NVDA", "ORCL", "SAP", "NZX", "ASX", "BHP",
];

/// Generates stock-market subscriptions and ticks.
///
/// Subscriptions combine a symbol with *alternative* price conditions
/// ("breaks out above hi or dips below lo") plus an optional volume
/// guard — naturally non-canonical Boolean structure.
///
/// # Examples
///
/// ```
/// use boolmatch_workload::scenarios::StockScenario;
///
/// let mut s = StockScenario::new(7);
/// let sub = s.subscription();
/// assert!(sub.to_string().contains("symbol"));
/// let tick = s.tick();
/// assert!(tick.contains("price"));
/// ```
#[derive(Debug, Clone)]
pub struct StockScenario {
    rng: StdRng,
}

impl StockScenario {
    /// Creates a deterministic scenario.
    pub fn new(seed: u64) -> Self {
        StockScenario {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn symbol(&mut self) -> &'static str {
        SYMBOLS[self.rng.random_range(0..SYMBOLS.len())]
    }

    /// One subscription, e.g.
    /// `symbol = "IBM" and (price > 120.0 or price <= 80.0) and volume >= 1000`.
    pub fn subscription(&mut self) -> Expr {
        let symbol = self.symbol();
        let mid = self.rng.random_range(20.0..200.0_f64);
        let hi = mid * self.rng.random_range(1.05..1.5);
        let lo = mid * self.rng.random_range(0.5..0.95);
        let volume = self.rng.random_range(100..10_000_i64);
        let text = if self.rng.random_bool(0.5) {
            format!(
                "symbol = \"{symbol}\" and (price > {hi:.2} or price <= {lo:.2}) and volume >= {volume}"
            )
        } else {
            format!(
                "symbol = \"{symbol}\" and (price > {hi:.2} or (price <= {lo:.2} and volume >= {volume}))"
            )
        };
        Expr::parse(&text).expect("generated subscription parses")
    }

    /// A batch of subscriptions.
    pub fn subscriptions(&mut self, n: usize) -> Vec<Expr> {
        (0..n).map(|_| self.subscription()).collect()
    }

    /// One market tick event.
    pub fn tick(&mut self) -> Event {
        let symbol = self.symbol();
        Event::builder()
            .attr("symbol", symbol)
            .attr(
                "price",
                (self.rng.random_range(10.0..250.0_f64) * 100.0).round() / 100.0,
            )
            .attr("volume", self.rng.random_range(1..20_000_i64))
            .attr(
                "exchange",
                if self.rng.random_bool(0.5) {
                    "NYSE"
                } else {
                    "NZX"
                },
            )
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subscriptions_parse_and_have_alternatives() {
        let mut s = StockScenario::new(1);
        for _ in 0..20 {
            let e = s.subscription();
            assert!(e.predicate_count() >= 3);
            assert!(
                !e.is_conjunctive(),
                "scenario is deliberately non-canonical"
            );
        }
    }

    #[test]
    fn ticks_carry_the_expected_attributes() {
        let mut s = StockScenario::new(2);
        let t = s.tick();
        for attr in ["symbol", "price", "volume", "exchange"] {
            assert!(t.contains(attr), "{attr} missing");
        }
    }

    #[test]
    fn some_ticks_match_some_subscriptions() {
        let mut s = StockScenario::new(3);
        let subs = s.subscriptions(50);
        let mut matches = 0usize;
        for _ in 0..500 {
            let t = s.tick();
            matches += subs.iter().filter(|e| e.eval_event(&t)).count();
        }
        assert!(matches > 0, "workload must produce hits");
    }
}
