//! Subscription-churn scenario: sustained subscribe/unsubscribe
//! interleaved with publishing.
//!
//! Production pub/sub brokers are never write-quiet: users join, leave
//! and retune their interests while the event stream keeps flowing.
//! This scenario generates that mixed operation stream
//! deterministically, so benches (`shard_scaling`) and stress tests can
//! replay identical churn against differently-configured brokers. The
//! sharded broker exists for exactly this workload — every
//! subscribe/unsubscribe write-locks one shard, so churn contends with
//! `1/S` of matching instead of all of it.

use boolmatch_expr::Expr;
use boolmatch_types::Event;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::StockScenario;

/// One operation of a churn stream.
///
/// `Unsubscribe` carries an *index into the consumer's list of live
/// subscriptions* (oldest first) rather than a broker id: the generator
/// does not know which ids the consumer's broker or engine handed out,
/// and an index keeps the stream replayable against any of them.
#[derive(Debug, Clone)]
pub enum ChurnOp {
    /// Register this subscription (push onto the live list).
    Subscribe(Expr),
    /// Remove the subscription at this index of the consumer's live
    /// list. Always below the current live count; consumers replaying
    /// one stream against several brokers must share a removal
    /// discipline (e.g. `Vec::remove`) for their live lists to agree.
    Unsubscribe(usize),
    /// Publish this event.
    Publish(Event),
}

/// Deterministic generator of interleaved subscribe/unsubscribe/publish
/// operations over the stock workload.
///
/// The stream holds the live-subscription count near `target_live`:
/// below target, registration is favoured; at or above it,
/// subscribe/unsubscribe are balanced so the count hovers while ids
/// keep churning.
///
/// # Examples
///
/// ```
/// use boolmatch_workload::scenarios::{ChurnOp, ChurnScenario};
///
/// let mut churn = ChurnScenario::new(7, 100);
/// let mut live: Vec<u32> = Vec::new(); // stand-in for subscription handles
/// for op in churn.ops(1_000) {
///     match op {
///         ChurnOp::Subscribe(_) => live.push(0),
///         ChurnOp::Unsubscribe(i) => {
///             live.remove(i);
///         }
///         ChurnOp::Publish(event) => assert!(event.contains("price")),
///     }
/// }
/// assert_eq!(live.len(), churn.live());
/// ```
#[derive(Debug, Clone)]
pub struct ChurnScenario {
    rng: StdRng,
    stock: StockScenario,
    live: usize,
    target_live: usize,
    publish_ratio: f64,
}

impl ChurnScenario {
    /// Creates a deterministic scenario that keeps roughly
    /// `target_live` subscriptions alive. Half of the operations are
    /// publishes by default ([`ChurnScenario::with_publish_ratio`]).
    pub fn new(seed: u64, target_live: usize) -> Self {
        ChurnScenario {
            rng: StdRng::seed_from_u64(seed),
            stock: StockScenario::new(seed.wrapping_mul(0x9e37_79b9).wrapping_add(1)),
            live: 0,
            target_live: target_live.max(1),
            publish_ratio: 0.5,
        }
    }

    /// Sets the fraction of operations that are publishes (the rest
    /// split between subscribe and unsubscribe). Clamped to `[0, 1]`.
    #[must_use]
    pub fn with_publish_ratio(mut self, ratio: f64) -> Self {
        self.publish_ratio = ratio.clamp(0.0, 1.0);
        self
    }

    /// Live subscriptions after the operations generated so far (the
    /// length the consumer's live list must have).
    pub fn live(&self) -> usize {
        self.live
    }

    /// The next operation.
    pub fn next_op(&mut self) -> ChurnOp {
        if self.live > 0 && self.rng.random_bool(self.publish_ratio) {
            return ChurnOp::Publish(self.stock.tick());
        }
        // Registration pressure proportional to how far below target we
        // are: certain at 0 live, 50/50 at target, floor of 1/4 beyond.
        let deficit = 1.0 - self.live as f64 / (2.0 * self.target_live as f64);
        if self.live == 0 || self.rng.random_bool(deficit.clamp(0.25, 1.0)) {
            self.live += 1;
            ChurnOp::Subscribe(self.stock.subscription())
        } else {
            self.live -= 1;
            ChurnOp::Unsubscribe(self.rng.random_range(0..self.live + 1))
        }
    }

    /// A batch of operations.
    pub fn ops(&mut self, n: usize) -> Vec<ChurnOp> {
        (0..n).map(|_| self.next_op()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_deterministic() {
        let a = ChurnScenario::new(42, 50).ops(500);
        let b = ChurnScenario::new(42, 50).ops(500);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            match (x, y) {
                (ChurnOp::Subscribe(e1), ChurnOp::Subscribe(e2)) => {
                    assert_eq!(e1.to_string(), e2.to_string());
                }
                (ChurnOp::Unsubscribe(i1), ChurnOp::Unsubscribe(i2)) => assert_eq!(i1, i2),
                (ChurnOp::Publish(e1), ChurnOp::Publish(e2)) => {
                    assert_eq!(e1.get("price"), e2.get("price"));
                }
                (a, b) => panic!("streams diverge: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn unsubscribe_indexes_are_always_valid() {
        let mut churn = ChurnScenario::new(7, 30);
        let mut live = 0usize;
        for op in churn.ops(3_000) {
            match op {
                ChurnOp::Subscribe(_) => live += 1,
                ChurnOp::Unsubscribe(i) => {
                    assert!(i < live, "index {i} out of {live} live subscriptions");
                    live -= 1;
                }
                ChurnOp::Publish(_) => {}
            }
        }
        assert_eq!(live, churn.live());
    }

    #[test]
    fn live_count_hovers_near_target() {
        let mut churn = ChurnScenario::new(3, 40);
        let _ = churn.ops(4_000);
        assert!(
            churn.live() > 10 && churn.live() < 120,
            "live count {} drifted far from target 40",
            churn.live()
        );
    }

    #[test]
    fn publish_ratio_is_respected() {
        let mut churn = ChurnScenario::new(5, 20).with_publish_ratio(0.8);
        let ops = churn.ops(2_000);
        let publishes = ops
            .iter()
            .filter(|op| matches!(op, ChurnOp::Publish(_)))
            .count();
        assert!(
            (1_400..=1_800).contains(&publishes),
            "expected ~80% publishes, got {publishes}/2000"
        );
        // And a churn-only stream publishes nothing.
        let mut quiet = ChurnScenario::new(5, 20).with_publish_ratio(0.0);
        assert!(quiet
            .ops(200)
            .iter()
            .all(|op| !matches!(op, ChurnOp::Publish(_))));
    }
}
