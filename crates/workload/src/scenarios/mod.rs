//! Realistic domain scenarios for examples, demos and end-to-end
//! tests.
//!
//! The paper motivates expressive subscriptions with application
//! domains where interests are *not* naturally conjunctive. These
//! generators produce such workloads: stock tickers (numeric ranges
//! with alternatives), news alerting (string search), auction
//! monitoring (mixed), subscription churn (sustained
//! subscribe/unsubscribe interleaved with publishing, for the sharded
//! broker's write path), rebalancing (churn with periodic
//! shard-rebalance and shard-resize marks, for the live-migration
//! equivalence tests and benches), hot keys (a minority of
//! subscriptions absorbing most matches, for the match-frequency
//! rebalancing policy), selective populations (partitionable
//! attribute groups, for content-aware clustered placement and shard
//! pruning — with an or-rooted unprunable control stream), slow
//! consumers (full fan-out pressure with scripted stall / burst /
//! disconnect / panic faults, for the asynchronous delivery tier),
//! and throughput (a high-rate stream over a compact hot-key
//! universe, for the batch-matching kernels and the `batch/*` bench
//! grid).

mod auction;
mod churn;
mod hotkey;
mod news;
mod rebalance;
mod selective;
mod slow_consumer;
mod stock;
mod throughput;

pub use auction::AuctionScenario;
pub use churn::{ChurnOp, ChurnScenario};
pub use hotkey::HotKeyScenario;
pub use news::NewsScenario;
pub use rebalance::{RebalanceOp, RebalanceScenario};
pub use selective::SelectiveScenario;
pub use slow_consumer::{
    ConsumerDirective, FaultAction, FaultDriver, FaultEvent, FaultPlan, SlowConsumerScenario,
};
pub use stock::StockScenario;
pub use throughput::ThroughputScenario;
