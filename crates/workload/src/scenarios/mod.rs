//! Realistic domain scenarios for examples, demos and end-to-end
//! tests.
//!
//! The paper motivates expressive subscriptions with application
//! domains where interests are *not* naturally conjunctive. These
//! generators produce such workloads: stock tickers (numeric ranges
//! with alternatives), news alerting (string search), and auction
//! monitoring (mixed).

mod auction;
mod news;
mod stock;

pub use auction::AuctionScenario;
pub use news::NewsScenario;
pub use stock::StockScenario;
