//! The analytic memory wall.

use std::time::Duration;

use boolmatch_core::MemoryUsage;

/// Models the paper's 512 MB machine analytically (DESIGN.md,
/// substitution 1).
///
/// The paper's "sharp bends" (§4.1) appear when an engine's working set
/// outgrows main memory and the operating system starts page-swapping:
/// every byte beyond the budget is touched from disk instead of RAM.
/// Given a *measured* in-RAM duration and the engine's working-set
/// size, [`MemoryModel::modeled`] returns the duration that run would
/// have taken on the budgeted machine:
///
/// ```text
/// modeled = measured × (1 + penalty × overflow/working_set)
/// ```
///
/// where `overflow = working_set − budget` (0 when it fits). The
/// default penalty of 1 000 reflects a circa-2005 ratio of random
/// disk-page access (~0.1 ms for a 4 KiB page ≈ tens of µs/KB) to RAM
/// access — large enough that the curve visibly kinks at the wall, as
/// in Fig. 3.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use boolmatch_workload::MemoryModel;
///
/// let wall = MemoryModel::paper();
/// let fits = wall.modeled(Duration::from_millis(10), 100 << 20);
/// assert_eq!(fits, Duration::from_millis(10));
/// let thrashes = wall.modeled(Duration::from_millis(10), 1024 << 20);
/// assert!(thrashes > Duration::from_millis(100));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryModel {
    /// Memory available to the engine, in bytes.
    pub budget_bytes: u64,
    /// Slowdown factor applied to the non-resident fraction of the
    /// working set.
    pub swap_penalty: f64,
}

impl MemoryModel {
    /// The paper's machine: 512 MB total, minus a 64 MB allowance for
    /// the operating system and the process image.
    pub fn paper() -> Self {
        MemoryModel {
            budget_bytes: (512 - 64) * 1024 * 1024,
            swap_penalty: 1_000.0,
        }
    }

    /// A model with a custom budget and the default penalty.
    pub fn with_budget(budget_bytes: u64) -> Self {
        MemoryModel {
            budget_bytes,
            swap_penalty: MemoryModel::paper().swap_penalty,
        }
    }

    /// Whether a working set of `bytes` fits in the budget.
    pub fn fits(&self, bytes: usize) -> bool {
        bytes as u64 <= self.budget_bytes
    }

    /// The modeled duration for a measured duration and working set;
    /// see the type docs for the formula.
    pub fn modeled(&self, measured: Duration, working_set_bytes: usize) -> Duration {
        let ws = working_set_bytes as f64;
        let budget = self.budget_bytes as f64;
        if ws <= budget || ws == 0.0 {
            return measured;
        }
        let overflow_fraction = (ws - budget) / ws;
        measured.mul_f64(1.0 + self.swap_penalty * overflow_fraction)
    }

    /// Convenience: the paper-faithful working set of an engine — its
    /// phase-2 structures only (the paper's experiments never build
    /// phase-1 indexes; see [`MemoryUsage::phase2_bytes`]).
    pub fn modeled_for(&self, measured: Duration, memory: &MemoryUsage) -> Duration {
        self.modeled(measured, memory.phase2_bytes())
    }
}

impl Default for MemoryModel {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn within_budget_is_identity() {
        let m = MemoryModel::paper();
        let d = Duration::from_millis(5);
        assert_eq!(m.modeled(d, 0), d);
        assert_eq!(m.modeled(d, m.budget_bytes as usize), d);
    }

    #[test]
    fn over_budget_scales_with_overflow_fraction() {
        let m = MemoryModel {
            budget_bytes: 100,
            swap_penalty: 10.0,
        };
        let d = Duration::from_secs(1);
        // 50% overflow: 1 + 10*0.5 = 6x
        assert_eq!(m.modeled(d, 200), Duration::from_secs(6));
        // 75% overflow: 1 + 10*0.75 = 8.5x
        assert_eq!(m.modeled(d, 400), Duration::from_secs_f64(8.5));
    }

    #[test]
    fn monotonic_in_working_set() {
        let m = MemoryModel::paper();
        let d = Duration::from_millis(10);
        let mut last = Duration::ZERO;
        for mb in [100u64, 400, 448, 600, 1_000, 4_000] {
            let t = m.modeled(d, (mb << 20) as usize);
            assert!(t >= last, "non-monotonic at {mb} MB");
            last = t;
        }
    }

    #[test]
    fn fits_matches_budget() {
        let m = MemoryModel::with_budget(1000);
        assert!(m.fits(1000));
        assert!(!m.fits(1001));
    }

    #[test]
    fn modeled_for_uses_phase2_bytes() {
        let m = MemoryModel::with_budget(100);
        let mem = MemoryUsage {
            association: 150,
            predicates: 1_000_000, // excluded from phase-2 working set
            ..Default::default()
        };
        let d = Duration::from_secs(1);
        assert_eq!(m.modeled_for(d, &mem), m.modeled(d, 150));
    }
}
