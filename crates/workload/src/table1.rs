//! The paper's Table 1, as data.

/// The experimental parameters of the paper's Table 1, with helpers
/// for the quantities derived from them.
///
/// | Parameter | Paper value |
/// |---|---|
/// | CPU speed | 1.8 GHz |
/// | Total machine memory | 512 MB |
/// | Number of subscriptions | 2,000 – 5,000,000 |
/// | Original (unique) predicates per subscription | 6 to 10 |
/// | Subscriptions per subscription after transformation | 8 to 32 |
/// | Used Boolean operators | AND, OR |
/// | Matching predicates per event | 5,000 – 10,000 |
///
/// # Examples
///
/// ```
/// use boolmatch_workload::Table1Config;
///
/// let t = Table1Config::paper();
/// assert_eq!(t.transformation_factor(6), 8);
/// assert_eq!(t.transformation_factor(10), 32);
/// assert_eq!(t.machine_memory_bytes, 512 * 1024 * 1024);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Config {
    /// CPU speed of the paper's test machine, in GHz.
    pub cpu_ghz: f64,
    /// Total memory of the paper's test machine, in bytes.
    pub machine_memory_bytes: u64,
    /// Smallest subscription count evaluated.
    pub min_subscriptions: usize,
    /// Largest subscription count evaluated.
    pub max_subscriptions: usize,
    /// Predicates per subscription, per figure row (Fig. 3 a/d, b/e,
    /// c/f).
    pub predicates_per_subscription: [usize; 3],
    /// Fulfilled predicates per event, per figure column.
    pub fulfilled_per_event: [usize; 2],
}

impl Table1Config {
    /// The paper's values, verbatim.
    pub fn paper() -> Self {
        Table1Config {
            cpu_ghz: 1.8,
            machine_memory_bytes: 512 * 1024 * 1024,
            min_subscriptions: 2_000,
            max_subscriptions: 5_000_000,
            predicates_per_subscription: [6, 8, 10],
            fulfilled_per_event: [5_000, 10_000],
        }
    }

    /// How many conjunctive subscriptions one original subscription
    /// becomes after DNF transformation: `2^(|p|/2)` for the paper's
    /// AND-of-binary-ORs shape ("8 to 32").
    pub fn transformation_factor(&self, predicates_per_sub: usize) -> usize {
        1usize << (predicates_per_sub / 2)
    }

    /// Predicates per transformed conjunction: `|p|/2` (paper §4).
    pub fn transformed_predicates(&self, predicates_per_sub: usize) -> usize {
        predicates_per_sub / 2
    }

    /// The six Fig. 3 panels as `(label, predicates, fulfilled)`.
    pub fn figure3_panels(&self) -> [(char, usize, usize); 6] {
        [
            (
                'a',
                self.predicates_per_subscription[0],
                self.fulfilled_per_event[0],
            ),
            (
                'b',
                self.predicates_per_subscription[1],
                self.fulfilled_per_event[0],
            ),
            (
                'c',
                self.predicates_per_subscription[2],
                self.fulfilled_per_event[0],
            ),
            (
                'd',
                self.predicates_per_subscription[0],
                self.fulfilled_per_event[1],
            ),
            (
                'e',
                self.predicates_per_subscription[1],
                self.fulfilled_per_event[1],
            ),
            (
                'f',
                self.predicates_per_subscription[2],
                self.fulfilled_per_event[1],
            ),
        ]
    }

    /// The subscription counts the paper plots for a panel, capped at
    /// `max`: the figures sweep to 5 M for 6 predicates, 4 M for 8 and
    /// 2.5 M for 10 (abscissae of Fig. 3).
    pub fn panel_subscription_counts(&self, predicates: usize, cap: usize) -> Vec<usize> {
        let panel_max: usize = match predicates {
            6 => 5_000_000,
            8 => 4_000_000,
            10 => 2_500_000,
            _ => self.max_subscriptions,
        };
        let top = panel_max.min(cap);
        // Half-decade-ish ladder from 2k, matching the plot density.
        let mut counts = vec![];
        let mut n = self.min_subscriptions;
        while n < top {
            counts.push(n);
            n = if n < 10_000 {
                n * 5
            } else if n < 100_000 {
                n * 5 / 2
            } else {
                n * 2
            };
        }
        counts.push(top);
        counts.dedup();
        counts
    }
}

impl Default for Table1Config {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values() {
        let t = Table1Config::paper();
        assert_eq!(t.cpu_ghz, 1.8);
        assert_eq!(t.min_subscriptions, 2_000);
        assert_eq!(t.max_subscriptions, 5_000_000);
        assert_eq!(t.predicates_per_subscription, [6, 8, 10]);
        assert_eq!(t.fulfilled_per_event, [5_000, 10_000]);
    }

    #[test]
    fn transformation_factors_match_table1_row() {
        let t = Table1Config::paper();
        // "Number of subscriptions per subscription after
        // transformation: 8 to 32"
        assert_eq!(t.transformation_factor(6), 8);
        assert_eq!(t.transformation_factor(8), 16);
        assert_eq!(t.transformation_factor(10), 32);
        // "... with |p|/2 predicates each"
        assert_eq!(t.transformed_predicates(6), 3);
        assert_eq!(t.transformed_predicates(10), 5);
    }

    #[test]
    fn six_panels_cover_the_grid() {
        let t = Table1Config::paper();
        let panels = t.figure3_panels();
        assert_eq!(panels.len(), 6);
        assert_eq!(panels[0], ('a', 6, 5_000));
        assert_eq!(panels[5], ('f', 10, 10_000));
    }

    #[test]
    fn panel_counts_are_monotonic_and_capped() {
        let t = Table1Config::paper();
        let counts = t.panel_subscription_counts(10, 400_000);
        assert_eq!(*counts.first().unwrap(), 2_000);
        assert_eq!(*counts.last().unwrap(), 400_000);
        assert!(counts.windows(2).all(|w| w[0] < w[1]));
        // Uncapped sweep reaches the paper's panel maximum.
        let full = t.panel_subscription_counts(6, usize::MAX);
        assert_eq!(*full.last().unwrap(), 5_000_000);
        let full10 = t.panel_subscription_counts(10, usize::MAX);
        assert_eq!(*full10.last().unwrap(), 2_500_000);
    }
}
