//! Event and fulfilled-set generation.

use boolmatch_core::PredicateId;
use boolmatch_expr::{CompareOp, Expr, Predicate};
use boolmatch_types::{Event, EventBuilder, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Samples `k` **distinct** fulfilled predicate ids from
/// `0..universe` — the synthetic phase-1 output the paper's Fig. 3
/// parameterises as "matching predicates per event".
///
/// # Panics
///
/// Panics if `k > universe`.
///
/// # Examples
///
/// ```
/// use boolmatch_workload::synthetic_fulfilled;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let ids = synthetic_fulfilled(&mut rng, 1_000, 50);
/// assert_eq!(ids.len(), 50);
/// let mut dedup = ids.clone();
/// dedup.sort();
/// dedup.dedup();
/// assert_eq!(dedup.len(), 50);
/// ```
pub fn synthetic_fulfilled(rng: &mut StdRng, universe: usize, k: usize) -> Vec<PredicateId> {
    assert!(k <= universe, "cannot fulfil {k} of {universe} predicates");
    rand::seq::index::sample(rng, universe, k)
        .into_iter()
        .map(PredicateId::from_index)
        .collect()
}

/// Builds an event that satisfies `expr`, if the expression is
/// satisfiable by a single consistent assignment findable by this
/// simple strategy (AND merges children, OR tries branches in order).
///
/// Negated subexpressions are handled by satisfying the complement
/// leaves. Conflicting attribute requirements make a branch fail;
/// `None` means no branch worked — not a proof of unsatisfiability.
///
/// # Examples
///
/// ```
/// use boolmatch_expr::Expr;
/// use boolmatch_workload::satisfying_event;
///
/// let e = Expr::parse("(a > 10 or a <= 5) and b = 1")?;
/// let event = satisfying_event(&e).expect("satisfiable");
/// assert!(e.eval_event(&event));
/// # Ok::<(), boolmatch_expr::ParseError>(())
/// ```
pub fn satisfying_event(expr: &Expr) -> Option<Event> {
    let nnf = boolmatch_expr::transform::eliminate_not(expr);
    let mut pairs: Vec<(String, Value)> = Vec::new();
    if !satisfy(&nnf, &mut pairs) {
        return None;
    }
    let event = Event::from_pairs(pairs.iter().map(|(n, v)| (n.as_str(), v.clone())));
    // The merge strategy is sound but double-check against the original
    // semantics (NOT handling can diverge on partial events).
    expr.eval_event(&event).then_some(event)
}

fn satisfy(expr: &Expr, pairs: &mut Vec<(String, Value)>) -> bool {
    match expr {
        Expr::Pred(p) => match witness(p) {
            Some(v) => merge(pairs, p.attr(), v),
            None => false,
        },
        Expr::And(cs) => {
            let checkpoint = pairs.len();
            for c in cs {
                if !satisfy(c, pairs) {
                    pairs.truncate(checkpoint);
                    return false;
                }
            }
            true
        }
        Expr::Or(cs) => {
            for c in cs {
                let checkpoint = pairs.len();
                if satisfy(c, pairs) {
                    return true;
                }
                pairs.truncate(checkpoint);
            }
            false
        }
        Expr::Not(_) => unreachable!("negation eliminated before satisfy"),
    }
}

/// A value fulfilling the predicate, when one obviously exists.
fn witness(p: &Predicate) -> Option<Value> {
    let v = p.value();
    match p.op() {
        CompareOp::Eq | CompareOp::Le | CompareOp::Ge => Some(v.clone()),
        CompareOp::Ne | CompareOp::Gt => match v {
            Value::Int(i) => i.checked_add(1).map(Value::from),
            Value::Float(x) => Some(Value::from(x + 1.0)),
            Value::Str(s) => Some(Value::from(format!("{s}~"))),
            Value::Bool(b) => Some(Value::from(!b)),
        },
        CompareOp::Lt => match v {
            Value::Int(i) => i.checked_sub(1).map(Value::from),
            Value::Float(x) => Some(Value::from(x - 1.0)),
            Value::Str(s) => (!s.is_empty()).then(|| Value::from("")),
            Value::Bool(b) => b.then(|| Value::from(false)),
        },
        CompareOp::Prefix | CompareOp::Contains => v.as_str().map(Value::from),
        CompareOp::NotPrefix | CompareOp::NotContains => {
            v.as_str().map(|s| Value::from(format!("\u{10FFFF}{s}")))
        }
    }
}

/// Merges an attribute requirement; existing values must agree exactly.
fn merge(pairs: &mut Vec<(String, Value)>, attr: &str, value: Value) -> bool {
    if let Some((_, existing)) = pairs.iter().find(|(n, _)| n == attr) {
        return *existing == value;
    }
    pairs.push((attr.to_owned(), value));
    true
}

/// Generates full events for end-to-end (both-phase) runs: a blend of
/// events that match chosen subscriptions and pure noise.
///
/// # Examples
///
/// ```
/// use boolmatch_expr::Expr;
/// use boolmatch_workload::EventGenerator;
///
/// let corpus = vec![Expr::parse("a0 > 10 and a1 <= 5").unwrap()];
/// let mut g = EventGenerator::new(7, corpus);
/// let hit = g.matching_event(0).expect("satisfiable");
/// let noise = g.noise_event(8);
/// assert!(hit.len() >= 1);
/// assert_eq!(noise.len(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct EventGenerator {
    rng: StdRng,
    corpus: Vec<Expr>,
    domain: i64,
}

impl EventGenerator {
    /// Creates a generator over a subscription corpus.
    pub fn new(seed: u64, corpus: Vec<Expr>) -> Self {
        EventGenerator {
            rng: StdRng::seed_from_u64(seed),
            corpus,
            domain: 1_000_000,
        }
    }

    /// An event satisfying subscription `index`, when constructible.
    pub fn matching_event(&mut self, index: usize) -> Option<Event> {
        satisfying_event(&self.corpus[index])
    }

    /// An event satisfying a uniformly chosen subscription; returns the
    /// chosen index alongside.
    pub fn random_matching_event(&mut self) -> Option<(usize, Event)> {
        if self.corpus.is_empty() {
            return None;
        }
        let index = self.rng.random_range(0..self.corpus.len());
        self.matching_event(index).map(|e| (index, e))
    }

    /// A noise event over `width` random attributes of the corpus's
    /// `a{n}` namespace with random values.
    pub fn noise_event(&mut self, width: usize) -> Event {
        let mut b = EventBuilder::new();
        for _ in 0..width {
            let attr = format!("a{}", self.rng.random_range(0..1_000_000u64));
            let value = self.rng.random_range(0..self.domain);
            b.set(&attr, value);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_fulfilled_is_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(42);
        let ids = synthetic_fulfilled(&mut rng, 100, 100);
        assert_eq!(ids.len(), 100);
        let mut idx: Vec<usize> = ids.iter().map(|i| i.index()).collect();
        idx.sort();
        assert_eq!(idx, (0..100).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "cannot fulfil")]
    fn oversampling_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        synthetic_fulfilled(&mut rng, 10, 11);
    }

    #[test]
    fn satisfying_event_for_various_shapes() {
        let cases = [
            "a = 1",
            "a > 10 and b <= 5",
            "(a > 10 or a <= 5) and (b = 1 or c != 2)",
            "not (a = 1) and b >= 3",
            "s prefix \"ab\" and t contains \"xy\"",
        ];
        for text in cases {
            let e = Expr::parse(text).unwrap();
            let event = satisfying_event(&e).unwrap_or_else(|| panic!("no witness for {text}"));
            assert!(e.eval_event(&event), "witness fails for {text}: {event}");
        }
    }

    #[test]
    fn conflicting_conjunction_yields_none_or_valid() {
        // a = 1 and a = 2 is unsatisfiable.
        let e = Expr::parse("a = 1 and a = 2").unwrap();
        assert!(satisfying_event(&e).is_none());
        // ...but an OR around it can still be satisfied.
        let e = Expr::parse("(a = 1 and a = 2) or b = 3").unwrap();
        let event = satisfying_event(&e).unwrap();
        assert!(e.eval_event(&event));
    }

    #[test]
    fn generator_events_match_their_subscription() {
        let mut gen = SubGen::default_corpus();
        for i in 0..gen.corpus.len() {
            let event = gen.matching_event(i).unwrap();
            assert!(gen.corpus[i].eval_event(&event), "subscription {i}");
        }
    }

    // Small helper to build a corpus like the sweep harness does.
    struct SubGen;
    impl SubGen {
        fn default_corpus() -> EventGenerator {
            let corpus = crate::SubscriptionGenerator::new(5, crate::Shape::AndOfOrPairs, 6)
                .generate_batch(20);
            EventGenerator::new(6, corpus)
        }
    }

    #[test]
    fn noise_events_have_requested_width() {
        let mut g = EventGenerator::new(1, vec![]);
        assert_eq!(g.noise_event(5).len(), 5);
        assert!(g.random_matching_event().is_none());
    }
}
