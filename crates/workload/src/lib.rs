//! Workload generation and experiment harness support for the
//! `boolmatch` reproduction.
//!
//! Everything the paper's §4 experiments need, as a library:
//!
//! * [`Table1Config`] — the paper's Table 1 parameters, verbatim, plus
//!   derived quantities (the 2^(|p|/2) transformation factor),
//! * [`SubscriptionGenerator`] — subscriptions of the paper's shape
//!   (AND of |p|/2 binary ORs with unique predicates) and several
//!   ablation shapes,
//! * [`synthetic_fulfilled`] / [`EventGenerator`] — phase-1 output
//!   synthesis (the paper parameterises on "matching predicates per
//!   event") and full concrete events for end-to-end runs,
//! * [`MemoryModel`] — the analytic 512 MB memory wall standing in for
//!   the paper's physical machine (DESIGN.md, substitution 1),
//! * [`sweep`] — the parameter-sweep runner that regenerates the
//!   Fig. 3 panels and the memory table.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod eventgen;
mod memwall;
pub mod scenarios;
mod subgen;
pub mod sweep;
mod table1;

pub use eventgen::{satisfying_event, synthetic_fulfilled, EventGenerator};
pub use memwall::MemoryModel;
pub use subgen::{Shape, SubscriptionGenerator};
pub use table1::Table1Config;
