//! The Boolean expression tree.

use std::fmt;

use boolmatch_types::Event;

use crate::{ParseError, Predicate};

/// An arbitrary Boolean expression over [`Predicate`]s.
///
/// `And`/`Or` are n-ary (paper §3.1: "binary operators are treated as
/// n-ary ones due to compacting subscription trees"); [`Expr::and`] and
/// [`Expr::or`] normalise the trivial cases so that well-formed
/// expressions never contain empty or single-child conjunctions.
///
/// `Expr` is the *source* form of a subscription. The non-canonical
/// engine compiles it into a compact byte encoding
/// (`boolmatch-core::encode`); the canonical baselines run it through
/// [`crate::transform::to_dnf`] first.
///
/// # Examples
///
/// ```
/// use boolmatch_expr::{CompareOp, Expr, Predicate};
/// use boolmatch_types::Event;
///
/// let e = Expr::and(vec![
///     Expr::pred(Predicate::new("a", CompareOp::Gt, 10_i64)),
///     !(Expr::pred(Predicate::new("b", CompareOp::Eq, "off"))),
/// ]);
/// let ev = Event::builder().attr("a", 11_i64).attr("b", "on").build();
/// assert!(e.eval_event(&ev));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Expr {
    /// A leaf predicate.
    Pred(Predicate),
    /// N-ary conjunction. Invariant (maintained by [`Expr::and`]): at
    /// least two children.
    And(Vec<Expr>),
    /// N-ary disjunction. Invariant (maintained by [`Expr::or`]): at
    /// least two children.
    Or(Vec<Expr>),
    /// Negation.
    Not(Box<Expr>),
}

impl Expr {
    /// Wraps a predicate as an expression.
    pub fn pred(p: Predicate) -> Expr {
        Expr::Pred(p)
    }

    /// Builds a conjunction, normalising the degenerate cases: an empty
    /// vector panics (there is no "constant true" subscription), a
    /// single child is returned unchanged.
    ///
    /// # Panics
    ///
    /// Panics when `children` is empty.
    pub fn and(mut children: Vec<Expr>) -> Expr {
        assert!(!children.is_empty(), "conjunction needs at least one child");
        if children.len() == 1 {
            // lint: allow(panic-policy, reason = "unreachable: this branch requires len() == 1, so pop() yields Some")
            children.pop().unwrap()
        } else {
            Expr::And(children)
        }
    }

    /// Builds a disjunction; same normalisation as [`Expr::and`].
    ///
    /// # Panics
    ///
    /// Panics when `children` is empty.
    pub fn or(mut children: Vec<Expr>) -> Expr {
        assert!(!children.is_empty(), "disjunction needs at least one child");
        if children.len() == 1 {
            // lint: allow(panic-policy, reason = "unreachable: this branch requires len() == 1, so pop() yields Some")
            children.pop().unwrap()
        } else {
            Expr::Or(children)
        }
    }

    /// Parses an expression from the subscription language.
    ///
    /// The grammar (loosest to tightest binding):
    ///
    /// ```text
    /// or-expr   := and-expr (("or" | "||") and-expr)*
    /// and-expr  := not-expr (("and" | "&&") not-expr)*
    /// not-expr  := ("not" | "!") not-expr | primary
    /// primary   := "(" or-expr ")" | predicate
    /// predicate := IDENT op literal
    /// op        := "=" | "==" | "!=" | "<" | "<=" | ">" | ">=" |
    ///              "prefix" | "contains"
    /// literal   := INT | FLOAT | STRING | "true" | "false"
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] describing the offending token and its
    /// byte position.
    ///
    /// # Examples
    ///
    /// ```
    /// use boolmatch_expr::Expr;
    /// let e = Expr::parse("price > 10 and not (symbol = \"IBM\")")?;
    /// assert_eq!(e.predicate_count(), 2);
    /// # Ok::<(), boolmatch_expr::ParseError>(())
    /// ```
    pub fn parse(input: &str) -> Result<Expr, ParseError> {
        crate::parser::parse(input)
    }

    /// Evaluates the expression directly against an event.
    ///
    /// This is the *reference semantics* used by tests to validate the
    /// engines: a predicate is true iff the event carries its attribute
    /// with a satisfying value; `not` is logical negation of that.
    pub fn eval_event(&self, event: &Event) -> bool {
        self.eval_with(&mut |p| p.eval_event(event))
    }

    /// Evaluates with a caller-supplied predicate oracle.
    ///
    /// The engines use this with "is the predicate in the fulfilled
    /// set"; property tests use it with random truth assignments.
    pub fn eval_with(&self, oracle: &mut impl FnMut(&Predicate) -> bool) -> bool {
        match self {
            Expr::Pred(p) => oracle(p),
            Expr::And(cs) => cs.iter().all(|c| c.eval_with(oracle)),
            Expr::Or(cs) => cs.iter().any(|c| c.eval_with(oracle)),
            Expr::Not(c) => !c.eval_with(oracle),
        }
    }

    /// Visits every predicate in the expression, left to right,
    /// including duplicates.
    pub fn for_each_predicate(&self, f: &mut impl FnMut(&Predicate)) {
        match self {
            Expr::Pred(p) => f(p),
            Expr::And(cs) | Expr::Or(cs) => {
                for c in cs {
                    c.for_each_predicate(f);
                }
            }
            Expr::Not(c) => c.for_each_predicate(f),
        }
    }

    /// Collects the predicates of the expression in syntactic order
    /// (duplicates included).
    pub fn predicates(&self) -> Vec<&Predicate> {
        let mut out = Vec::new();
        collect(self, &mut out);
        return out;

        fn collect<'a>(e: &'a Expr, out: &mut Vec<&'a Predicate>) {
            match e {
                Expr::Pred(p) => out.push(p),
                Expr::And(cs) | Expr::Or(cs) => cs.iter().for_each(|c| collect(c, out)),
                Expr::Not(c) => collect(c, out),
            }
        }
    }

    /// Number of predicate leaves (duplicates counted).
    pub fn predicate_count(&self) -> usize {
        match self {
            Expr::Pred(_) => 1,
            Expr::And(cs) | Expr::Or(cs) => cs.iter().map(Expr::predicate_count).sum(),
            Expr::Not(c) => c.predicate_count(),
        }
    }

    /// Height of the tree; a lone predicate has depth 1.
    pub fn depth(&self) -> usize {
        match self {
            Expr::Pred(_) => 1,
            Expr::And(cs) | Expr::Or(cs) => 1 + cs.iter().map(Expr::depth).max().unwrap_or(0),
            Expr::Not(c) => 1 + c.depth(),
        }
    }

    /// Total node count (inner nodes + leaves).
    pub fn node_count(&self) -> usize {
        match self {
            Expr::Pred(_) => 1,
            Expr::And(cs) | Expr::Or(cs) => 1 + cs.iter().map(Expr::node_count).sum::<usize>(),
            Expr::Not(c) => 1 + c.node_count(),
        }
    }

    /// Whether the expression contains a `Not` node.
    pub fn contains_not(&self) -> bool {
        match self {
            Expr::Pred(_) => false,
            Expr::And(cs) | Expr::Or(cs) => cs.iter().any(Expr::contains_not),
            Expr::Not(_) => true,
        }
    }

    /// Whether the expression is a pure conjunction of predicates — the
    /// only form classic matching algorithms support natively.
    pub fn is_conjunctive(&self) -> bool {
        match self {
            Expr::Pred(_) => true,
            Expr::And(cs) => cs.iter().all(|c| matches!(c, Expr::Pred(_))),
            _ => false,
        }
    }

    /// Summary statistics used by workload reports and DESIGN ablations.
    pub fn stats(&self) -> ExprStats {
        let mut unique = std::collections::HashSet::new();
        self.for_each_predicate(&mut |p| {
            unique.insert(p.clone());
        });
        ExprStats {
            predicates: self.predicate_count(),
            unique_predicates: unique.len(),
            depth: self.depth(),
            nodes: self.node_count(),
            dnf_estimate: crate::transform::estimate_dnf_size(self),
        }
    }
}

impl From<Predicate> for Expr {
    fn from(p: Predicate) -> Self {
        Expr::Pred(p)
    }
}

/// Builds a negation. Double negation is collapsed.
///
/// `Not` is in the std prelude, so both `!expr` and the constructor
/// spelling `!(expr)` resolve here.
impl std::ops::Not for Expr {
    type Output = Expr;

    fn not(self) -> Expr {
        match self {
            Expr::Not(inner) => *inner,
            other => Expr::Not(Box::new(other)),
        }
    }
}

impl fmt::Display for Expr {
    /// Prints the expression in the subscription language; the output
    /// re-parses to an equal expression (round-trip tested).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn needs_parens(child: &Expr, parent_is_and: bool) -> bool {
            match child {
                Expr::Or(_) => parent_is_and,
                _ => false,
            }
        }
        match self {
            Expr::Pred(p) => write!(f, "{p}"),
            Expr::And(cs) => {
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " and ")?;
                    }
                    if needs_parens(c, true) {
                        write!(f, "({c})")?;
                    } else {
                        write!(f, "{c}")?;
                    }
                }
                Ok(())
            }
            Expr::Or(cs) => {
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " or ")?;
                    }
                    write!(f, "{c}")?;
                }
                Ok(())
            }
            Expr::Not(c) => match c.as_ref() {
                Expr::Pred(p) => write!(f, "not {p}"),
                inner => write!(f, "not ({inner})"),
            },
        }
    }
}

/// Summary statistics of an expression; see [`Expr::stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExprStats {
    /// Predicate leaves, duplicates counted.
    pub predicates: usize,
    /// Distinct predicates.
    pub unique_predicates: usize,
    /// Tree height.
    pub depth: usize,
    /// Total nodes.
    pub nodes: usize,
    /// Number of conjunctions a DNF transformation would produce
    /// (saturating; see [`crate::transform::estimate_dnf_size`]).
    pub dnf_estimate: u128,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CompareOp;

    fn p(attr: &str, op: CompareOp, v: i64) -> Expr {
        Expr::pred(Predicate::new(attr, op, v))
    }

    fn fig1() -> Expr {
        // (a>10 or a<=5 or b=1) and (c<=20 or c=30 or d=5)
        Expr::and(vec![
            Expr::or(vec![
                p("a", CompareOp::Gt, 10),
                p("a", CompareOp::Le, 5),
                p("b", CompareOp::Eq, 1),
            ]),
            Expr::or(vec![
                p("c", CompareOp::Le, 20),
                p("c", CompareOp::Eq, 30),
                p("d", CompareOp::Eq, 5),
            ]),
        ])
    }

    #[test]
    fn and_or_normalise_singletons() {
        let x = p("a", CompareOp::Eq, 1);
        assert_eq!(Expr::and(vec![x.clone()]), x);
        assert_eq!(Expr::or(vec![x.clone()]), x);
    }

    #[test]
    #[should_panic(expected = "at least one child")]
    fn empty_and_panics() {
        let _ = Expr::and(vec![]);
    }

    #[test]
    fn double_negation_collapses() {
        let x = p("a", CompareOp::Eq, 1);
        assert_eq!(!(!(x.clone())), x);
    }

    #[test]
    fn fig1_counts() {
        let e = fig1();
        assert_eq!(e.predicate_count(), 6);
        assert_eq!(e.depth(), 3);
        assert_eq!(e.node_count(), 9);
        assert!(!e.contains_not());
        assert!(!e.is_conjunctive());
    }

    #[test]
    fn fig1_eval_semantics() {
        let e = fig1();
        let hit = Event::builder().attr("a", 12_i64).attr("c", 30_i64).build();
        assert!(e.eval_event(&hit));
        // left group satisfied, right group not
        let miss = Event::builder().attr("a", 12_i64).attr("c", 25_i64).build();
        assert!(!e.eval_event(&miss));
        // no attributes at all
        assert!(!e.eval_event(&Event::builder().build()));
    }

    #[test]
    fn eval_with_truth_assignment() {
        let e = Expr::or(vec![p("a", CompareOp::Eq, 1), !(p("b", CompareOp::Eq, 2))]);
        // oracle: everything false => not(b=2) is true => expression true
        assert!(e.eval_with(&mut |_| false));
        // oracle: everything true => a=1 true => true
        assert!(e.eval_with(&mut |_| true));
    }

    #[test]
    fn predicates_in_syntactic_order() {
        let e = fig1();
        let attrs: Vec<_> = e.predicates().iter().map(|p| p.attr().to_owned()).collect();
        assert_eq!(attrs, vec!["a", "a", "b", "c", "c", "d"]);
    }

    #[test]
    fn is_conjunctive_detects_flat_ands() {
        let conj = Expr::and(vec![p("a", CompareOp::Eq, 1), p("b", CompareOp::Eq, 2)]);
        assert!(conj.is_conjunctive());
        assert!(p("a", CompareOp::Eq, 1).is_conjunctive());
        assert!(!fig1().is_conjunctive());
        let nested = Expr::and(vec![p("a", CompareOp::Eq, 1), !(p("b", CompareOp::Eq, 2))]);
        assert!(!nested.is_conjunctive());
    }

    #[test]
    fn display_round_trips() {
        for e in [
            fig1(),
            !(fig1()),
            Expr::or(vec![
                Expr::and(vec![p("a", CompareOp::Eq, 1), p("b", CompareOp::Ne, 2)]),
                !(p("c", CompareOp::Lt, 3)),
            ]),
        ] {
            let printed = e.to_string();
            let reparsed = Expr::parse(&printed).unwrap_or_else(|err| {
                panic!("failed to reparse `{printed}`: {err}");
            });
            assert_eq!(reparsed, e, "round-trip of `{printed}`");
        }
    }

    #[test]
    fn stats_of_fig1() {
        let s = fig1().stats();
        assert_eq!(s.predicates, 6);
        assert_eq!(s.unique_predicates, 6);
        assert_eq!(s.dnf_estimate, 9);
    }
}
