//! Subscription covering (subsumption) analysis.
//!
//! A subscription *covers* another when every event matching the
//! second also matches the first. Brokers exploit covering to prune
//! routing tables and skip redundant registrations — the line of work
//! the paper cites as Mühl & Fiege, *Supporting Covering and Merging in
//! Content-Based Publish/Subscribe Systems* (IEEE DSOnline 2001), and
//! names as the motivation for expressive subscription handling beyond
//! name/value pairs.
//!
//! The checks here are **sound but not complete**: a `true` answer is a
//! guarantee, a `false` answer means "could not establish covering"
//! (deciding Boolean implication is co-NP-complete in general).
//! Covering is defined over *total* evaluation — the predicate-result
//! semantics all engines share in phase 2.

use crate::{transform, CompareOp, DnfError, Expr, Predicate};

/// Does `general` cover `specific` at the predicate level — is every
/// value satisfying `specific` guaranteed to satisfy `general`?
///
/// Predicates on different attributes, or with constants of different
/// kinds, never cover each other. The rules implemented are exact for
/// the relational operators and the string-search operators; anything
/// else conservatively answers `false`.
///
/// # Examples
///
/// ```
/// use boolmatch_expr::{covering, CompareOp, Predicate};
///
/// let loose = Predicate::new("price", CompareOp::Gt, 10_i64);
/// let tight = Predicate::new("price", CompareOp::Gt, 20_i64);
/// assert!(covering::predicate_covers(&loose, &tight));
/// assert!(!covering::predicate_covers(&tight, &loose));
/// ```
pub fn predicate_covers(general: &Predicate, specific: &Predicate) -> bool {
    if general.attr() != specific.attr() {
        return false;
    }
    if general == specific {
        return true;
    }
    let (g, s) = (general.value(), specific.value());
    if g.kind() != s.kind() {
        return false;
    }
    use CompareOp::*;
    match (general.op(), specific.op()) {
        // x > g  ⊇  x > s   iff g <= s
        (Gt, Gt) => g <= s,
        // x > g  ⊇  x >= s  iff g < s
        (Gt, Ge) => g < s,
        // x > g  ⊇  x = s   iff s > g
        (Gt, Eq) => s > g,
        // x >= g ⊇  x >= s  and  x >= g ⊇ x > s  iff g <= s
        (Ge, Ge) | (Ge, Gt) => g <= s,
        (Ge, Eq) => s >= g,
        // mirror image for the upper bounds
        (Lt, Lt) => g >= s,
        (Lt, Le) => g > s,
        (Lt, Eq) => s < g,
        (Le, Le) | (Le, Lt) => g >= s,
        (Le, Eq) => s <= g,
        // x != g covers anything whose solutions exclude g
        (Ne, Eq) => s != g,
        (Ne, Gt) => g <= s,
        (Ne, Ge) => g < s,
        (Ne, Lt) => g >= s,
        (Ne, Le) => g > s,
        (Ne, Prefix) | (Ne, Contains) => {
            // Every string with prefix/substring s differs from g
            // whenever g itself lacks it.
            match (g.as_str(), s.as_str()) {
                (Some(gs), Some(ss)) => {
                    if specific.op() == Prefix {
                        !gs.starts_with(ss)
                    } else {
                        !gs.contains(ss)
                    }
                }
                _ => false,
            }
        }
        // prefix "ab" covers prefix "abc" and equality with "abc..."
        (Prefix, Prefix) | (Prefix, Eq) => match (g.as_str(), s.as_str()) {
            (Some(gs), Some(ss)) => ss.starts_with(gs),
            _ => false,
        },
        // contains "b" covers contains "abc", prefix "ab..", = "abc"
        (Contains, Contains) | (Contains, Eq) => match (g.as_str(), s.as_str()) {
            (Some(gs), Some(ss)) => ss.contains(gs),
            _ => false,
        },
        (Contains, Prefix) => match (g.as_str(), s.as_str()) {
            // every string starting with s contains g if s contains g
            (Some(gs), Some(ss)) => ss.contains(gs),
            _ => false,
        },
        // !prefix "ab" covers !prefix "a": no — reversed; covers
        // equality with a string lacking the prefix.
        (NotPrefix, Eq) => match (g.as_str(), s.as_str()) {
            (Some(gs), Some(ss)) => !ss.starts_with(gs),
            _ => false,
        },
        (NotContains, Eq) => match (g.as_str(), s.as_str()) {
            (Some(gs), Some(ss)) => !ss.contains(gs),
            _ => false,
        },
        // !contains "abc" is implied by !contains "b" (if you lack "b"
        // you certainly lack "abc"), i.e. general="abc" specific="b":
        // covers iff g contains s.
        (NotContains, NotContains) => match (g.as_str(), s.as_str()) {
            (Some(gs), Some(ss)) => gs.contains(ss),
            _ => false,
        },
        (NotPrefix, NotPrefix) => match (g.as_str(), s.as_str()) {
            // lacking prefix s implies lacking prefix g iff g extends s
            (Some(gs), Some(ss)) => gs.starts_with(ss),
            _ => false,
        },
        // x = g covers only the identical predicate (handled above) and
        // nothing else exactly; ranges covering Eq are handled in the
        // arms above. Everything else: conservative no.
        _ => false,
    }
}

/// Does the conjunction `general` cover the conjunction `specific`?
///
/// Sound rule: every predicate of `general` must cover **some**
/// predicate of `specific` — then any solution of `specific` satisfies
/// all of `general`'s constraints.
pub fn conjunction_covers(general: &[Predicate], specific: &[Predicate]) -> bool {
    general
        .iter()
        .all(|g| specific.iter().any(|s| predicate_covers(g, s)))
}

/// Does subscription `general` cover subscription `specific`?
///
/// Both expressions are DNF-transformed (bounded by `dnf_limit`, see
/// [`transform::to_dnf`]); covering holds when **every** conjunct of
/// `specific` is covered by **some** conjunct of `general`.
///
/// # Errors
///
/// Returns [`DnfError::TooLarge`] when either expansion exceeds the
/// limit — covering analysis on such subscriptions would be
/// exponential, mirroring the paper's §2 argument.
///
/// # Examples
///
/// ```
/// use boolmatch_expr::{covering, Expr};
///
/// let general = Expr::parse("price > 10 or symbol = \"IBM\"")?;
/// let specific = Expr::parse("price > 20 and volume > 5")?;
/// assert!(covering::covers(&general, &specific, 1024)?);
/// assert!(!covering::covers(&specific, &general, 1024)?);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn covers(general: &Expr, specific: &Expr, dnf_limit: usize) -> Result<bool, DnfError> {
    let g = transform::to_dnf(general, dnf_limit)?;
    let s = transform::to_dnf(specific, dnf_limit)?;
    Ok(s.conjuncts()
        .iter()
        .all(|sc| g.conjuncts().iter().any(|gc| conjunction_covers(gc, sc))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use boolmatch_types::Value;

    fn p(attr: &str, op: CompareOp, v: i64) -> Predicate {
        Predicate::new(attr, op, v)
    }

    /// Exhaustive soundness check over a small integer domain: whenever
    /// covering is claimed, implication must hold for every value.
    #[test]
    fn predicate_covering_is_sound_on_integers() {
        let ops = [
            CompareOp::Eq,
            CompareOp::Ne,
            CompareOp::Lt,
            CompareOp::Le,
            CompareOp::Gt,
            CompareOp::Ge,
        ];
        let consts = [-2i64, -1, 0, 1, 2];
        let values: Vec<Value> = (-4..=4).map(Value::from).collect();
        let mut claimed = 0;
        for gop in ops {
            for gc in consts {
                for sop in ops {
                    for sc in consts {
                        let g = p("a", gop, gc);
                        let s = p("a", sop, sc);
                        if predicate_covers(&g, &s) {
                            claimed += 1;
                            for v in &values {
                                assert!(
                                    !s.eval_value(v) || g.eval_value(v),
                                    "{g} claimed to cover {s} but {v} violates it"
                                );
                            }
                        }
                    }
                }
            }
        }
        // The relation is far from empty.
        assert!(claimed > 100, "only {claimed} coverings found");
    }

    /// Completeness spot-checks: the standard relations are recognised.
    #[test]
    fn predicate_covering_recognises_standard_relations() {
        assert!(predicate_covers(
            &p("a", CompareOp::Gt, 10),
            &p("a", CompareOp::Gt, 20)
        ));
        assert!(predicate_covers(
            &p("a", CompareOp::Ge, 10),
            &p("a", CompareOp::Gt, 10)
        ));
        assert!(predicate_covers(
            &p("a", CompareOp::Lt, 10),
            &p("a", CompareOp::Eq, 5)
        ));
        assert!(predicate_covers(
            &p("a", CompareOp::Ne, 7),
            &p("a", CompareOp::Gt, 7)
        ));
        // Different attributes never cover.
        assert!(!predicate_covers(
            &p("a", CompareOp::Gt, 10),
            &p("b", CompareOp::Gt, 20)
        ));
        // Different kinds never cover.
        assert!(!predicate_covers(
            &p("a", CompareOp::Gt, 10),
            &Predicate::new("a", CompareOp::Gt, 20.0)
        ));
    }

    #[test]
    fn string_covering_rules() {
        let pre = |s: &str| Predicate::new("t", CompareOp::Prefix, s);
        let has = |s: &str| Predicate::new("t", CompareOp::Contains, s);
        let eq = |s: &str| Predicate::new("t", CompareOp::Eq, s);
        assert!(predicate_covers(&pre("ab"), &pre("abc")));
        assert!(!predicate_covers(&pre("abc"), &pre("ab")));
        assert!(predicate_covers(&pre("ab"), &eq("abcd")));
        assert!(predicate_covers(&has("b"), &has("abc")));
        assert!(predicate_covers(&has("bc"), &pre("abcd")));
        assert!(predicate_covers(&has("a"), &eq("banana")));
        assert!(!predicate_covers(&has("z"), &eq("banana")));

        // Sanity: verify each claimed string rule on sample values.
        let samples = ["", "a", "ab", "abc", "abcd", "xabc", "banana"];
        let cases = [
            (pre("ab"), pre("abc")),
            (has("b"), has("abc")),
            (has("bc"), pre("abcd")),
        ];
        for (g, s) in cases {
            for text in samples {
                let v = Value::from(text);
                assert!(!s.eval_value(&v) || g.eval_value(&v), "{g} / {s} on {text}");
            }
        }
    }

    #[test]
    fn conjunction_covering() {
        // "price > 10" covers "price > 20 AND volume > 5".
        let general = vec![p("price", CompareOp::Gt, 10)];
        let specific = vec![p("price", CompareOp::Gt, 20), p("volume", CompareOp::Gt, 5)];
        assert!(conjunction_covers(&general, &specific));
        // Adding an uncoverable constraint to the general side breaks it.
        let general2 = vec![p("price", CompareOp::Gt, 10), p("region", CompareOp::Eq, 1)];
        assert!(!conjunction_covers(&general2, &specific));
        // Empty general conjunction covers everything (vacuous truth).
        assert!(conjunction_covers(&[], &specific));
    }

    #[test]
    fn expression_covering_through_dnf() {
        let general = Expr::parse("price > 10 or symbol = 1").unwrap();
        let specific =
            Expr::parse("(price > 20 and volume > 5) or (symbol = 1 and volume > 9)").unwrap();
        assert!(covers(&general, &specific, 64).unwrap());
        assert!(!covers(&specific, &general, 64).unwrap());
        // Self-covering.
        assert!(covers(&general, &general, 64).unwrap());
    }

    #[test]
    fn covering_respects_dnf_limit() {
        let bomb = Expr::and(
            (0..30)
                .map(|i| {
                    Expr::or(vec![
                        Expr::pred(p(&format!("x{i}"), CompareOp::Eq, 0)),
                        Expr::pred(p(&format!("y{i}"), CompareOp::Eq, 1)),
                    ])
                })
                .collect(),
        );
        let simple = Expr::parse("a = 1").unwrap();
        assert!(matches!(
            covers(&bomb, &simple, 1024),
            Err(DnfError::TooLarge { .. })
        ));
    }

    #[test]
    fn expression_covering_is_sound_on_a_grid() {
        use boolmatch_types::Event;
        let pairs = [
            ("a > 0", "a > 2 and b = 1"),
            ("a > 0 or b = 1", "a > 2"),
            ("a >= 1 and b <= 5", "a = 3 and b = 2"),
            ("not (a = 1)", "a > 1"),
            ("a != 1 or b != 1", "a = 0 and b = 0"),
        ];
        for (g_text, s_text) in pairs {
            let g = Expr::parse(g_text).unwrap();
            let s = Expr::parse(s_text).unwrap();
            if covers(&g, &s, 1024).unwrap() {
                for a in -1i64..=4 {
                    for b in -1i64..=4 {
                        let event = Event::builder().attr("a", a).attr("b", b).build();
                        // Covering is defined over total semantics:
                        // compare NNF evaluation (what engines share).
                        let ge = transform::eliminate_not(&g).eval_event(&event);
                        let se = transform::eliminate_not(&s).eval_event(&event);
                        assert!(
                            !se || ge,
                            "`{g_text}` claimed to cover `{s_text}` but a={a}, b={b} violates it"
                        );
                    }
                }
            }
        }
    }
}
