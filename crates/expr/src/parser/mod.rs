//! Text parser for the subscription language.
//!
//! The language is small and deliberately SQL-flavoured; see
//! [`crate::Expr::parse`] for the grammar. Both wordy (`and`, `or`,
//! `not`) and symbolic (`&&`, `||`, `!`) operators are accepted, and
//! `=`/`==` are synonyms.
//!
//! # Examples
//!
//! ```
//! use boolmatch_expr::parser::parse;
//!
//! let e = parse("(a > 10 || a <= 5) && !(b = 1)")?;
//! assert_eq!(e.to_string(), "(a > 10 or a <= 5) and not b = 1");
//! # Ok::<(), boolmatch_expr::ParseError>(())
//! ```

mod error;
mod lexer;

pub use error::ParseError;

use boolmatch_types::Value;

use crate::{Expr, Predicate};
use error::ErrorKind;
use lexer::{Lexer, Token, TokenKind};

/// Parses a subscription expression; see [`crate::Expr::parse`].
///
/// # Errors
///
/// Returns a [`ParseError`] with the byte offset of the offending token.
pub fn parse(input: &str) -> Result<Expr, ParseError> {
    let tokens = Lexer::new(input).tokenize()?;
    let mut p = Parser {
        tokens,
        pos: 0,
        input_len: input.len(),
    };
    let expr = p.or_expr()?;
    match p.peek() {
        None => Ok(expr),
        Some(t) => Err(ParseError::new(
            ErrorKind::TrailingInput {
                token: t.kind.describe(),
            },
            t.offset,
        )),
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    input_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eof_error(&self, expected: &'static str) -> ParseError {
        ParseError::new(ErrorKind::UnexpectedEof { expected }, self.input_len)
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut children = vec![self.and_expr()?];
        while matches!(self.peek(), Some(t) if t.kind == TokenKind::Or) {
            self.next();
            children.push(self.and_expr()?);
        }
        Ok(Expr::or(children))
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut children = vec![self.not_expr()?];
        while matches!(self.peek(), Some(t) if t.kind == TokenKind::And) {
            self.next();
            children.push(self.not_expr()?);
        }
        Ok(Expr::and(children))
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        if matches!(self.peek(), Some(t) if t.kind == TokenKind::Not) {
            self.next();
            let inner = self.not_expr()?;
            return Ok(!(inner));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let t = self.peek().ok_or_else(|| self.eof_error("an expression"))?;
        match &t.kind {
            TokenKind::LParen => {
                self.next();
                let inner = self.or_expr()?;
                match self.next() {
                    Some(t) if t.kind == TokenKind::RParen => Ok(inner),
                    Some(t) => Err(ParseError::new(
                        ErrorKind::Expected {
                            expected: "`)`",
                            found: t.kind.describe(),
                        },
                        t.offset,
                    )),
                    None => Err(self.eof_error("`)`")),
                }
            }
            TokenKind::Ident(_) => self.predicate(),
            other => Err(ParseError::new(
                ErrorKind::Expected {
                    expected: "an expression",
                    found: other.describe(),
                },
                t.offset,
            )),
        }
    }

    fn predicate(&mut self) -> Result<Expr, ParseError> {
        let attr_tok = self.next().expect("caller checked ident");
        let attr = match attr_tok.kind {
            TokenKind::Ident(name) => name,
            _ => unreachable!("caller checked ident"),
        };

        let op_tok = self.next().ok_or_else(|| self.eof_error("an operator"))?;
        let op = match op_tok.kind {
            TokenKind::Op(op) => op,
            other => {
                return Err(ParseError::new(
                    ErrorKind::Expected {
                        expected: "a comparison operator",
                        found: other.describe(),
                    },
                    op_tok.offset,
                ))
            }
        };

        let val_tok = self.next().ok_or_else(|| self.eof_error("a literal"))?;
        let value: Value = match val_tok.kind {
            TokenKind::Int(i) => Value::from(i),
            TokenKind::Float(x) => Value::from(x),
            TokenKind::Str(s) => Value::from(s),
            TokenKind::Bool(b) => Value::from(b),
            other => {
                return Err(ParseError::new(
                    ErrorKind::Expected {
                        expected: "a literal value",
                        found: other.describe(),
                    },
                    val_tok.offset,
                ))
            }
        };

        if op.is_string_search() && value.as_str().is_none() {
            return Err(ParseError::new(
                ErrorKind::StringOperatorNeedsString { op: op.symbol() },
                val_tok.offset,
            ));
        }

        Ok(Expr::pred(Predicate::new(&attr, op, value)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CompareOp;

    #[test]
    fn parses_single_predicate() {
        let e = parse("price > 10").unwrap();
        match e {
            Expr::Pred(p) => {
                assert_eq!(p.attr(), "price");
                assert_eq!(p.op(), CompareOp::Gt);
                assert_eq!(p.value(), &Value::from(10_i64));
            }
            other => panic!("expected predicate, got {other:?}"),
        }
    }

    #[test]
    fn parses_fig1_subscription() {
        let e = parse("(a > 10 or a <= 5 or b = 1) and (c <= 20 or c = 30 or d = 5)").unwrap();
        assert_eq!(e.predicate_count(), 6);
        match &e {
            Expr::And(cs) => {
                assert_eq!(cs.len(), 2);
                assert!(matches!(cs[0], Expr::Or(_)));
            }
            other => panic!("expected and, got {other:?}"),
        }
    }

    #[test]
    fn precedence_not_over_and_over_or() {
        // a=1 or b=2 and not c=3  ==  a=1 or (b=2 and (not c=3))
        let e = parse("a = 1 or b = 2 and not c = 3").unwrap();
        match e {
            Expr::Or(cs) => {
                assert_eq!(cs.len(), 2);
                match &cs[1] {
                    Expr::And(inner) => {
                        assert!(matches!(inner[1], Expr::Not(_)));
                    }
                    other => panic!("expected and, got {other:?}"),
                }
            }
            other => panic!("expected or, got {other:?}"),
        }
    }

    #[test]
    fn symbolic_aliases() {
        let worded = parse("a = 1 and b = 2 or not c = 3").unwrap();
        let symbolic = parse("a == 1 && b == 2 || ! c == 3").unwrap();
        assert_eq!(worded, symbolic);
    }

    #[test]
    fn string_and_bool_literals() {
        let e = parse("name prefix \"bo\" and alive = true").unwrap();
        let preds = e.predicates();
        assert_eq!(preds[0].op(), CompareOp::Prefix);
        assert_eq!(preds[0].value(), &Value::from("bo"));
        assert_eq!(preds[1].value(), &Value::from(true));
    }

    #[test]
    fn negated_string_operators() {
        let e = parse("name !prefix \"x\" or name !contains \"y\"").unwrap();
        let preds = e.predicates();
        assert_eq!(preds[0].op(), CompareOp::NotPrefix);
        assert_eq!(preds[1].op(), CompareOp::NotContains);
    }

    #[test]
    fn float_literals_and_negative_numbers() {
        let e = parse("x >= -1.5 and y < 2e3 and z = -4").unwrap();
        let preds = e.predicates();
        assert_eq!(preds[0].value(), &Value::from(-1.5));
        assert_eq!(preds[1].value(), &Value::from(2000.0));
        assert_eq!(preds[2].value(), &Value::from(-4_i64));
    }

    #[test]
    fn error_reports_position() {
        let err = parse("a > ").unwrap_err();
        assert_eq!(err.offset(), 4);
        assert!(err.to_string().contains("literal"));

        let err = parse("a > 1 extra").unwrap_err();
        assert!(err.to_string().contains("trailing"));
    }

    #[test]
    fn error_on_missing_operator() {
        let err = parse("a 10").unwrap_err();
        assert!(err.to_string().contains("comparison operator"));
    }

    #[test]
    fn error_on_unbalanced_parens() {
        assert!(parse("(a = 1").is_err());
        assert!(parse("a = 1)").is_err());
    }

    #[test]
    fn error_on_string_op_with_number() {
        let err = parse("a prefix 10").unwrap_err();
        assert!(err.to_string().contains("string"));
    }

    #[test]
    fn deeply_nested_parens() {
        let e = parse("((((a = 1))))").unwrap();
        assert!(matches!(e, Expr::Pred(_)));
    }

    #[test]
    fn single_quoted_strings() {
        let e = parse("sym = 'IBM'").unwrap();
        assert_eq!(e.predicates()[0].value(), &Value::from("IBM"));
    }
}
