//! Parser error reporting.

use std::error::Error;
use std::fmt;

/// A failure to parse a subscription expression.
///
/// Carries the byte offset into the input where the problem was found;
/// [`fmt::Display`] includes it, so errors read like
/// `"expected a literal value, found end of input at byte 4"`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    kind: ErrorKind,
    offset: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ErrorKind {
    UnexpectedChar {
        ch: char,
    },
    UnterminatedString,
    InvalidNumber {
        text: String,
    },
    UnexpectedEof {
        expected: &'static str,
    },
    Expected {
        expected: &'static str,
        found: &'static str,
    },
    TrailingInput {
        token: &'static str,
    },
    StringOperatorNeedsString {
        op: &'static str,
    },
}

impl ParseError {
    pub(crate) fn new(kind: ErrorKind, offset: usize) -> ParseError {
        ParseError { kind, offset }
    }

    /// Byte offset into the input at which parsing failed.
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ErrorKind::UnexpectedChar { ch } => {
                write!(f, "unexpected character `{ch}`")?;
            }
            ErrorKind::UnterminatedString => {
                write!(f, "unterminated string literal")?;
            }
            ErrorKind::InvalidNumber { text } => {
                write!(f, "invalid numeric literal `{text}`")?;
            }
            ErrorKind::UnexpectedEof { expected } => {
                write!(f, "expected {expected}, found end of input")?;
            }
            ErrorKind::Expected { expected, found } => {
                write!(f, "expected {expected}, found {found}")?;
            }
            ErrorKind::TrailingInput { token } => {
                write!(f, "trailing input starting with {token}")?;
            }
            ErrorKind::StringOperatorNeedsString { op } => {
                write!(f, "operator `{op}` requires a string literal")?;
            }
        }
        write!(f, " at byte {}", self.offset)
    }
}

impl Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_offset() {
        let e = ParseError::new(ErrorKind::UnterminatedString, 7);
        assert_eq!(e.to_string(), "unterminated string literal at byte 7");
        assert_eq!(e.offset(), 7);
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<ParseError>();
    }
}
