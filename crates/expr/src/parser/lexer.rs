//! Tokenizer for the subscription language.

use crate::CompareOp;

use super::error::{ErrorKind, ParseError};

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum TokenKind {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
    Op(CompareOp),
    And,
    Or,
    Not,
    LParen,
    RParen,
}

impl TokenKind {
    pub(crate) fn describe(&self) -> &'static str {
        match self {
            TokenKind::Ident(_) => "an identifier",
            TokenKind::Int(_) => "an integer literal",
            TokenKind::Float(_) => "a float literal",
            TokenKind::Str(_) => "a string literal",
            TokenKind::Bool(_) => "a boolean literal",
            TokenKind::Op(_) => "a comparison operator",
            TokenKind::And => "`and`",
            TokenKind::Or => "`or`",
            TokenKind::Not => "`not`",
            TokenKind::LParen => "`(`",
            TokenKind::RParen => "`)`",
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Token {
    pub kind: TokenKind,
    /// Byte offset of the first character of the token.
    pub offset: usize,
}

pub(crate) struct Lexer<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    pub(crate) fn new(input: &'a str) -> Self {
        Lexer {
            input,
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    pub(crate) fn tokenize(mut self) -> Result<Vec<Token>, ParseError> {
        let mut out = Vec::new();
        while let Some(tok) = self.next_token()? {
            out.push(tok);
        }
        Ok(out)
    }

    fn peek_byte(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek_byte(), Some(b) if b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn next_token(&mut self) -> Result<Option<Token>, ParseError> {
        self.skip_whitespace();
        let start = self.pos;
        let Some(b) = self.peek_byte() else {
            return Ok(None);
        };

        let kind = match b {
            b'(' => {
                self.pos += 1;
                TokenKind::LParen
            }
            b')' => {
                self.pos += 1;
                TokenKind::RParen
            }
            b'=' => {
                self.pos += 1;
                if self.peek_byte() == Some(b'=') {
                    self.pos += 1;
                }
                TokenKind::Op(CompareOp::Eq)
            }
            b'<' => {
                self.pos += 1;
                if self.peek_byte() == Some(b'=') {
                    self.pos += 1;
                    TokenKind::Op(CompareOp::Le)
                } else {
                    TokenKind::Op(CompareOp::Lt)
                }
            }
            b'>' => {
                self.pos += 1;
                if self.peek_byte() == Some(b'=') {
                    self.pos += 1;
                    TokenKind::Op(CompareOp::Ge)
                } else {
                    TokenKind::Op(CompareOp::Gt)
                }
            }
            b'!' => {
                self.pos += 1;
                match self.peek_byte() {
                    Some(b'=') => {
                        self.pos += 1;
                        TokenKind::Op(CompareOp::Ne)
                    }
                    Some(c) if c.is_ascii_alphabetic() => {
                        // `!prefix` / `!contains`, or `!ident` meaning
                        // logical not of a sub-expression.
                        let word_start = self.pos;
                        let word = self.read_ident_text();
                        match word {
                            "prefix" => TokenKind::Op(CompareOp::NotPrefix),
                            "contains" => TokenKind::Op(CompareOp::NotContains),
                            _ => {
                                // Rewind: treat as NOT followed by ident.
                                self.pos = word_start;
                                TokenKind::Not
                            }
                        }
                    }
                    _ => TokenKind::Not,
                }
            }
            b'&' => {
                self.pos += 1;
                if self.peek_byte() == Some(b'&') {
                    self.pos += 1;
                    TokenKind::And
                } else {
                    return Err(ParseError::new(
                        ErrorKind::UnexpectedChar { ch: '&' },
                        start,
                    ));
                }
            }
            b'|' => {
                self.pos += 1;
                if self.peek_byte() == Some(b'|') {
                    self.pos += 1;
                    TokenKind::Or
                } else {
                    return Err(ParseError::new(
                        ErrorKind::UnexpectedChar { ch: '|' },
                        start,
                    ));
                }
            }
            b'"' | b'\'' => self.read_string(b)?,
            b'-' | b'0'..=b'9' => self.read_number()?,
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let word = self.read_ident_text();
                match word {
                    "and" | "AND" => TokenKind::And,
                    "or" | "OR" => TokenKind::Or,
                    "not" | "NOT" => TokenKind::Not,
                    "true" => TokenKind::Bool(true),
                    "false" => TokenKind::Bool(false),
                    "prefix" => TokenKind::Op(CompareOp::Prefix),
                    "contains" => TokenKind::Op(CompareOp::Contains),
                    ident => TokenKind::Ident(ident.to_owned()),
                }
            }
            other => {
                let ch = self.input[self.pos..]
                    .chars()
                    .next()
                    .unwrap_or(other as char);
                return Err(ParseError::new(ErrorKind::UnexpectedChar { ch }, start));
            }
        };

        Ok(Some(Token {
            kind,
            offset: start,
        }))
    }

    fn read_ident_text(&mut self) -> &'a str {
        let start = self.pos;
        while matches!(
            self.peek_byte(),
            Some(b) if b.is_ascii_alphanumeric() || b == b'_' || b == b'.'
        ) {
            // Stop identifiers at a dot followed by a digit (attr names may
            // be namespaced like `stock.price`, but `1.5` must stay a number).
            self.pos += 1;
        }
        &self.input[start..self.pos]
    }

    fn read_string(&mut self, quote: u8) -> Result<TokenKind, ParseError> {
        let start = self.pos;
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.peek_byte() {
                None => return Err(ParseError::new(ErrorKind::UnterminatedString, start)),
                Some(b) if b == quote => {
                    self.pos += 1;
                    return Ok(TokenKind::Str(out));
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek_byte() {
                        Some(b'\\') => {
                            out.push('\\');
                            self.pos += 1;
                        }
                        Some(b'"') => {
                            out.push('"');
                            self.pos += 1;
                        }
                        Some(b'\'') => {
                            out.push('\'');
                            self.pos += 1;
                        }
                        Some(b'n') => {
                            out.push('\n');
                            self.pos += 1;
                        }
                        Some(b't') => {
                            out.push('\t');
                            self.pos += 1;
                        }
                        Some(_) => {
                            // Unknown escape: keep the character verbatim,
                            // advancing by its full UTF-8 width.
                            let ch = self.input[self.pos..].chars().next().unwrap();
                            out.push(ch);
                            self.pos += ch.len_utf8();
                        }
                        None => return Err(ParseError::new(ErrorKind::UnterminatedString, start)),
                    }
                }
                Some(_) => {
                    // Copy the full UTF-8 character, not just one byte.
                    let ch = self.input[self.pos..].chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn read_number(&mut self) -> Result<TokenKind, ParseError> {
        let start = self.pos;
        if self.peek_byte() == Some(b'-') {
            self.pos += 1;
        }
        let mut saw_dot = false;
        let mut saw_exp = false;
        while let Some(b) = self.peek_byte() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' if !saw_dot && !saw_exp => {
                    saw_dot = true;
                    self.pos += 1;
                }
                b'e' | b'E' if !saw_exp => {
                    saw_exp = true;
                    self.pos += 1;
                    if matches!(self.peek_byte(), Some(b'+') | Some(b'-')) {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
        let text = &self.input[start..self.pos];
        if saw_dot || saw_exp {
            text.parse::<f64>()
                .map(TokenKind::Float)
                .map_err(|_| ParseError::new(ErrorKind::InvalidNumber { text: text.into() }, start))
        } else {
            text.parse::<i64>()
                .map(TokenKind::Int)
                .map_err(|_| ParseError::new(ErrorKind::InvalidNumber { text: text.into() }, start))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        Lexer::new(input)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn tokenizes_operators() {
        assert_eq!(
            kinds("= == != < <= > >="),
            vec![
                TokenKind::Op(CompareOp::Eq),
                TokenKind::Op(CompareOp::Eq),
                TokenKind::Op(CompareOp::Ne),
                TokenKind::Op(CompareOp::Lt),
                TokenKind::Op(CompareOp::Le),
                TokenKind::Op(CompareOp::Gt),
                TokenKind::Op(CompareOp::Ge),
            ]
        );
    }

    #[test]
    fn tokenizes_keywords_and_idents() {
        assert_eq!(
            kinds("and or not price AND"),
            vec![
                TokenKind::And,
                TokenKind::Or,
                TokenKind::Not,
                TokenKind::Ident("price".into()),
                TokenKind::And,
            ]
        );
    }

    #[test]
    fn tokenizes_numbers() {
        assert_eq!(
            kinds("1 -2 3.5 -0.25 2e3 1.5E-2"),
            vec![
                TokenKind::Int(1),
                TokenKind::Int(-2),
                TokenKind::Float(3.5),
                TokenKind::Float(-0.25),
                TokenKind::Float(2000.0),
                TokenKind::Float(0.015),
            ]
        );
    }

    #[test]
    fn tokenizes_strings_with_escapes() {
        assert_eq!(
            kinds(r#""a\"b" 'c' "tab\there""#),
            vec![
                TokenKind::Str("a\"b".into()),
                TokenKind::Str("c".into()),
                TokenKind::Str("tab\there".into()),
            ]
        );
    }

    #[test]
    fn unicode_in_strings() {
        assert_eq!(kinds("\"kākā\""), vec![TokenKind::Str("kākā".into())]);
    }

    #[test]
    fn bang_disambiguation() {
        assert_eq!(
            kinds("!= !prefix !contains !x"),
            vec![
                TokenKind::Op(CompareOp::Ne),
                TokenKind::Op(CompareOp::NotPrefix),
                TokenKind::Op(CompareOp::NotContains),
                TokenKind::Not,
                TokenKind::Ident("x".into()),
            ]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(Lexer::new("\"abc").tokenize().is_err());
    }

    #[test]
    fn stray_ampersand_errors() {
        let err = Lexer::new("a & b").tokenize().unwrap_err();
        assert!(err.to_string().contains('&'));
    }

    #[test]
    fn offsets_are_byte_positions() {
        let toks = Lexer::new("ab  >=").tokenize().unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 4);
    }

    #[test]
    fn dotted_identifiers() {
        assert_eq!(
            kinds("stock.price > 1.5"),
            vec![
                TokenKind::Ident("stock.price".into()),
                TokenKind::Op(CompareOp::Gt),
                TokenKind::Float(1.5),
            ]
        );
    }
}
