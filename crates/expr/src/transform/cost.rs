//! DNF size estimation.

use crate::Expr;

/// Computes the number of conjunctions [`super::to_dnf`] would produce,
/// without expanding anything.
///
/// The recurrence mirrors distribution: a predicate contributes 1, an
/// `Or` sums its children, an `And` multiplies them, and `Not` is
/// estimated after negation elimination (which swaps the roles). The
/// result saturates at `u128::MAX`.
///
/// This is the quantitative core of the paper's §2 argument: for the
/// experimental subscriptions (AND of |p|/2 binary ORs) the estimate is
/// exactly `2^(|p|/2)` — the "8 to 32 subscriptions per subscription
/// after transformation" row of Table 1.
///
/// # Examples
///
/// ```
/// use boolmatch_expr::{transform, Expr};
///
/// // Fig. 1 of the paper: 3 * 3 = 9 disjunctions.
/// let s = Expr::parse("(a > 10 or a <= 5 or b = 1) and (c <= 20 or c = 30 or d = 5)")?;
/// assert_eq!(transform::estimate_dnf_size(&s), 9);
/// # Ok::<(), boolmatch_expr::ParseError>(())
/// ```
pub fn estimate_dnf_size(expr: &Expr) -> u128 {
    go(expr, false)
}

fn go(expr: &Expr, negated: bool) -> u128 {
    match expr {
        Expr::Pred(_) => 1,
        Expr::And(cs) if !negated => product(cs, negated),
        Expr::And(cs) => sum(cs, negated),
        Expr::Or(cs) if !negated => sum(cs, negated),
        Expr::Or(cs) => product(cs, negated),
        Expr::Not(c) => go(c, !negated),
    }
}

fn product(children: &[Expr], negated: bool) -> u128 {
    children
        .iter()
        .fold(1u128, |acc, c| acc.saturating_mul(go(c, negated)))
}

fn sum(children: &[Expr], negated: bool) -> u128 {
    children
        .iter()
        .fold(0u128, |acc, c| acc.saturating_add(go(c, negated)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompareOp, Predicate};

    fn p(n: usize) -> Expr {
        Expr::pred(Predicate::new(&format!("a{n}"), CompareOp::Eq, n as i64))
    }

    fn or_pair(n: usize) -> Expr {
        Expr::or(vec![p(2 * n), p(2 * n + 1)])
    }

    #[test]
    fn single_predicate_is_one() {
        assert_eq!(estimate_dnf_size(&p(0)), 1);
    }

    #[test]
    fn paper_workload_blowup_is_2_pow_groups() {
        // AND of g binary ORs -> 2^g conjunctions (Table 1: |p| in 6..=10
        // predicates -> 8..=32 transformed subscriptions).
        for g in [3usize, 4, 5] {
            let e = Expr::and((0..g).map(or_pair).collect());
            assert_eq!(estimate_dnf_size(&e), 1u128 << g);
        }
    }

    #[test]
    fn disjunction_sums() {
        let e = Expr::or(vec![p(0), p(1), p(2)]);
        assert_eq!(estimate_dnf_size(&e), 3);
    }

    #[test]
    fn negation_swaps_sum_and_product() {
        // not(AND of 3 preds) == OR of 3 complements -> 3 conjunctions
        let e = !(Expr::and(vec![p(0), p(1), p(2)]));
        assert_eq!(estimate_dnf_size(&e), 3);
        // not(OR of or-pairs): not(or) -> and -> product
        let e = !(Expr::or(vec![or_pair(0), or_pair(1)]));
        // inner or_pairs are negated too: not(p0 or p1) -> conj of 1
        assert_eq!(estimate_dnf_size(&e), 1);
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        // Build AND of 200 binary ORs: 2^200 conjunctions > u128 range
        // only at 2^128; saturating_mul caps it.
        let e = Expr::and((0..200).map(or_pair).collect());
        assert_eq!(estimate_dnf_size(&e), u128::MAX);
    }

    #[test]
    fn estimate_matches_actual_dnf_on_small_inputs() {
        let cases = [
            Expr::and(vec![or_pair(0), or_pair(1), p(99)]),
            Expr::or(vec![Expr::and(vec![p(0), p(1)]), or_pair(2)]),
            !(Expr::and(vec![or_pair(0), p(5)])),
        ];
        for e in cases {
            let est = estimate_dnf_size(&e);
            let dnf = super::super::to_dnf(&e, 1 << 20).unwrap();
            assert_eq!(est, dnf.len() as u128, "for {e}");
        }
    }
}
