//! Negation elimination.

use crate::Expr;

/// Rewrites `expr` into an equivalent expression without `Not` nodes.
///
/// Negation is pushed inward with De Morgan's laws; a negation that
/// reaches a predicate is absorbed by complementing its operator
/// ([`crate::CompareOp::complement`]).
///
/// Note the open-world caveat documented on
/// [`crate::Predicate::complement`]: for events that *lack* an
/// attribute, both `p` and its complement are false, whereas `not p` as
/// evaluated by [`Expr::eval_event`] would be true. The matching engines
/// all evaluate over the *fulfilled predicate set* (paper §3.2), for
/// which complement-based negation is exact; `eliminate_not` is the
/// transformation they share. Use it consciously when comparing against
/// raw [`Expr::eval_event`] semantics on partial events.
///
/// # Examples
///
/// ```
/// use boolmatch_expr::{transform, Expr};
///
/// let e = Expr::parse("not (a = 1 and b < 2)")?;
/// let nnf = transform::eliminate_not(&e);
/// assert_eq!(nnf.to_string(), "a != 1 or b >= 2");
/// assert!(!nnf.contains_not());
/// # Ok::<(), boolmatch_expr::ParseError>(())
/// ```
pub fn eliminate_not(expr: &Expr) -> Expr {
    go(expr, false)
}

fn go(expr: &Expr, negate: bool) -> Expr {
    match expr {
        Expr::Pred(p) => {
            if negate {
                Expr::Pred(p.complement())
            } else {
                Expr::Pred(p.clone())
            }
        }
        Expr::And(cs) => {
            let children: Vec<Expr> = cs.iter().map(|c| go(c, negate)).collect();
            if negate {
                Expr::or(children)
            } else {
                Expr::and(children)
            }
        }
        Expr::Or(cs) => {
            let children: Vec<Expr> = cs.iter().map(|c| go(c, negate)).collect();
            if negate {
                Expr::and(children)
            } else {
                Expr::or(children)
            }
        }
        Expr::Not(c) => go(c, !negate),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompareOp, Predicate};

    fn p(attr: &str, op: CompareOp, v: i64) -> Expr {
        Expr::pred(Predicate::new(attr, op, v))
    }

    #[test]
    fn pushes_not_through_and() {
        let e = !(Expr::and(vec![p("a", CompareOp::Eq, 1), p("b", CompareOp::Lt, 2)]));
        let nnf = eliminate_not(&e);
        assert_eq!(
            nnf,
            Expr::or(vec![p("a", CompareOp::Ne, 1), p("b", CompareOp::Ge, 2)])
        );
    }

    #[test]
    fn pushes_not_through_or() {
        let e = !(Expr::or(vec![p("a", CompareOp::Gt, 1), p("b", CompareOp::Le, 2)]));
        let nnf = eliminate_not(&e);
        assert_eq!(
            nnf,
            Expr::and(vec![p("a", CompareOp::Le, 1), p("b", CompareOp::Gt, 2)])
        );
    }

    #[test]
    fn nested_negations_cancel() {
        let inner = p("a", CompareOp::Eq, 1);
        let e = Expr::Not(Box::new(Expr::Not(Box::new(Expr::Not(Box::new(
            inner.clone(),
        ))))));
        assert_eq!(eliminate_not(&e), p("a", CompareOp::Ne, 1));
    }

    #[test]
    fn not_free_input_is_unchanged() {
        let e = Expr::and(vec![p("a", CompareOp::Eq, 1), p("b", CompareOp::Ne, 2)]);
        assert_eq!(eliminate_not(&e), e);
    }

    #[test]
    fn equivalence_under_total_assignments() {
        // On total assignments (oracle defined for every predicate and
        // consistent with complements), NNF must agree with the original.
        let e = !(Expr::or(vec![
            Expr::and(vec![p("a", CompareOp::Eq, 1), p("b", CompareOp::Lt, 2)]),
            !(p("c", CompareOp::Ge, 3)),
        ]));
        let nnf = eliminate_not(&e);
        // Enumerate assignments over base predicates by attr name.
        for bits in 0..8u32 {
            let assign = move |pred: &Predicate| -> bool {
                let base = match pred.attr() {
                    "a" => bits & 1 != 0,
                    "b" => bits & 2 != 0,
                    "c" => bits & 4 != 0,
                    _ => unreachable!(),
                };
                // complemented operators flip the base truth
                match pred.op() {
                    CompareOp::Eq | CompareOp::Lt | CompareOp::Ge => base,
                    CompareOp::Ne | CompareOp::Gt => !base,
                    _ => unreachable!(),
                }
            };
            // Careful: `c >= 3` is a base predicate here; its complement
            // `c < 3` must read as negation. `Ge` is base for attr c but
            // complement of `Lt` for attr b; track per-attribute.
            let oracle = |pred: &Predicate| -> bool {
                match (pred.attr(), pred.op()) {
                    ("a", CompareOp::Eq) => bits & 1 != 0,
                    ("a", CompareOp::Ne) => bits & 1 == 0,
                    ("b", CompareOp::Lt) => bits & 2 != 0,
                    ("b", CompareOp::Ge) => bits & 2 == 0,
                    ("c", CompareOp::Ge) => bits & 4 != 0,
                    ("c", CompareOp::Lt) => bits & 4 == 0,
                    other => unreachable!("{other:?}"),
                }
            };
            let _ = assign; // the per-attribute oracle above supersedes it
            assert_eq!(
                e.eval_with(&mut { oracle }),
                nnf.eval_with(&mut { oracle }),
                "assignment {bits:03b}"
            );
        }
    }
}
