//! Flattening and simplification.

use crate::Expr;

/// Flattens nested same-operator nodes into n-ary form and unwraps
/// single-child nodes — the "compacting subscription trees" step of
/// paper §3.1, run by the non-canonical engine before encoding.
///
/// Unlike [`simplify`], `compact` never drops children, so the tree
/// shape maps 1:1 onto the byte encoding.
///
/// # Examples
///
/// ```
/// use boolmatch_expr::{transform, Expr};
///
/// let e = Expr::parse("a = 1 and (b = 2 and (c = 3 and d = 4))")?;
/// let c = transform::compact(&e);
/// // One 4-ary AND instead of a chain of binary ANDs.
/// assert_eq!(c.depth(), 2);
/// assert_eq!(c.node_count(), 5);
/// # Ok::<(), boolmatch_expr::ParseError>(())
/// ```
pub fn compact(expr: &Expr) -> Expr {
    match expr {
        Expr::Pred(p) => Expr::Pred(p.clone()),
        Expr::And(cs) => {
            let mut flat = Vec::with_capacity(cs.len());
            for c in cs {
                match compact(c) {
                    Expr::And(inner) => flat.extend(inner),
                    other => flat.push(other),
                }
            }
            Expr::and(flat)
        }
        Expr::Or(cs) => {
            let mut flat = Vec::with_capacity(cs.len());
            for c in cs {
                match compact(c) {
                    Expr::Or(inner) => flat.extend(inner),
                    other => flat.push(other),
                }
            }
            Expr::or(flat)
        }
        Expr::Not(c) => !(compact(c)),
    }
}

/// Simplifies an expression: flattening (as [`compact`]), plus removal
/// of duplicate children of `And`/`Or` and collapse of double negation.
///
/// The result is logically equivalent; property tests verify this on
/// random assignments.
///
/// # Examples
///
/// ```
/// use boolmatch_expr::{transform, Expr};
///
/// let e = Expr::parse("a = 1 or a = 1 or not not a = 1")?;
/// assert_eq!(transform::simplify(&e).to_string(), "a = 1");
/// # Ok::<(), boolmatch_expr::ParseError>(())
/// ```
pub fn simplify(expr: &Expr) -> Expr {
    let compacted = compact(expr);
    dedup(&compacted)
}

fn dedup(expr: &Expr) -> Expr {
    match expr {
        Expr::Pred(p) => Expr::Pred(p.clone()),
        Expr::And(cs) => rebuild(cs, true),
        Expr::Or(cs) => rebuild(cs, false),
        Expr::Not(c) => !(dedup(c)),
    }
}

fn rebuild(children: &[Expr], is_and: bool) -> Expr {
    let mut out: Vec<Expr> = Vec::with_capacity(children.len());
    for c in children {
        let d = dedup(c);
        if !out.contains(&d) {
            out.push(d);
        }
    }
    // Deduplication may have created a fresh single-child node; and/or
    // constructors unwrap it. It may also have re-exposed nesting
    // (e.g. `and(and(a,b))` -> `and(a,b)` unwrap), which stays flat
    // because inputs were compacted first.
    if is_and {
        Expr::and(out)
    } else {
        Expr::or(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompareOp, Predicate};

    fn p(n: i64) -> Expr {
        Expr::pred(Predicate::new("a", CompareOp::Eq, n))
    }

    #[test]
    fn compact_flattens_and_chains() {
        let e = Expr::And(vec![
            p(1),
            Expr::And(vec![p(2), Expr::And(vec![p(3), p(4)])]),
        ]);
        let c = compact(&e);
        assert_eq!(c, Expr::And(vec![p(1), p(2), p(3), p(4)]));
    }

    #[test]
    fn compact_flattens_or_chains_but_not_across_ops() {
        let e = Expr::Or(vec![
            p(1),
            Expr::And(vec![p(2), p(3)]),
            Expr::Or(vec![p(4), p(5)]),
        ]);
        let c = compact(&e);
        match c {
            Expr::Or(cs) => {
                assert_eq!(cs.len(), 4);
                assert!(matches!(cs[1], Expr::And(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn compact_preserves_semantics() {
        let e = Expr::parse("(a = 1 and (a = 2 and a = 3)) or not (a = 4 or (a = 5 or a = 6))")
            .unwrap();
        let c = compact(&e);
        for bits in 0..64u32 {
            let oracle = |pred: &Predicate| -> bool {
                let n = pred.value().as_int().unwrap() as u32;
                bits & (1 << (n - 1)) != 0
            };
            assert_eq!(e.eval_with(&mut { oracle }), c.eval_with(&mut { oracle }));
        }
    }

    #[test]
    fn simplify_removes_duplicates() {
        let e = Expr::Or(vec![p(1), p(1), p(2), p(1)]);
        assert_eq!(simplify(&e), Expr::Or(vec![p(1), p(2)]));
    }

    #[test]
    fn simplify_unwraps_to_single_child() {
        let e = Expr::And(vec![p(1), p(1)]);
        assert_eq!(simplify(&e), p(1));
    }

    #[test]
    fn simplify_collapses_double_negation() {
        let e = Expr::Not(Box::new(Expr::Not(Box::new(p(1)))));
        assert_eq!(simplify(&e), p(1));
    }

    #[test]
    fn simplify_idempotent() {
        let e = Expr::parse("not not (a = 1 or a = 1) and (b = 2 and b = 2)").unwrap();
        let once = simplify(&e);
        let twice = simplify(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn compact_keeps_not_boundaries() {
        let e = Expr::Not(Box::new(Expr::And(vec![p(1), Expr::And(vec![p(2), p(3)])])));
        let c = compact(&e);
        match c {
            Expr::Not(inner) => match *inner {
                Expr::And(cs) => assert_eq!(cs.len(), 3),
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }
}
