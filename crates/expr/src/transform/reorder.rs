//! Subscription tree reordering — one of the paper's proposed
//! optimisations (§3.2: "several optimisations could be applied to the
//! process of subscription matching presented here (e.g. reordering
//! subscription trees …); their impact remains to be investigated").
//!
//! The engines evaluate AND/OR nodes left to right with short-circuit,
//! so child order matters: an `AND` wants its *cheapest-to-refute*
//! child first, an `OR` its cheapest-to-confirm. Without per-predicate
//! selectivity statistics the best static proxy is subtree size —
//! smaller subtrees are cheaper to evaluate, and a single predicate
//! refutes an `AND` (or confirms an `OR`) after one set lookup.
//! [`reorder`] therefore sorts children of every n-ary node by
//! ascending predicate count, stably (equal-cost children keep their
//! authored order).
//!
//! The `ablation_reorder` bench quantifies the effect; the
//! investigation the paper deferred.

use crate::Expr;

/// Reorders every `And`/`Or` node's children by ascending subtree
/// size (see the module documentation). Logically equivalent — AND and
/// OR are commutative — and idempotent.
///
/// # Examples
///
/// ```
/// use boolmatch_expr::{transform, Expr};
///
/// let e = Expr::parse("(a = 1 or b = 2 or c = 3) and d = 4")?;
/// let r = transform::reorder(&e);
/// // The single-predicate child now comes first.
/// assert_eq!(r.to_string(), "d = 4 and (a = 1 or b = 2 or c = 3)");
/// # Ok::<(), boolmatch_expr::ParseError>(())
/// ```
pub fn reorder(expr: &Expr) -> Expr {
    match expr {
        Expr::Pred(p) => Expr::Pred(p.clone()),
        Expr::And(cs) => Expr::And(sorted(cs)),
        Expr::Or(cs) => Expr::Or(sorted(cs)),
        Expr::Not(c) => Expr::Not(Box::new(reorder(c))),
    }
}

fn sorted(children: &[Expr]) -> Vec<Expr> {
    let mut out: Vec<Expr> = children.iter().map(reorder).collect();
    out.sort_by_key(Expr::predicate_count);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompareOp, Predicate};

    fn p(n: i64) -> Expr {
        Expr::pred(Predicate::new("a", CompareOp::Eq, n))
    }

    #[test]
    fn cheap_children_move_first() {
        let e = Expr::And(vec![
            Expr::Or(vec![p(1), p(2), p(3)]),
            p(4),
            Expr::Or(vec![p(5), p(6)]),
        ]);
        let r = reorder(&e);
        match r {
            Expr::And(cs) => {
                let sizes: Vec<usize> = cs.iter().map(Expr::predicate_count).collect();
                assert_eq!(sizes, vec![1, 2, 3]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn reordering_is_stable_for_equal_costs() {
        let e = Expr::Or(vec![p(1), p(2), p(3)]);
        assert_eq!(reorder(&e), e, "equal-cost children keep authored order");
    }

    #[test]
    fn reordering_is_recursive() {
        let inner = Expr::Or(vec![Expr::And(vec![p(1), p(2)]), p(3)]);
        let e = Expr::And(vec![inner, p(4)]);
        let r = reorder(&e);
        match &r {
            Expr::And(cs) => match &cs[1] {
                Expr::Or(inner) => {
                    assert!(matches!(inner[0], Expr::Pred(_)), "inner Or reordered too");
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn idempotent() {
        let e = Expr::parse("(a = 1 or b = 2 or c = 3) and d = 4 and (e = 5 or f = 6)").unwrap();
        let once = reorder(&e);
        assert_eq!(reorder(&once), once);
    }

    #[test]
    fn semantics_preserved() {
        let e = Expr::parse("(a = 1 or (b = 2 and c = 3)) and not (d = 4 or e = 5)").unwrap();
        let r = reorder(&e);
        for bits in 0..32u32 {
            let oracle = |pred: &Predicate| -> bool {
                let idx = match pred.attr() {
                    "a" => 0,
                    "b" => 1,
                    "c" => 2,
                    "d" => 3,
                    "e" => 4,
                    _ => unreachable!(),
                };
                bits & (1 << idx) != 0
            };
            assert_eq!(
                e.eval_with(&mut { oracle }),
                r.eval_with(&mut { oracle }),
                "bits {bits:05b}"
            );
        }
    }
}
