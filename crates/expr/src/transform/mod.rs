//! Expression transformations.
//!
//! This module is where the paper's central tension lives:
//!
//! * [`to_dnf`] is the **canonical transformation** that classic
//!   conjunctive-only matchers force on arbitrary Boolean subscriptions.
//!   It is worst-case exponential — [`estimate_dnf_size`] computes the
//!   exact number of conjunctions *before* expanding, so callers can
//!   refuse (the paper's §2.2 argument made executable).
//! * [`eliminate_not`] rewrites an expression into an equivalent
//!   NOT-free form by pushing negation into the leaves (De Morgan) and
//!   complementing the leaf operators.
//! * [`compact`] flattens nested same-operator nodes into the n-ary form
//!   the non-canonical engine encodes (paper §3.1: "binary operators are
//!   treated as n-ary ones due to compacting subscription trees").
//! * [`simplify`] removes duplicate children, absorbed terms and
//!   double negation.
//! * [`reorder`] sorts n-ary children cheapest-first for short-circuit
//!   evaluation — the optimisation the paper names but defers (§3.2).
//!
//! All transformations preserve evaluation semantics; the property tests
//! in this crate verify equivalence on random truth assignments.

mod cost;
mod dnf;
mod nnf;
mod reorder;
mod simplify;

pub use cost::estimate_dnf_size;
pub use dnf::{to_dnf, Dnf, DnfError};
pub use nnf::eliminate_not;
pub use reorder::reorder;
pub use simplify::{compact, simplify};
