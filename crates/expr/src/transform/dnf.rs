//! Transformation into disjunctive normal form.

use std::error::Error;
use std::fmt;

use crate::{Expr, Predicate};

use super::{eliminate_not, estimate_dnf_size};

/// A subscription in disjunctive normal form: a disjunction of
/// conjunctions of predicates.
///
/// This is what canonical matching engines register — every conjunct
/// becomes a separate "flat" subscription (paper §1: "treating each
/// disjunction as a separate subscription").
///
/// # Examples
///
/// ```
/// use boolmatch_expr::{transform, Expr};
///
/// let s = Expr::parse("(a = 1 or b = 2) and c = 3")?;
/// let dnf = transform::to_dnf(&s, 100)?;
/// assert_eq!(dnf.len(), 2);
/// assert_eq!(dnf.to_string(), "(a = 1 and c = 3) or (b = 2 and c = 3)");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dnf {
    conjuncts: Vec<Vec<Predicate>>,
}

impl Dnf {
    /// The conjunctions.
    pub fn conjuncts(&self) -> &[Vec<Predicate>] {
        &self.conjuncts
    }

    /// Number of conjunctions.
    pub fn len(&self) -> usize {
        self.conjuncts.len()
    }

    /// Whether there are no conjunctions (never produced by
    /// [`to_dnf`], which requires a non-empty expression).
    pub fn is_empty(&self) -> bool {
        self.conjuncts.is_empty()
    }

    /// Total number of predicate slots over all conjunctions — the
    /// memory-relevant size of the transformed subscription.
    pub fn predicate_slots(&self) -> usize {
        self.conjuncts.iter().map(Vec::len).sum()
    }

    /// Converts back into an expression tree (an `Or` of `And`s).
    pub fn to_expr(&self) -> Expr {
        Expr::or(
            self.conjuncts
                .iter()
                .map(|c| Expr::and(c.iter().cloned().map(Expr::pred).collect()))
                .collect(),
        )
    }

    /// Evaluates the DNF with a predicate oracle; used by tests to check
    /// equivalence with the source expression.
    pub fn eval_with(&self, oracle: &mut impl FnMut(&Predicate) -> bool) -> bool {
        self.conjuncts.iter().any(|c| c.iter().all(&mut *oracle))
    }

    /// Removes duplicate conjuncts and conjuncts that contain both a
    /// predicate and its complement (always false), returning how many
    /// were dropped. The result is equivalent over total assignments.
    pub fn prune(&mut self) -> usize {
        let before = self.conjuncts.len();
        self.conjuncts
            .retain(|c| !c.iter().any(|p| c.iter().any(|q| *q == p.complement())));
        self.conjuncts.sort();
        self.conjuncts.dedup();
        before - self.conjuncts.len()
    }
}

impl fmt::Display for Dnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.conjuncts.iter().enumerate() {
            if i > 0 {
                write!(f, " or ")?;
            }
            let needs_parens = self.conjuncts.len() > 1 && c.len() > 1;
            if needs_parens {
                write!(f, "(")?;
            }
            for (j, p) in c.iter().enumerate() {
                if j > 0 {
                    write!(f, " and ")?;
                }
                write!(f, "{p}")?;
            }
            if needs_parens {
                write!(f, ")")?;
            }
        }
        Ok(())
    }
}

/// The DNF transformation was refused or impossible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DnfError {
    /// Expanding would produce more conjunctions than the caller's
    /// limit. Carries the exact pre-computed size so callers can report
    /// the blow-up.
    TooLarge {
        /// Conjunctions the expansion would produce.
        estimate: u128,
        /// The limit that was exceeded.
        limit: usize,
    },
}

impl fmt::Display for DnfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DnfError::TooLarge { estimate, limit } => write!(
                f,
                "dnf transformation would produce {estimate} conjunctions, over the limit of {limit}"
            ),
        }
    }
}

impl Error for DnfError {}

/// Transforms `expr` into DNF, refusing when the result would exceed
/// `limit` conjunctions.
///
/// Negation is eliminated first ([`eliminate_not`]), then `And` is
/// distributed over `Or`. Duplicate predicates within a conjunct are
/// collapsed (they are idempotent under conjunction).
///
/// # Errors
///
/// Returns [`DnfError::TooLarge`] when [`estimate_dnf_size`] exceeds
/// `limit` — the expansion is never attempted in that case, so calling
/// this with a tight limit is safe even on adversarial expressions.
pub fn to_dnf(expr: &Expr, limit: usize) -> Result<Dnf, DnfError> {
    let estimate = estimate_dnf_size(expr);
    if estimate > limit as u128 {
        return Err(DnfError::TooLarge { estimate, limit });
    }
    let nnf = eliminate_not(expr);
    let conjuncts = expand(&nnf);
    debug_assert_eq!(conjuncts.len() as u128, estimate);
    Ok(Dnf { conjuncts })
}

/// Expands a NOT-free expression. Invariant: the result of each call is
/// a non-empty list of conjunctions.
fn expand(expr: &Expr) -> Vec<Vec<Predicate>> {
    match expr {
        Expr::Pred(p) => vec![vec![p.clone()]],
        Expr::Or(cs) => cs.iter().flat_map(expand).collect(),
        Expr::And(cs) => {
            let mut acc: Vec<Vec<Predicate>> = vec![Vec::new()];
            for child in cs {
                let expanded = expand(child);
                let mut next = Vec::with_capacity(acc.len() * expanded.len());
                for left in &acc {
                    for right in &expanded {
                        let mut merged = left.clone();
                        for p in right {
                            if !merged.contains(p) {
                                merged.push(p.clone());
                            }
                        }
                        next.push(merged);
                    }
                }
                acc = next;
            }
            acc
        }
        Expr::Not(_) => unreachable!("eliminate_not removed all negations"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CompareOp;

    fn p(attr: &str, v: i64) -> Predicate {
        Predicate::new(attr, CompareOp::Eq, v)
    }

    fn pe(attr: &str, v: i64) -> Expr {
        Expr::pred(p(attr, v))
    }

    #[test]
    fn single_predicate() {
        let dnf = to_dnf(&pe("a", 1), 10).unwrap();
        assert_eq!(dnf.conjuncts(), &[vec![p("a", 1)]]);
        assert_eq!(dnf.predicate_slots(), 1);
    }

    #[test]
    fn distributes_and_over_or() {
        let e = Expr::and(vec![Expr::or(vec![pe("a", 1), pe("b", 2)]), pe("c", 3)]);
        let dnf = to_dnf(&e, 10).unwrap();
        assert_eq!(
            dnf.conjuncts(),
            &[vec![p("a", 1), p("c", 3)], vec![p("b", 2), p("c", 3)]]
        );
    }

    #[test]
    fn fig1_has_nine_conjunctions_of_two() {
        let e =
            Expr::parse("(a > 10 or a <= 5 or b = 1) and (c <= 20 or c = 30 or d = 5)").unwrap();
        let dnf = to_dnf(&e, 100).unwrap();
        assert_eq!(dnf.len(), 9);
        assert!(dnf.conjuncts().iter().all(|c| c.len() == 2));
        assert_eq!(dnf.predicate_slots(), 18);
    }

    #[test]
    fn too_large_is_refused_without_expansion() {
        // AND of 40 binary ORs -> 2^40 conjunctions.
        let e = Expr::and(
            (0..40)
                .map(|i| Expr::or(vec![pe(&format!("x{i}"), 0), pe(&format!("y{i}"), 1)]))
                .collect(),
        );
        match to_dnf(&e, 1 << 20) {
            Err(DnfError::TooLarge { estimate, limit }) => {
                assert_eq!(estimate, 1u128 << 40);
                assert_eq!(limit, 1 << 20);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn negation_is_eliminated_first() {
        let e = !(Expr::or(vec![pe("a", 1), pe("b", 2)]));
        let dnf = to_dnf(&e, 10).unwrap();
        assert_eq!(dnf.len(), 1);
        assert_eq!(
            dnf.conjuncts()[0],
            vec![
                Predicate::new("a", CompareOp::Ne, 1_i64),
                Predicate::new("b", CompareOp::Ne, 2_i64)
            ]
        );
    }

    #[test]
    fn duplicate_predicates_collapse_within_conjunct() {
        // (a=1 or b=2) and a=1 -> conjunct [a=1] and [b=2, a=1]
        let e = Expr::and(vec![Expr::or(vec![pe("a", 1), pe("b", 2)]), pe("a", 1)]);
        let dnf = to_dnf(&e, 10).unwrap();
        assert_eq!(dnf.conjuncts()[0], vec![p("a", 1)]);
        assert_eq!(dnf.conjuncts()[1], vec![p("b", 2), p("a", 1)]);
    }

    #[test]
    fn equivalence_with_source_on_truth_assignments() {
        let e = Expr::parse("(a = 1 or (b = 2 and c = 3)) and (d = 4 or not (a = 1 and d = 4))")
            .unwrap();
        let dnf = to_dnf(&e, 1000).unwrap();
        // collect unique base predicates (by attr) for assignment bits
        let nnf = eliminate_not(&e);
        for bits in 0..16u32 {
            let oracle = |pred: &Predicate| -> bool {
                let idx = match pred.attr() {
                    "a" => 0,
                    "b" => 1,
                    "c" => 2,
                    "d" => 3,
                    _ => unreachable!(),
                };
                let base = bits & (1 << idx) != 0;
                match pred.op() {
                    CompareOp::Eq => base,
                    CompareOp::Ne => !base,
                    _ => unreachable!(),
                }
            };
            assert_eq!(
                nnf.eval_with(&mut { oracle }),
                dnf.eval_with(&mut { oracle }),
                "bits {bits:04b}"
            );
        }
    }

    #[test]
    fn prune_drops_contradictions_and_duplicates() {
        let mut dnf = Dnf {
            conjuncts: vec![
                vec![p("a", 1), Predicate::new("a", CompareOp::Ne, 1_i64)],
                vec![p("b", 2)],
                vec![p("b", 2)],
            ],
        };
        let dropped = dnf.prune();
        assert_eq!(dropped, 2);
        assert_eq!(dnf.conjuncts(), &[vec![p("b", 2)]]);
    }

    #[test]
    fn to_expr_round_trips_semantics() {
        let e = Expr::parse("(a = 1 or b = 2) and c = 3").unwrap();
        let dnf = to_dnf(&e, 10).unwrap();
        let back = dnf.to_expr();
        for bits in 0..8u32 {
            let oracle = |pred: &Predicate| -> bool {
                match pred.attr() {
                    "a" => bits & 1 != 0,
                    "b" => bits & 2 != 0,
                    "c" => bits & 4 != 0,
                    _ => unreachable!(),
                }
            };
            assert_eq!(
                e.eval_with(&mut { oracle }),
                back.eval_with(&mut { oracle })
            );
        }
    }

    #[test]
    fn display_of_dnf() {
        let e = Expr::parse("(a = 1 or b = 2) and c = 3").unwrap();
        let dnf = to_dnf(&e, 10).unwrap();
        assert_eq!(dnf.to_string(), "(a = 1 and c = 3) or (b = 2 and c = 3)");
    }
}
