//! Predicates: attribute–operator–value filters.

use std::fmt;
use std::sync::Arc;

use boolmatch_types::{Value, ValueKind};

/// The comparison operator of a [`Predicate`].
///
/// The first six operators are the classic relational comparisons; the
/// string operators (`Prefix`, `Contains`) and their complements round
/// out the language so that **every operator has a complement** — this is
/// what lets the DNF transformation push `NOT` all the way into the
/// leaves (see [`crate::transform`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum CompareOp {
    /// `=` equality.
    Eq,
    /// `!=` inequality.
    Ne,
    /// `<` strictly less than.
    Lt,
    /// `<=` less than or equal.
    Le,
    /// `>` strictly greater than.
    Gt,
    /// `>=` greater than or equal.
    Ge,
    /// `prefix` — string starts with the constant.
    Prefix,
    /// complement of [`CompareOp::Prefix`].
    NotPrefix,
    /// `contains` — string contains the constant as a substring.
    Contains,
    /// complement of [`CompareOp::Contains`].
    NotContains,
}

impl CompareOp {
    /// The operator whose result is the logical negation of `self`, for
    /// every pair of operands.
    ///
    /// # Examples
    ///
    /// ```
    /// use boolmatch_expr::CompareOp;
    /// assert_eq!(CompareOp::Lt.complement(), CompareOp::Ge);
    /// assert_eq!(CompareOp::Ge.complement(), CompareOp::Lt);
    /// assert_eq!(CompareOp::Prefix.complement(), CompareOp::NotPrefix);
    /// ```
    pub fn complement(self) -> CompareOp {
        match self {
            CompareOp::Eq => CompareOp::Ne,
            CompareOp::Ne => CompareOp::Eq,
            CompareOp::Lt => CompareOp::Ge,
            CompareOp::Le => CompareOp::Gt,
            CompareOp::Gt => CompareOp::Le,
            CompareOp::Ge => CompareOp::Lt,
            CompareOp::Prefix => CompareOp::NotPrefix,
            CompareOp::NotPrefix => CompareOp::Prefix,
            CompareOp::Contains => CompareOp::NotContains,
            CompareOp::NotContains => CompareOp::Contains,
        }
    }

    /// Whether this is an equality-style *point* operator, indexed with a
    /// hash table by the engines (paper §3.2).
    pub fn is_point(self) -> bool {
        matches!(self, CompareOp::Eq)
    }

    /// Whether this is a *range* operator, indexed with a B+ tree by the
    /// engines (paper §3.2).
    pub fn is_range(self) -> bool {
        matches!(
            self,
            CompareOp::Lt | CompareOp::Le | CompareOp::Gt | CompareOp::Ge
        )
    }

    /// Whether this is a string-search operator (prefix/substring).
    pub fn is_string_search(self) -> bool {
        matches!(
            self,
            CompareOp::Prefix | CompareOp::NotPrefix | CompareOp::Contains | CompareOp::NotContains
        )
    }

    /// The token used by the subscription language.
    pub fn symbol(self) -> &'static str {
        match self {
            CompareOp::Eq => "=",
            CompareOp::Ne => "!=",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
            CompareOp::Prefix => "prefix",
            CompareOp::NotPrefix => "!prefix",
            CompareOp::Contains => "contains",
            CompareOp::NotContains => "!contains",
        }
    }

    /// Applies the operator to an event value (left operand) and the
    /// predicate constant (right operand).
    ///
    /// Comparisons are strict about kinds: an `Int` event value never
    /// satisfies a `Float` constant and vice versa, and the string
    /// operators require both sides to be strings. Relational operators
    /// across different kinds are always false.
    pub fn eval(self, event_value: &Value, constant: &Value) -> bool {
        match self {
            CompareOp::Eq => event_value == constant,
            CompareOp::Ne => event_value.kind() == constant.kind() && event_value != constant,
            CompareOp::Lt | CompareOp::Le | CompareOp::Gt | CompareOp::Ge => {
                if event_value.kind() != constant.kind() {
                    return false;
                }
                let ord = event_value.cmp(constant);
                match self {
                    CompareOp::Lt => ord.is_lt(),
                    CompareOp::Le => ord.is_le(),
                    CompareOp::Gt => ord.is_gt(),
                    CompareOp::Ge => ord.is_ge(),
                    _ => unreachable!(),
                }
            }
            CompareOp::Prefix | CompareOp::NotPrefix => {
                match (event_value.as_str(), constant.as_str()) {
                    (Some(v), Some(c)) => v.starts_with(c) == (self == CompareOp::Prefix),
                    _ => false,
                }
            }
            CompareOp::Contains | CompareOp::NotContains => {
                match (event_value.as_str(), constant.as_str()) {
                    (Some(v), Some(c)) => v.contains(c) == (self == CompareOp::Contains),
                    _ => false,
                }
            }
        }
    }
}

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// An attribute–operator–value filter, the leaf of a subscription.
///
/// Predicates are plain data and are freely shared between
/// subscriptions; the engines intern them so each distinct predicate is
/// stored and evaluated once per event (paper §3.1: predicates "might be
/// shared among different subscriptions").
///
/// # Examples
///
/// ```
/// use boolmatch_expr::{CompareOp, Predicate};
/// use boolmatch_types::Event;
///
/// let p = Predicate::new("price", CompareOp::Gt, 10_i64);
/// let hit = Event::builder().attr("price", 12_i64).build();
/// let miss = Event::builder().attr("price", 9_i64).build();
/// assert!(p.eval_event(&hit));
/// assert!(!p.eval_event(&miss));
/// assert_eq!(p.to_string(), "price > 10");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Predicate {
    attr: Arc<str>,
    op: CompareOp,
    value: Value,
}

impl Predicate {
    /// Creates a predicate `attr OP value`.
    pub fn new(attr: &str, op: CompareOp, value: impl Into<Value>) -> Predicate {
        Predicate {
            attr: Arc::from(attr),
            op,
            value: value.into(),
        }
    }

    /// The attribute the predicate filters on.
    pub fn attr(&self) -> &str {
        &self.attr
    }

    /// The comparison operator.
    pub fn op(&self) -> CompareOp {
        self.op
    }

    /// The constant the event value is compared against.
    pub fn value(&self) -> &Value {
        &self.value
    }

    /// The kind of the constant.
    pub fn value_kind(&self) -> ValueKind {
        self.value.kind()
    }

    /// The complementary predicate: true exactly when `self` is false
    /// *for events that carry the attribute*.
    ///
    /// Note the open-world caveat: when an event lacks the attribute,
    /// both a predicate and its complement evaluate to false (see
    /// [`Predicate::eval_event`]). The matching engines and the DNF
    /// transformation share this convention, so all engines agree.
    pub fn complement(&self) -> Predicate {
        Predicate {
            attr: Arc::clone(&self.attr),
            op: self.op.complement(),
            value: self.value.clone(),
        }
    }

    /// Evaluates the predicate against an attribute value.
    pub fn eval_value(&self, event_value: &Value) -> bool {
        self.op.eval(event_value, &self.value)
    }

    /// Evaluates the predicate against an event. Events that do not
    /// carry the attribute never match.
    pub fn eval_event(&self, event: &boolmatch_types::Event) -> bool {
        event.get(&self.attr).is_some_and(|v| self.eval_value(v))
    }

    /// Approximate heap bytes owned by this predicate, for memory
    /// accounting.
    pub fn heap_bytes(&self) -> usize {
        self.attr.len() + 16 + self.value.heap_bytes()
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.attr, self.op, self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boolmatch_types::Event;

    const ALL_OPS: [CompareOp; 10] = [
        CompareOp::Eq,
        CompareOp::Ne,
        CompareOp::Lt,
        CompareOp::Le,
        CompareOp::Gt,
        CompareOp::Ge,
        CompareOp::Prefix,
        CompareOp::NotPrefix,
        CompareOp::Contains,
        CompareOp::NotContains,
    ];

    #[test]
    fn complement_is_involution() {
        for op in ALL_OPS {
            assert_eq!(op.complement().complement(), op, "{op:?}");
        }
    }

    #[test]
    fn complement_negates_on_int_values() {
        let vals: Vec<Value> = (-3..=3).map(Value::from).collect();
        let c = Value::from(0_i64);
        for op in [
            CompareOp::Eq,
            CompareOp::Ne,
            CompareOp::Lt,
            CompareOp::Le,
            CompareOp::Gt,
            CompareOp::Ge,
        ] {
            for v in &vals {
                assert_eq!(
                    op.eval(v, &c),
                    !op.complement().eval(v, &c),
                    "{op:?} on {v:?}"
                );
            }
        }
    }

    #[test]
    fn complement_negates_on_string_values() {
        let vals = [Value::from("abc"), Value::from("xbc"), Value::from("")];
        let c = Value::from("ab");
        for op in [
            CompareOp::Prefix,
            CompareOp::NotPrefix,
            CompareOp::Contains,
            CompareOp::NotContains,
        ] {
            for v in &vals {
                assert_eq!(op.eval(v, &c), !op.complement().eval(v, &c));
            }
        }
    }

    #[test]
    fn relational_ops_on_ints() {
        let c = Value::from(10_i64);
        assert!(CompareOp::Gt.eval(&Value::from(11_i64), &c));
        assert!(!CompareOp::Gt.eval(&Value::from(10_i64), &c));
        assert!(CompareOp::Ge.eval(&Value::from(10_i64), &c));
        assert!(CompareOp::Lt.eval(&Value::from(9_i64), &c));
        assert!(CompareOp::Le.eval(&Value::from(10_i64), &c));
        assert!(CompareOp::Eq.eval(&Value::from(10_i64), &c));
        assert!(CompareOp::Ne.eval(&Value::from(11_i64), &c));
    }

    #[test]
    fn cross_kind_comparisons_are_false() {
        let c = Value::from(10_i64);
        let v = Value::from(11.0);
        for op in [
            CompareOp::Eq,
            CompareOp::Ne,
            CompareOp::Lt,
            CompareOp::Le,
            CompareOp::Gt,
            CompareOp::Ge,
        ] {
            assert!(!op.eval(&v, &c), "{op:?}");
        }
        // String search on non-strings is false even for the negative form.
        assert!(!CompareOp::Contains.eval(&v, &Value::from("x")));
        assert!(!CompareOp::NotContains.eval(&v, &Value::from("x")));
    }

    #[test]
    fn string_search_ops() {
        let v = Value::from("hello world");
        assert!(CompareOp::Prefix.eval(&v, &Value::from("hello")));
        assert!(!CompareOp::Prefix.eval(&v, &Value::from("world")));
        assert!(CompareOp::Contains.eval(&v, &Value::from("lo wo")));
        assert!(CompareOp::NotContains.eval(&v, &Value::from("xyz")));
    }

    #[test]
    fn predicate_eval_event_missing_attribute() {
        let p = Predicate::new("a", CompareOp::Ne, 5_i64);
        let e = Event::builder().attr("b", 1_i64).build();
        assert!(!p.eval_event(&e));
        // ... and the complement is also false: open-world convention.
        assert!(!p.complement().eval_event(&e));
    }

    #[test]
    fn predicate_accessors_and_display() {
        let p = Predicate::new("price", CompareOp::Le, 20_i64);
        assert_eq!(p.attr(), "price");
        assert_eq!(p.op(), CompareOp::Le);
        assert_eq!(p.value(), &Value::from(20_i64));
        assert_eq!(p.to_string(), "price <= 20");
        assert_eq!(
            Predicate::new("s", CompareOp::Prefix, "ab").to_string(),
            "s prefix \"ab\""
        );
    }

    #[test]
    fn predicates_are_hashable_and_shared() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Predicate::new("a", CompareOp::Eq, 1_i64));
        set.insert(Predicate::new("a", CompareOp::Eq, 1_i64));
        assert_eq!(set.len(), 1);
    }
}
