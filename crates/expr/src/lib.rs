//! The subscription language of the `boolmatch` toolkit.
//!
//! Subscriptions in the reproduced paper (*Bittner & Hinze, ICDCSW'05*)
//! are **arbitrary Boolean expressions** over attribute–operator–value
//! *predicates*. This crate provides:
//!
//! * [`Predicate`] and [`CompareOp`] — the leaf filters,
//! * [`Expr`] — the n-ary AND/OR/NOT expression tree,
//! * a text [`parser`] for the subscription language
//!   (`"(a > 10 or a <= 5 or b = 1) and (c <= 20 or c = 30 or d = 5)"`),
//! * [`transform`] — negation-normal form, **DNF transformation** (what
//!   canonical engines are forced to do), simplification and n-ary
//!   compaction, plus DNF-size estimation so the exponential blow-up can
//!   be detected *before* it happens.
//!
//! # Examples
//!
//! ```
//! use boolmatch_expr::{Expr, transform};
//! use boolmatch_types::Event;
//!
//! // The example subscription from Fig. 1 of the paper.
//! let s = Expr::parse("(a > 10 or a <= 5 or b = 1) and (c <= 20 or c = 30 or d = 5)")?;
//! assert_eq!(s.predicate_count(), 6);
//!
//! // Its DNF has 3 x 3 = 9 conjunctions, as the paper states.
//! let dnf = transform::to_dnf(&s, 1_000)?;
//! assert_eq!(dnf.len(), 9);
//!
//! let event = Event::builder().attr("a", 12_i64).attr("c", 30_i64).build();
//! assert!(s.eval_event(&event));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod ast;
pub mod covering;
pub mod parser;
mod predicate;
pub mod transform;

pub use ast::{Expr, ExprStats};
pub use parser::{parse, ParseError};
pub use predicate::{CompareOp, Predicate};
pub use transform::{Dnf, DnfError};
