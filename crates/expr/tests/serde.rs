//! Round-trip tests for the `serde` feature
//! (`cargo test -p boolmatch-expr --features serde`).

use boolmatch_expr::{CompareOp, Expr, Predicate};

fn round_trip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serialize");
    serde_json::from_str(&json).expect("deserialize")
}

#[test]
fn predicate_round_trips() {
    for p in [
        Predicate::new("a", CompareOp::Gt, 10_i64),
        Predicate::new("s", CompareOp::Prefix, "ab"),
        Predicate::new("x", CompareOp::Ne, 1.5),
        Predicate::new("b", CompareOp::Eq, true),
    ] {
        assert_eq!(round_trip(&p), p);
    }
}

#[test]
fn expr_round_trips_structurally() {
    let e =
        Expr::parse("(a > 10 or a <= 5 or b = 1) and not (c contains \"x\" or d = 5.5)").unwrap();
    assert_eq!(round_trip(&e), e);
}

#[test]
fn serialized_subscription_survives_reparse_equivalence() {
    // A subscription can be shipped as JSON and re-registered: the
    // deserialized expression evaluates identically.
    let e = Expr::parse("(a = 1 or b = 2) and c = 3").unwrap();
    let back = round_trip(&e);
    for bits in 0..8u32 {
        let oracle = |p: &Predicate| -> bool {
            match p.attr() {
                "a" => bits & 1 != 0,
                "b" => bits & 2 != 0,
                "c" => bits & 4 != 0,
                _ => unreachable!(),
            }
        };
        assert_eq!(
            e.eval_with(&mut { oracle }),
            back.eval_with(&mut { oracle })
        );
    }
}
