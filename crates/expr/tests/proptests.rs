//! Property-based tests for the subscription language.
//!
//! The central invariant: every transformation in
//! `boolmatch_expr::transform` preserves evaluation semantics on *total*
//! truth assignments (an oracle that answers every predicate, with
//! complemented operators answering oppositely).

use proptest::prelude::*;

use boolmatch_expr::{transform, CompareOp, Expr, Predicate};

const ATTRS: u32 = 6;
const VALUES: i64 = 4;

fn arb_pred() -> impl Strategy<Value = Predicate> {
    (0..ATTRS, 0..VALUES).prop_map(|(a, v)| Predicate::new(&format!("x{a}"), CompareOp::Eq, v))
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = arb_pred().prop_map(Expr::pred);
    leaf.prop_recursive(4, 48, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..4).prop_map(Expr::And),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Expr::Or),
            inner.prop_map(|e| Expr::Not(Box::new(e))),
        ]
    })
}

/// A total assignment over the predicate universe, driven by the bits of
/// a seed. `Eq` predicates read their bit; `Ne` predicates (introduced
/// by negation elimination) read its inverse.
fn oracle(seed: u32) -> impl FnMut(&Predicate) -> bool {
    move |p: &Predicate| {
        let attr_idx: u32 = p.attr()[1..].parse().expect("attr is x<digit>");
        let value = p.value().as_int().expect("int constant");
        let bit = seed >> (attr_idx * VALUES as u32 + value as u32) & 1 != 0;
        match p.op() {
            CompareOp::Eq => bit,
            CompareOp::Ne => !bit,
            other => panic!("unexpected operator {other:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn nnf_is_not_free_and_equivalent(e in arb_expr(), seed in any::<u32>()) {
        let nnf = transform::eliminate_not(&e);
        prop_assert!(!nnf.contains_not());
        prop_assert_eq!(e.eval_with(&mut oracle(seed)), nnf.eval_with(&mut oracle(seed)));
    }

    #[test]
    fn dnf_is_equivalent(e in arb_expr(), seed in any::<u32>()) {
        let estimate = transform::estimate_dnf_size(&e);
        prop_assume!(estimate <= 4096);
        let dnf = transform::to_dnf(&e, 4096).unwrap();
        prop_assert_eq!(dnf.len() as u128, estimate);
        prop_assert_eq!(
            e.eval_with(&mut oracle(seed)),
            dnf.eval_with(&mut oracle(seed))
        );
    }

    #[test]
    fn dnf_prune_preserves_semantics(e in arb_expr(), seed in any::<u32>()) {
        prop_assume!(transform::estimate_dnf_size(&e) <= 1024);
        let mut dnf = transform::to_dnf(&e, 1024).unwrap();
        let before = dnf.eval_with(&mut oracle(seed));
        dnf.prune();
        prop_assert_eq!(before, dnf.eval_with(&mut oracle(seed)));
    }

    #[test]
    fn compact_is_flat_and_equivalent(e in arb_expr(), seed in any::<u32>()) {
        let c = transform::compact(&e);
        prop_assert_eq!(e.eval_with(&mut oracle(seed)), c.eval_with(&mut oracle(seed)));
        assert_no_same_op_nesting(&c);
    }

    #[test]
    fn simplify_is_equivalent_and_idempotent(e in arb_expr(), seed in any::<u32>()) {
        let s = transform::simplify(&e);
        prop_assert_eq!(e.eval_with(&mut oracle(seed)), s.eval_with(&mut oracle(seed)));
        prop_assert_eq!(transform::simplify(&s), s.clone());
    }

    #[test]
    fn display_parse_round_trip(e in arb_expr()) {
        // Display flattens same-op chains the way the parser does, so
        // round-trip structural equality holds for compacted trees.
        let c = transform::compact(&e);
        let printed = c.to_string();
        let reparsed = Expr::parse(&printed)
            .unwrap_or_else(|err| panic!("reparse of `{printed}` failed: {err}"));
        prop_assert_eq!(reparsed, c);
    }

    #[test]
    fn predicate_count_consistent_with_collection(e in arb_expr()) {
        prop_assert_eq!(e.predicate_count(), e.predicates().len());
        let mut n = 0usize;
        e.for_each_predicate(&mut |_| n += 1);
        prop_assert_eq!(n, e.predicate_count());
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(s in "\\PC{0,60}") {
        let _ = Expr::parse(&s);
    }

    #[test]
    fn covering_is_sound(a in arb_expr(), b in arb_expr(), seed in any::<u32>()) {
        // Whenever covering is claimed, implication must hold on every
        // total assignment (covering is defined over NNF semantics).
        if boolmatch_expr::covering::covers(&a, &b, 4096) == Ok(true) {
            let b_holds = transform::eliminate_not(&b).eval_with(&mut oracle(seed));
            let a_holds = transform::eliminate_not(&a).eval_with(&mut oracle(seed));
            prop_assert!(!b_holds || a_holds, "cover violated under seed {seed}");
        }
        // Reflexivity, when within the DNF budget.
        if transform::estimate_dnf_size(&a) <= 4096 {
            prop_assert_eq!(boolmatch_expr::covering::covers(&a, &a, 4096), Ok(true));
        }
    }

    #[test]
    fn reorder_preserves_semantics(e in arb_expr(), seed in any::<u32>()) {
        let r = transform::reorder(&e);
        prop_assert_eq!(e.eval_with(&mut oracle(seed)), r.eval_with(&mut oracle(seed)));
        prop_assert_eq!(r.predicate_count(), e.predicate_count());
    }
}

fn assert_no_same_op_nesting(e: &Expr) {
    match e {
        Expr::Pred(_) => {}
        Expr::And(cs) => {
            for c in cs {
                assert!(!matches!(c, Expr::And(_)), "And nested in And: {e}");
                assert_no_same_op_nesting(c);
            }
        }
        Expr::Or(cs) => {
            for c in cs {
                assert!(!matches!(c, Expr::Or(_)), "Or nested in Or: {e}");
                assert_no_same_op_nesting(c);
            }
        }
        Expr::Not(c) => {
            assert!(!matches!(c.as_ref(), Expr::Not(_)), "Not nested in Not");
            assert_no_same_op_nesting(c);
        }
    }
}
